//! # RITM: Revocation in the Middle — a full reproduction
//!
//! This crate is the facade over a workspace that reproduces the ICDCS 2016
//! paper *RITM: Revocation in the Middle* (Szalachowski, Chuat, Lee,
//! Perrig): certificate-revocation checking moved into network middleboxes
//! ("Revocation Agents") that mirror CA-maintained authenticated
//! dictionaries disseminated over a CDN and piggyback revocation proofs
//! onto TLS traffic.
//!
//! ## Subsystems
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`crypto`] | `ritm-crypto` | SHA-256/512, 20-byte digests, hash chains, Ed25519 — all from scratch |
//! | [`dictionary`] | `ritm-dictionary` | the authenticated dictionary (Fig. 2): sorted-leaf hash trees, signed roots, freshness statements, proofs |
//! | [`tls`] | `ritm-tls` | wire-format TLS substrate with the RITM extension and record type |
//! | [`net`] | `ritm-net` | deterministic discrete-event network simulator with in-path middleboxes |
//! | [`cdn`] | `ritm-cdn` | the dissemination network: origin, TTL edge caches, CloudFront-style billing |
//! | [`ca`] | `ritm-ca` | certification authorities, bootstrap manifests, a misbehaving CA |
//! | [`agent`] | `ritm-agent` | the Revocation Agent: DPI, Eq. 4 state, piggybacking, CDN sync, monitoring |
//! | [`client`] | `ritm-client` | the RITM client: step-5 validation, 2Δ enforcement, downgrade protection |
//! | [`baselines`] | `ritm-baselines` | CRL/OCSP/stapling/CRLSet/SLC/RevCast/log-based comparison models |
//! | [`workloads`] | `ritm-workloads` | ISC CRL, Heartbleed, city-population, PlanetLab synthesizers |
//! | [`core`] | `ritm-core` | end-to-end orchestration: [`core::RitmWorld`] |
//!
//! ## Quickstart
//!
//! ```
//! use ritm::core::{ConnectionOptions, DeploymentModel, RitmWorld};
//!
//! // A world with Δ = 10 s and an RA at the client's access network.
//! let mut world = RitmWorld::new(42, 10, DeploymentModel::CloseToClients);
//!
//! // A healthy connection establishes and keeps receiving fresh statuses.
//! let outcome = world.run_connection(&ConnectionOptions::default());
//! assert!(outcome.alive_at_end);
//!
//! // Once the CA revokes the server's certificate, new connections die.
//! let serial = world.server_serial();
//! world.revoke(serial);
//! let outcome = world.run_connection(&ConnectionOptions::default());
//! assert!(!outcome.alive_at_end);
//! ```

pub use ritm_agent as agent;
pub use ritm_baselines as baselines;
pub use ritm_ca as ca;
pub use ritm_cdn as cdn;
pub use ritm_client as client;
pub use ritm_core as core;
pub use ritm_crypto as crypto;
pub use ritm_dictionary as dictionary;
pub use ritm_net as net;
pub use ritm_tls as tls;
pub use ritm_workloads as workloads;
