//! # RITM: Revocation in the Middle — a full reproduction
//!
//! This crate is the facade over a workspace that reproduces the ICDCS 2016
//! paper *RITM: Revocation in the Middle* (Szalachowski, Chuat, Lee,
//! Perrig): certificate-revocation checking moved into network middleboxes
//! ("Revocation Agents") that mirror CA-maintained authenticated
//! dictionaries disseminated over a CDN and piggyback revocation proofs
//! onto TLS traffic.
//!
//! ## Subsystems
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`crypto`] | `ritm-crypto` | SHA-256/512, 20-byte digests, hash chains, Ed25519, hardened wire codecs — all from scratch |
//! | [`dictionary`] | `ritm-dictionary` | the authenticated dictionary (Fig. 2) as an **incremental engine**: epoch-aware sorted-leaf Merkle trees with O(b·log n) batch application, the [`dictionary::DictionaryEngine`] / [`dictionary::MirrorEngine`] traits, signed roots, freshness statements, proofs, expiry sharding |
//! | [`tls`] | `ritm-tls` | wire-format TLS substrate with the RITM extension and record type |
//! | [`net`] | `ritm-net` | deterministic discrete-event network simulator with in-path middleboxes |
//! | [`rt`] | `ritm-rt` | std-only readiness-based runtime: reactor, ≤2-thread executor with wakers, incremental frame codecs |
//! | [`proto`] | `ritm-proto` | the versioned RITM wire protocol: request/response envelopes, the transport-agnostic `Service` trait, loopback / simulator / blocking-TCP / event-driven transports with request pipelining |
//! | [`cdn`] | `ritm-cdn` | the dissemination network: origin, TTL edge caches, CloudFront-style billing |
//! | [`ca`] | `ritm-ca` | certification authorities (generic over their dictionary engine), bootstrap manifests, a misbehaving CA |
//! | [`agent`] | `ritm-agent` | the Revocation Agent: DPI, Eq. 4 state, piggybacking, an epoch-keyed proof cache for hot serials, CDN sync, health/consistency monitoring |
//! | [`fleet`] | `ritm-fleet` | the sharded RA fleet (§VIII): consistent-hash mirror placement with serial-range lanes, signed-root gossip with stale/split-view detection, fleet health aggregation |
//! | [`client`] | `ritm-client` | the RITM client: step-5 validation, 2Δ enforcement, epoch-tagged root tracking (replay protection), downgrade protection |
//! | [`baselines`] | `ritm-baselines` | CRL/OCSP/stapling/CRLSet/SLC/RevCast/log-based comparison models |
//! | [`workloads`] | `ritm-workloads` | ISC CRL, Heartbleed, city-population, PlanetLab synthesizers |
//! | [`core`] | `ritm-core` | end-to-end orchestration: [`core::RitmWorld`], exposing engine epochs and RA cache health |
//!
//! ## The incremental dictionary engine
//!
//! RITM's scaling story rests on RAs answering per-connection proofs
//! locally. Three pieces make that cheap here:
//!
//! 1. **Incremental Merkle updates** — applying a revocation batch rehashes
//!    only the node paths at or after the first changed leaf position
//!    ([`dictionary::tree::MerkleTree::apply_sorted_batch`]); for the
//!    common append-heavy issuance pattern that is O(b·log n) instead of a
//!    full O(n) rebuild (measured ≥20× for a 100-serial batch into a
//!    1M-leaf dictionary; see `crates/bench/benches/dictionary_ops.rs`).
//! 2. **Epochs** — every applied batch advances a monotonic epoch on the
//!    tree, its dictionaries, and the engine trait; audit paths are valid
//!    exactly while the epoch is unchanged.
//! 3. **Proof caching** — the RA memoizes audit paths per `(CA, serial)`
//!    keyed by mirror epoch ([`agent::cache::ProofCache`]), so hot serials
//!    across concurrent flows reuse proofs until the root advances;
//!    freshness statements are always composed live. Hit/miss counters
//!    surface through [`agent::monitor::RaHealthReport`], and clients
//!    reject replayed (older-epoch) roots via
//!    [`client::validator::RootTracker`].
//!
//! ## Quickstart
//!
//! ```
//! use ritm::core::{ConnectionOptions, DeploymentModel, RitmWorld};
//!
//! // A world with Δ = 10 s and an RA at the client's access network.
//! let mut world = RitmWorld::new(42, 10, DeploymentModel::CloseToClients);
//!
//! // A healthy connection establishes and keeps receiving fresh statuses.
//! let outcome = world.run_connection(&ConnectionOptions::default());
//! assert!(outcome.alive_at_end);
//!
//! // Once the CA revokes the server's certificate, new connections die.
//! let serial = world.server_serial();
//! world.revoke(serial);
//! let outcome = world.run_connection(&ConnectionOptions::default());
//! assert!(!outcome.alive_at_end);
//! ```

pub use ritm_agent as agent;
pub use ritm_baselines as baselines;
pub use ritm_ca as ca;
pub use ritm_cdn as cdn;
pub use ritm_client as client;
pub use ritm_core as core;
pub use ritm_crypto as crypto;
pub use ritm_dictionary as dictionary;
pub use ritm_fleet as fleet;
pub use ritm_net as net;
pub use ritm_proto as proto;
pub use ritm_rt as rt;
pub use ritm_tls as tls;
pub use ritm_workloads as workloads;
