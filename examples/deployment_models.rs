//! The two §IV deployment models side by side, including the downgrade
//! attack each must resist: an adversary who tunnels traffic around the RA.
//!
//! Run with: `cargo run --example deployment_models`

use ritm::client::AbortReason;
use ritm::core::{ConnectionOptions, DeploymentModel, RitmWorld};

fn run_model(model: DeploymentModel, seed: u64) {
    println!("=== {model:?} ===");
    let mut world = RitmWorld::new(seed, 10, model);

    // Normal operation: RA on path.
    let outcome = world.run_connection(&ConnectionOptions {
        duration_secs: 15,
        server_sends_at: vec![12],
        ..Default::default()
    });
    println!(
        "  with RA on path:    established at +{}s, alive at end: {}, statuses injected: {}",
        outcome.established_at.expect("handshake completes"),
        outcome.alive_at_end,
        outcome.statuses_injected,
    );

    // Downgrade attempt: the adversary tunnels around the RA.
    let outcome = world.run_connection(&ConnectionOptions {
        with_ra: false,
        duration_secs: 5,
        ..Default::default()
    });
    match (&model, &outcome.aborted) {
        (DeploymentModel::CloseToClients, Some((t, AbortReason::MissingStatus))) => {
            println!(
                "  tunnelled past RA:  ABORTED at +{t}s (network promised an RA: AlwaysRequire)"
            );
        }
        (DeploymentModel::CloseToServers, Some((t, AbortReason::MissingStatus))) => {
            println!(
                "  tunnelled past RA:  ABORTED at +{t}s — the terminator still confirmed RITM \
                 inside the TLS-protected ServerHello, so the missing status is conclusive"
            );
        }
        (m, a) => println!("  tunnelled past RA:  {m:?} -> {a:?}"),
    }
    println!();
}

fn main() {
    println!("RITM deployment models (§IV) under normal operation and a tunnelling adversary");
    println!();
    run_model(DeploymentModel::CloseToClients, 21);
    run_model(DeploymentModel::CloseToServers, 22);
    println!("close-to-clients: the access network advertises RITM (authenticated DHCP),");
    println!("  so clients reject any connection without statuses.");
    println!("close-to-servers: the TLS terminator confirms RITM inside the ServerHello,");
    println!("  which TLS integrity-protects — tampering breaks the Finished check.");
}
