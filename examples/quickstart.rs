//! Quickstart: the whole RITM pipeline in one file, without the packet
//! simulator — CA maintains a dictionary, disseminates over the CDN, an RA
//! mirrors it, and a client validates the RA's proofs.
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm::agent::{RaConfig, RevocationAgent};
use ritm::ca::CertificationAuthority;
use ritm::cdn::network::Cdn;
use ritm::cdn::service::EdgeService;
use ritm::client::{validate_payload, Verdict};
use ritm::crypto::SigningKey;
use ritm::net::time::{SimDuration, SimTime};
use ritm::proto::Loopback;
use std::collections::HashMap;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let delta = 10u64; // Δ = 10 s: near-instant revocation
    let now = 1_397_000_000u64;

    // 1. A CA joins RITM: it registers with the CDN's distribution point
    //    and publishes its bootstrap manifest (§VIII).
    let mut cdn = Cdn::new(SimDuration::from_secs(delta));
    let mut ca = CertificationAuthority::new(
        "ExampleCA",
        SigningKey::from_seed([1u8; 32]),
        delta,
        8_640, // one day of freshness periods per hash chain
        &mut cdn,
        &mut rng,
        now,
    );
    println!(
        "CA '{}' online, dictionary genesis signed at t={now}",
        ca.name()
    );

    // 2. The CA issues certificates to two websites.
    let good_key = SigningKey::from_seed([2u8; 32]);
    let good = ca.issue_certificate(
        "good.example",
        good_key.verifying_key(),
        now,
        now + 86_400 * 90,
    );
    let bad_key = SigningKey::from_seed([3u8; 32]);
    let bad = ca.issue_certificate(
        "compromised.example",
        bad_key.verifying_key(),
        now,
        now + 86_400 * 90,
    );
    println!(
        "issued: good.example (serial {}), compromised.example (serial {})",
        good.serial, bad.serial
    );

    // 3. An RA starts mirroring the CA (it learned about it from the
    //    manifest) and pulls from its regional edge server every Δ.
    let mut ra = RevocationAgent::new(RaConfig {
        delta,
        ..Default::default()
    });
    ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
        .expect("genesis verifies");

    // 4. compromised.example loses its key; the CA revokes within one Δ.
    ca.revoke(&[bad.serial], &mut cdn, &mut rng, now + 3)
        .expect("revocation accepted");
    // The RA speaks the versioned wire protocol: here the regional edge is
    // exposed as an in-process service behind a loopback transport (the
    // same envelopes travel a simulated path or a real TCP socket).
    let report = {
        let edge = EdgeService::new(&mut cdn, ra.config.region, 7);
        edge.set_now(SimTime::from_secs(now + delta));
        let mut transport = Loopback::new(edge);
        ra.sync_via(&mut transport, SimTime::from_secs(now + delta))
    };
    println!(
        "RA pulled {} envelope bytes from the CDN in {:.3}s: {} new revocation(s)",
        report.bytes_downloaded,
        report.latency.as_secs_f64(),
        report.revocations_applied,
    );

    // 5. Clients connecting through the RA receive proofs piggybacked on
    //    the TLS handshake and validate them against the CA's key alone.
    let mut ca_keys = HashMap::new();
    ca_keys.insert(ca.id(), ca.verifying_key());
    let check_time = now + delta + 1;

    for cert in [&good, &bad] {
        let chain = [(ca.id(), cert.serial)];
        let payload = ra.build_status(&chain).expect("CA is mirrored");
        println!(
            "status for {} is {} bytes on the wire",
            cert.subject,
            payload.to_bytes().len()
        );
        match validate_payload(&payload, &chain, &ca_keys, delta, check_time) {
            Ok(Verdict::AllValid) => println!("  -> {}: fresh absence proof, ACCEPT", cert.subject),
            Ok(Verdict::Revoked { number, .. }) => {
                println!(
                    "  -> {}: REVOKED (revocation #{number}), connection refused",
                    cert.subject
                )
            }
            Err(e) => println!("  -> {}: status rejected ({e})", cert.subject),
        }
    }
}
