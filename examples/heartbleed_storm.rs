//! A Heartbleed-scale mass-revocation event (§VII-A/B): the CA revokes
//! tens of thousands of certificates over two days, following the Fig. 4
//! peak profile; a Revocation Agent keeps pulling every Δ and the example
//! reports dissemination lag and per-Δ bandwidth — the system must absorb
//! the storm without melting.
//!
//! Run with: `cargo run --release --example heartbleed_storm`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm::agent::{RaConfig, RevocationAgent};
use ritm::ca::CertificationAuthority;
use ritm::cdn::network::Cdn;
use ritm::cdn::service::EdgeService;
use ritm::crypto::SigningKey;
use ritm::net::time::{SimDuration, SimTime};
use ritm::proto::Loopback;
use ritm::workloads::heartbleed::peak_days_six_hourly;

fn main() {
    let mut rng = StdRng::seed_from_u64(14);
    let delta = 60u64; // Δ = 1 minute during the storm
    let start = 1_397_606_400u64; // 16 April 2014 00:00 UTC

    let mut cdn = Cdn::new(SimDuration::from_secs(delta));
    let mut ca = CertificationAuthority::new(
        "StormCA",
        SigningKey::from_seed([4u8; 32]),
        delta,
        86_400 / delta * 2,
        &mut cdn,
        &mut rng,
        start - 60,
    );
    let mut ra = RevocationAgent::new(RaConfig {
        delta,
        ..Default::default()
    });
    ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
        .expect("bootstrap");

    // Pre-issue every certificate that will be revoked during the event.
    let bins = peak_days_six_hourly(&mut rng);
    let total: u64 = bins.iter().map(|b| b.count).sum();
    println!("pre-issuing {total} certificates that will fall to Heartbleed...");
    let key = SigningKey::from_seed([5u8; 32]).verifying_key();
    let mut serials = Vec::new();
    for i in 0..total {
        serials.push(
            ca.issue_certificate(
                &format!("site{i}.example"),
                key,
                start - 100,
                start + 10_000_000,
            )
            .serial,
        );
    }

    println!("16-17 April 2014, Δ = {delta}s:");
    println!();
    let mut issued = 0usize;
    let mut max_lag_periods = 0u64;
    let mut max_pull_bytes = 0u64;
    let mut total_bytes = 0u64;
    for bin in &bins {
        // The CA revokes this bin's certificates in per-Δ batches.
        let periods = 6 * 3_600 / delta;
        let per_period = (bin.count / periods).max(1);
        let mut bin_bytes = 0u64;
        for p in 0..periods {
            let t = bin.start + p * delta;
            let end = (issued + per_period as usize).min(serials.len());
            if issued < end {
                ca.revoke(&serials[issued..end], &mut cdn, &mut rng, t)
                    .expect("revocation accepted");
                issued = end;
            } else {
                ca.refresh(&mut cdn, &mut rng, t).expect("refresh accepted");
            }
            let report = {
                let edge = EdgeService::new(&mut cdn, ra.config.region, p);
                edge.set_now(SimTime::from_secs(t + 1));
                let mut transport = Loopback::new(edge);
                ra.sync_via(&mut transport, SimTime::from_secs(t + 1))
            };
            bin_bytes += report.bytes_downloaded;
            max_pull_bytes = max_pull_bytes.max(report.bytes_downloaded);
            let lag =
                ca.revocation_count() as u64 - ra.mirror(&ca.id()).expect("mirrored").len() as u64;
            max_lag_periods = max_lag_periods.max(u64::from(lag > 0));
        }
        total_bytes += bin_bytes;
        println!(
            "  bin @{}: +{:>6} revocations, RA downloaded {:>8} B this bin, mirror at {:>6}",
            bin.start,
            bin.count,
            bin_bytes,
            ra.mirror(&ca.id()).expect("mirrored").len(),
        );
    }

    println!();
    println!("storm total: {issued} revocations in 48 h");
    println!(
        "RA mirror final size: {}",
        ra.mirror(&ca.id()).expect("mirrored").len()
    );
    println!("peak single-Δ download: {max_pull_bytes} B; total: {total_bytes} B");
    println!(
        "RA was at most one Δ behind the CA throughout: {}",
        if max_lag_periods <= 1 { "yes" } else { "NO" }
    );
    println!();
    println!(
        "for comparison, RevCast's 421.8 bit/s broadcast needs {:.1} h for the same load",
        ritm::baselines::revcast_dissemination_secs(421.8, 21 * 8, issued as u64) / 3_600.0
    );
}
