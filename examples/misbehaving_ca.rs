//! Catching a misbehaving CA (§V): a compromised CA hides a revocation from
//! part of the system by maintaining two equal-size dictionary versions.
//! Because dictionaries are append-only with consecutive numbering, any two
//! parties comparing their latest signed roots obtain a *transferable
//! cryptographic proof* of the equivocation.
//!
//! Run with: `cargo run --example misbehaving_ca`

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm::agent::ConsistencyMonitor;
use ritm::ca::{EquivocatingCa, View};
use ritm::crypto::SigningKey;
use ritm::dictionary::SerialNumber;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let target = SerialNumber::from_u24(0x073e10); // the cert being hidden
    let cover: Vec<SerialNumber> = (0x100..0x10a).map(SerialNumber::from_u24).collect();

    let ca = EquivocatingCa::new(
        "ShadyCA",
        SigningKey::from_seed([6u8; 32]),
        10,
        1 << 10,
        target,
        &cover,
        SerialNumber::from_u24(0x999999),
        &mut rng,
        1_397_000_000,
    );
    println!("ShadyCA forked its dictionary to hide revocation of serial {target}");

    // A victim behind the hiding view gets a *valid* absence proof...
    let hiding = ca
        .prove(View::Hiding, &target, 1_397_000_002)
        .expect("freshness available");
    let verdict = hiding
        .validate(&target, &ca.verifying_key(), 10, 1_397_000_002)
        .expect("the forged view is internally consistent");
    println!(
        "victim's RA serves the hiding view: revoked = {}",
        verdict.is_revoked()
    );

    // ...while everyone else sees the truth.
    let honest = ca
        .prove(View::Honest, &target, 1_397_000_002)
        .expect("freshness available");
    let verdict = honest
        .validate(&target, &ca.verifying_key(), 10, 1_397_000_002)
        .expect("honest view is consistent too");
    println!(
        "the rest of the system sees:  revoked = {}",
        verdict.is_revoked()
    );

    // Consistency checking (§III): an RA compares its stored signed root
    // with one downloaded from a random edge server.
    let mut monitor = ConsistencyMonitor::new();
    monitor.register_ca(ca.ca(), ca.verifying_key());
    assert!(monitor
        .check(ca.signed_root(View::Hiding), "local-mirror")
        .is_none());
    let report = monitor
        .check(ca.signed_root(View::Honest), "edge:eu-west-1")
        .expect("equivocation detected on first cross-check");

    println!();
    println!("cross-check against {} caught the fork:", report.source);
    println!(
        "  two validly-signed roots, both n = {}",
        report.proof.first.size
    );
    println!("  root A = {}", report.proof.first.root);
    println!("  root B = {}", report.proof.second.root);
    println!(
        "  proof verifies under the CA's own key: {}",
        report.proof.verify(&ca.verifying_key())
    );
    println!();
    println!("the report is self-authenticating — forward it to software vendors");
    println!("and ShadyCA is out of business.");
}
