//! The race-condition defence (§V): a long-lived TLS connection — think
//! VPN, TLS tunnel, or IoT session — is established seconds before its
//! certificate is revoked. Classic revocation never re-checks; RITM's RA
//! piggybacks a fresh status every Δ and the client tears the session down
//! within 2Δ.
//!
//! Run with: `cargo run --example long_lived_connection`

use ritm::client::AbortReason;
use ritm::core::{ConnectionOptions, DeploymentModel, RitmWorld};

fn main() {
    let delta = 10u64;
    let mut world = RitmWorld::new(7, delta, DeploymentModel::CloseToClients);

    println!("Δ = {delta}s; establishing a long-lived connection to example.com...");
    let outcome = world.run_connection(&ConnectionOptions {
        duration_secs: 90,
        // The server streams data every few seconds (a VPN heartbeat).
        server_sends_at: (1..90).step_by(4).collect(),
        // 25 s into the session, the CA revokes the server's certificate.
        revoke_at: Some(25),
        ..Default::default()
    });

    let established = outcome.established_at.expect("handshake completes");
    println!("connection established at +{established}s with a piggybacked absence proof");
    println!();
    for (t, event) in &outcome.events {
        println!("  t+{:<3} {:?}", t - ritm::core::EPOCH, event);
    }
    println!();
    match outcome.aborted {
        Some((t, AbortReason::Revoked { serial })) => {
            println!("certificate (serial {serial}) revoked at +25s;");
            println!("client interrupted the ESTABLISHED connection at +{t}s");
            println!("detection delay: {}s (bound: 2Δ = {}s)", t - 25, 2 * delta);
            assert!(t - 25 <= 2 * delta + 1);
        }
        other => panic!("expected a mid-connection revocation abort, got {other:?}"),
    }
    println!();
    println!("no other deployed revocation scheme re-checks an open connection;");
    println!("with OCSP/CRL this session would have survived until its next restart.");
}
