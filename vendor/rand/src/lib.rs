//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the slice of the `rand` 0.8 API the
//! workspace uses: the [`RngCore`] / [`Rng`] / [`SeedableRng`] traits and a
//! deterministic [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64).
//!
//! Determinism note: every experiment in this repository seeds its generator
//! explicitly (`StdRng::seed_from_u64`), so the exact stream differs from
//! upstream `rand` but reproducibility within this workspace is preserved.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the generator's full range
/// (the `Standard` distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start() + f64::sample(rng) * (self.end() - self.start())
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills `dest` with random data (the `Fill` shorthand).
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_with(self)
    }
}

/// Buffer types fillable by [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data.
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator, stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.25..=0.5);
            assert!((0.25..=0.5).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
