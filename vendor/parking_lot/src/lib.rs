//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned lock (a panic while held) is recovered rather than
//! propagated, matching parking_lot's behaviour of not poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
