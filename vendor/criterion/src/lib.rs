//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use —
//! `criterion_group!` / `criterion_main!`, [`Criterion::bench_function`],
//! benchmark groups, [`Bencher::iter`] and [`Bencher::iter_batched`] — with
//! a plain wall-clock measurement loop: a short warm-up, then `sample_size`
//! timed samples whose median/min/mean are printed per benchmark. No
//! statistical regression machinery, plots, or CLI.
//!
//! # JSON result emission (perf-trajectory tracking)
//!
//! When the `BENCH_JSON` environment variable names a file, every benchmark
//! appends a record `{op, leaves, batch, ns_per_op, unit}` to an in-process
//! registry, and `criterion_main!` writes them as a JSON array on exit.
//! `leaves` and `batch` are parsed from trailing numeric `/`-separated
//! segments of the benchmark id (e.g. `apply_100_batch/incremental/1000000`
//! → leaves = 1000000); benches can also publish explicit records (byte
//! sizes, thread-scaling numbers) with [`json_record`]. Setting
//! `BENCH_SMOKE=1` caps every benchmark at 3 samples with a minimal warm-up
//! so CI can exercise the whole bench suite in seconds.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-sample iteration budget: chosen so one sample takes roughly this long.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// `true` when `BENCH_SMOKE` asks for a fast CI pass.
pub fn smoke_mode() -> bool {
    static SMOKE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SMOKE.get_or_init(|| {
        std::env::var("BENCH_SMOKE")
            .map(|v| v != "0" && !v.is_empty())
            .unwrap_or(false)
    })
}

/// Warm-up budget before sampling starts.
fn warmup() -> Duration {
    if smoke_mode() {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(30)
    }
}

#[derive(Debug, Clone)]
struct JsonRecord {
    op: String,
    leaves: Option<u64>,
    batch: Option<u64>,
    value: f64,
    unit: &'static str,
}

fn json_registry() -> &'static Mutex<Vec<JsonRecord>> {
    static RECORDS: std::sync::OnceLock<Mutex<Vec<JsonRecord>>> = std::sync::OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Publishes an explicit benchmark record (e.g. an encoded-size comparison
/// or a thread-scaling throughput) into the `BENCH_JSON` output alongside
/// the automatically-captured timings.
pub fn json_record(
    op: &str,
    leaves: Option<u64>,
    batch: Option<u64>,
    value: f64,
    unit: &'static str,
) {
    json_registry().lock().expect("registry").push(JsonRecord {
        op: op.to_owned(),
        leaves,
        batch,
        value,
        unit,
    });
}

/// Parses trailing numeric path segments of a bench id: the last numeric
/// segment is `leaves`, the second-to-last (if numeric) is `batch`.
fn parse_id_params(name: &str) -> (Option<u64>, Option<u64>) {
    let nums: Vec<u64> = name
        .rsplit('/')
        .map_while(|seg| seg.parse::<u64>().ok())
        .collect();
    match nums.as_slice() {
        [] => (None, None),
        [leaves] => (Some(*leaves), None),
        [leaves, batch, ..] => (Some(*leaves), Some(*batch)),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes every collected record to the `BENCH_JSON` file (no-op when the
/// variable is unset). Called by `criterion_main!` after all groups ran;
/// safe to call directly from hand-rolled mains.
///
/// With `BENCH_JSON_APPEND=1` an existing file is merged instead of
/// overwritten: prior records whose `op` is re-measured in this process
/// are replaced, everything else is kept. This lets several bench
/// binaries (dictionary ops, the fleet scenario) land in one trajectory
/// file.
pub fn flush_json() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let records = json_registry().lock().expect("registry");
    let append = std::env::var("BENCH_JSON_APPEND")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false);
    let mut lines: Vec<String> = Vec::new();
    if append {
        if let Ok(existing) = std::fs::read_to_string(&path) {
            // The file is one record per line; keep lines whose op is not
            // superseded by a record from this process.
            for line in existing.lines() {
                let Some(rest) = line.trim_start().strip_prefix("{\"op\": \"") else {
                    continue;
                };
                let Some(end) = rest.find('"') else { continue };
                let op = &rest[..end];
                if !records.iter().any(|r| json_escape(&r.op) == op) {
                    lines.push(line.trim_end().trim_end_matches(',').to_owned());
                }
            }
        }
    }
    for r in records.iter() {
        let leaves = r
            .leaves
            .map_or_else(|| "null".to_owned(), |v| v.to_string());
        let batch = r.batch.map_or_else(|| "null".to_owned(), |v| v.to_string());
        lines.push(format!(
            "  {{\"op\": \"{}\", \"leaves\": {}, \"batch\": {}, \"ns_per_op\": {:.1}, \"unit\": \"{}\"}}",
            json_escape(&r.op),
            leaves,
            batch,
            r.value,
            r.unit,
        ));
    }
    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (one setup per measured call).
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` style id.
    pub fn new(name: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl core::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The measurement loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate iterations per sample.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < warmup() {
            std::hint::black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed() / iters_done.max(1) as u32;
        let per_sample =
            (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// `iter_batched` variant passing the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: if smoke_mode() {
            sample_size.min(3)
        } else {
            sample_size
        },
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let sum: Duration = b.samples.iter().sum();
    let mean = sum / b.samples.len() as u32;
    println!(
        "{name:<48} median {:>12}  min {:>12}  mean {:>12}",
        format_duration(median),
        format_duration(min),
        format_duration(mean),
    );
    let (leaves, batch) = parse_id_params(name);
    json_record(name, leaves, batch, median.as_nanos() as f64, "ns/op");
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group (e.g. fewer samples for
    /// slow benchmarks).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl core::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing only; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// Re-export spot for `black_box` (benches here use `std::hint` directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the listed groups, then flushing the
/// `BENCH_JSON` perf-trajectory file (if requested).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::flush_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }
}
