//! [`Arbitrary`] — default strategies per type, reached through
//! [`crate::any`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`crate::any`].
pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($t:ident),+)),+) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    )+};
}
impl_arbitrary_tuple!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn arrays_and_tuples_fill() {
        let mut rng = case_rng("arbitrary::tests");
        let a: [u8; 32] = Arbitrary::arbitrary(&mut rng);
        assert!(a.iter().any(|&b| b != 0));
        let (_x, _y, _z): (u8, u16, u64) = Arbitrary::arbitrary(&mut rng);
    }
}
