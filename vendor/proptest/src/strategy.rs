//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for sampling values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the test RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (for heterogeneous collections).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The combinator behind [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (behind `prop_oneof!`).
pub struct Union<T> {
    choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `choices`.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.choices.len());
        self.choices[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = case_rng("strategy::tests");
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_picks_each_choice() {
        let mut rng = case_rng("strategy::union");
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
