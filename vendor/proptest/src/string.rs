//! String strategies from a small regex subset.
//!
//! Upstream proptest treats a `&str` as a regex-derived strategy. This
//! stand-in supports the subset the workspace's tests use: literal
//! characters, `\`-escapes, `[a-z0-9_]`-style classes with ranges,
//! `(alt|alt)` groups, and the quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`.
//! Unsupported syntax panics at generation time, loudly, rather than
//! silently producing wrong data.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Vec<Vec<Node>>),
    Repeat(Box<Node>, u32, u32),
}

fn parse_sequence(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    in_group: bool,
) -> Vec<Vec<Node>> {
    let mut alternatives = vec![Vec::new()];
    while let Some(&c) = chars.peek() {
        match c {
            ')' if in_group => break,
            '|' => {
                chars.next();
                alternatives.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chars.next();
        let atom = match c {
            '\\' => Node::Literal(chars.next().expect("dangling escape in pattern")),
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars.next().expect("unterminated class in pattern");
                    if lo == ']' {
                        break;
                    }
                    let lo = if lo == '\\' {
                        chars.next().expect("dangling escape in class")
                    } else {
                        lo
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars.next().expect("unterminated range in class");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                Node::Class(ranges)
            }
            '(' => {
                let alts = parse_sequence(chars, true);
                assert_eq!(chars.next(), Some(')'), "unterminated group in pattern");
                Node::Group(alts)
            }
            '.' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9')]),
            c => Node::Literal(c),
        };
        // Optional quantifier.
        let atom = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for q in chars.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                let (lo, hi) = match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad quantifier"),
                        b.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                };
                Node::Repeat(Box::new(atom), lo, hi)
            }
            Some('*') => {
                chars.next();
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                chars.next();
                Node::Repeat(Box::new(atom), 1, 8)
            }
            Some('?') => {
                chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            _ => atom,
        };
        alternatives.last_mut().expect("non-empty").push(atom);
    }
    alternatives
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            out.push(char::from_u32(rng.gen_range(lo as u32..=hi as u32)).expect("valid char"));
        }
        Node::Group(alts) => {
            let alt = &alts[rng.gen_range(0..alts.len())];
            for n in alt {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut chars = self.chars().peekable();
        let alts = parse_sequence(&mut chars, false);
        assert!(
            chars.next().is_none(),
            "trailing characters in pattern {self:?}"
        );
        let mut out = String::new();
        let alt = &alts[rng.gen_range(0..alts.len())];
        for node in alt {
            emit(node, rng, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn domain_pattern_matches_shape() {
        let mut rng = case_rng("string::tests");
        let pat = "[a-z]{1,20}\\.(com|org|net)";
        for _ in 0..200 {
            let s = pat.generate(&mut rng);
            let (name, tld) = s.rsplit_once('.').expect("dot present");
            assert!((1..=20).contains(&name.len()), "{s}");
            assert!(name.chars().all(|c| c.is_ascii_lowercase()), "{s}");
            assert!(matches!(tld, "com" | "org" | "net"), "{s}");
        }
    }

    #[test]
    fn quantifiers_and_classes() {
        let mut rng = case_rng("string::quant");
        let s = "[0-9]{3}-x+".generate(&mut rng);
        let (digits, xs) = s.split_once('-').unwrap();
        assert_eq!(digits.len(), 3);
        assert!(digits.chars().all(|c| c.is_ascii_digit()));
        assert!(!xs.is_empty() && xs.chars().all(|c| c == 'x'));
    }
}
