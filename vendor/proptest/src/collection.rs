//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Anything usable as a length specification for [`vec()`].
pub trait IntoLenRange {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl IntoLenRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoLenRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl IntoLenRange for core::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `len`.
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

/// Vectors of `element` values with lengths in `len`.
pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;
    use crate::test_runner::case_rng;

    #[test]
    fn length_bounds_respected() {
        let mut rng = case_rng("collection::tests");
        let s = vec(any::<u8>(), 2..5usize);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn nested_vecs_work() {
        let mut rng = case_rng("collection::nested");
        let s = vec(vec(0u32..10, 0..4usize), 1..3usize);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty());
    }
}
