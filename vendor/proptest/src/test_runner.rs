//! Case execution support: configuration, the failure type, and the
//! deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// How a property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a property case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }

    /// Alias kept for API compatibility with upstream's `Reject`.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG strategies draw from.
pub type TestRng = StdRng;

/// A deterministic RNG derived from the fully-qualified test name, so each
/// test sees a stable stream across runs.
pub fn case_rng(test_name: &str) -> TestRng {
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}
