//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*` macros, [`strategy::Strategy`] with
//! `prop_map`, [`arbitrary::Arbitrary`] / [`any`], integer-range and
//! collection strategies, `prop_oneof!`/`Just`, and a small
//! regex-subset string strategy.
//!
//! Semantics differences from upstream: cases are sampled from a
//! deterministic per-test RNG (seeded from the test name) and there is **no
//! shrinking** — a failing case reports its index and message only.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Returns the [`arbitrary::Arbitrary`] strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any(core::marker::PhantomData)
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
        pub use crate::string;
    }
}

/// Defines property tests: each `name in strategy` binding is sampled per
/// case and the body runs as a `Result<(), TestCaseError>` closure.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::case_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the enclosing property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} ({:?} != {:?})", format!($($fmt)*), l, r
        );
    }};
}

/// Fails the enclosing property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: both sides equal {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} (both sides equal {:?})", format!($($fmt)*), l
        );
    }};
}

/// Picks uniformly among the listed strategies (all must share one value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
