//! # ritm-client — the RITM-supported TLS client (paper §III, §IV)
//!
//! * [`validator`] — the step-5 acceptance policy: standard validation +
//!   absence proof + freshness ≤ 2Δ;
//! * [`client`] — a TLS client that requests RITM protection, validates
//!   every piggybacked status, interrupts on revocation or staleness (even
//!   mid-connection), and implements the §IV downgrade-protection modes;
//! * [`fetch`] — the pull model: fetch a chain's statuses from an RA
//!   endpoint through any `ritm-proto` transport and run the same
//!   acceptance policy on the response.

pub mod client;
pub mod fetch;
pub mod validator;

pub use client::{AbortReason, DowngradePolicy, RitmClient, RitmClientConfig, RitmEvent};
pub use fetch::{
    fetch_and_validate, fetch_and_validate_many, fetch_status, FetchError, FetchedStatus,
};
pub use validator::{
    validate_payload, validate_payload_tracked, RootTracker, ValidationError, Verdict,
};
