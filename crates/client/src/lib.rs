//! # ritm-client — the RITM-supported TLS client (paper §III, §IV)
//!
//! * [`validator`] — the step-5 acceptance policy: standard validation +
//!   absence proof + freshness ≤ 2Δ;
//! * [`client`] — a TLS client that requests RITM protection, validates
//!   every piggybacked status, interrupts on revocation or staleness (even
//!   mid-connection), and implements the §IV downgrade-protection modes.

pub mod client;
pub mod validator;

pub use client::{AbortReason, DowngradePolicy, RitmClient, RitmClientConfig, RitmEvent};
pub use validator::{
    validate_payload, validate_payload_tracked, RootTracker, ValidationError, Verdict,
};
