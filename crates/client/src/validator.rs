//! Client-side revocation-status validation — §III step 5 of the paper.
//!
//! The server's certificate is accepted only when (a) it passes standard
//! chain validation (done by `ritm-tls`), (b) the revocation status carries
//! a valid *absence* proof against a validly-signed root, and (c) the
//! freshness statement is no older than 2Δ.

use ritm_agent::StatusPayload;
use ritm_crypto::ed25519::VerifyingKey;
use ritm_dictionary::{CaId, SerialNumber, StatusError};
use std::collections::HashMap;

/// The verdict from validating a status payload against a chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every certificate of the chain has a fresh absence proof.
    AllValid,
    /// Some certificate is revoked — the connection must be aborted.
    Revoked {
        /// The revoked certificate's serial.
        serial: SerialNumber,
        /// Its revocation number at the CA.
        number: u64,
    },
}

/// Why a status payload was rejected (distinct from a *revoked* verdict:
/// rejection means the payload proves nothing either way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Payload covers a different number of certificates than expected.
    ChainLengthMismatch {
        /// Statuses in the payload.
        got: usize,
        /// Certificates expected.
        expected: usize,
    },
    /// No pinned key for the CA named in a status.
    UnknownCa(CaId),
    /// A status referenced the wrong CA for its chain position.
    CaMismatch,
    /// The underlying status failed (bad signature / proof / freshness).
    Status(StatusError),
}

impl core::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ValidationError::ChainLengthMismatch { got, expected } => {
                write!(f, "payload has {got} statuses for {expected} certificates")
            }
            ValidationError::UnknownCa(ca) => write!(f, "no pinned key for CA {ca}"),
            ValidationError::CaMismatch => f.write_str("status CA does not match certificate issuer"),
            ValidationError::Status(e) => write!(f, "status invalid: {e}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a status payload for a certificate chain (leaf first).
///
/// A payload may cover only the leaf (the default RA behaviour) or the whole
/// chain (§VIII); it must be a prefix of the chain either way.
///
/// # Errors
///
/// Returns [`ValidationError`] when the payload proves nothing; a
/// *successful* return may still carry the [`Verdict::Revoked`] verdict.
pub fn validate_payload(
    payload: &StatusPayload,
    chain: &[(CaId, SerialNumber)],
    ca_keys: &HashMap<CaId, VerifyingKey>,
    delta: u64,
    now: u64,
) -> Result<Verdict, ValidationError> {
    if payload.statuses.is_empty() || payload.statuses.len() > chain.len() {
        return Err(ValidationError::ChainLengthMismatch {
            got: payload.statuses.len(),
            expected: chain.len(),
        });
    }
    for (status, (ca, serial)) in payload.statuses.iter().zip(chain) {
        if status.signed_root.ca != *ca {
            return Err(ValidationError::CaMismatch);
        }
        let key = ca_keys.get(ca).ok_or(ValidationError::UnknownCa(*ca))?;
        let outcome = status
            .validate(serial, key, delta, now)
            .map_err(ValidationError::Status)?;
        if let ritm_dictionary::ProvenStatus::Revoked { number } = outcome {
            return Ok(Verdict::Revoked { serial: *serial, number });
        }
    }
    Ok(Verdict::AllValid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::{CaDictionary, MirrorDictionary};

    const T0: u64 = 1_000_000;
    const DELTA: u64 = 10;

    struct Fixture {
        ca: CaDictionary,
        mirror: MirrorDictionary,
        keys: HashMap<CaId, VerifyingKey>,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(51);
        let mut ca = CaDictionary::new(
            CaId::from_name("VCA"),
            SigningKey::from_seed([1u8; 32]),
            DELTA,
            1 << 12,
            &mut rng,
            T0,
        );
        let mut mirror =
            MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root()).unwrap();
        mirror.set_delta(DELTA);
        let serials: Vec<SerialNumber> = (50..60u32).map(SerialNumber::from_u24).collect();
        let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
        mirror.apply_issuance(&iss, T0 + 1).unwrap();
        let mut keys = HashMap::new();
        keys.insert(ca.ca(), ca.verifying_key());
        Fixture { ca, mirror, keys }
    }

    fn payload_for(f: &Fixture, serial: u32) -> StatusPayload {
        StatusPayload {
            statuses: vec![f.mirror.prove(&SerialNumber::from_u24(serial))],
        }
    }

    #[test]
    fn valid_absence_accepted() {
        let f = fixture();
        let chain = [(f.ca.ca(), SerialNumber::from_u24(200))];
        let v = validate_payload(&payload_for(&f, 200), &chain, &f.keys, DELTA, T0 + 2).unwrap();
        assert_eq!(v, Verdict::AllValid);
    }

    #[test]
    fn revoked_detected() {
        let f = fixture();
        let chain = [(f.ca.ca(), SerialNumber::from_u24(55))];
        let v = validate_payload(&payload_for(&f, 55), &chain, &f.keys, DELTA, T0 + 2).unwrap();
        assert!(matches!(v, Verdict::Revoked { number: 6, .. }));
    }

    #[test]
    fn stale_freshness_rejected() {
        let f = fixture();
        let chain = [(f.ca.ca(), SerialNumber::from_u24(200))];
        let err = validate_payload(
            &payload_for(&f, 200),
            &chain,
            &f.keys,
            DELTA,
            T0 + 1 + 3 * DELTA,
        )
        .unwrap_err();
        assert!(matches!(err, ValidationError::Status(StatusError::NotFresh(_))));
    }

    #[test]
    fn unknown_ca_rejected() {
        let f = fixture();
        let chain = [(f.ca.ca(), SerialNumber::from_u24(200))];
        let err =
            validate_payload(&payload_for(&f, 200), &chain, &HashMap::new(), DELTA, T0 + 2)
                .unwrap_err();
        assert!(matches!(err, ValidationError::UnknownCa(_)));
    }

    #[test]
    fn mismatched_chain_rejected() {
        let f = fixture();
        // Status is for VCA's dictionary but the chain claims another CA.
        let chain = [(CaId::from_name("OtherCA"), SerialNumber::from_u24(200))];
        let err = validate_payload(&payload_for(&f, 200), &chain, &f.keys, DELTA, T0 + 2)
            .unwrap_err();
        assert_eq!(err, ValidationError::CaMismatch);
    }

    #[test]
    fn proof_for_wrong_serial_rejected() {
        let f = fixture();
        // RA (maliciously) sends the absence proof for 200 while the chain's
        // leaf is actually revoked serial 55.
        let chain = [(f.ca.ca(), SerialNumber::from_u24(55))];
        let err = validate_payload(&payload_for(&f, 200), &chain, &f.keys, DELTA, T0 + 2)
            .unwrap_err();
        assert!(matches!(err, ValidationError::Status(StatusError::BadProof(_))));
    }

    #[test]
    fn empty_payload_rejected() {
        let f = fixture();
        let chain = [(f.ca.ca(), SerialNumber::from_u24(200))];
        let err = validate_payload(
            &StatusPayload { statuses: vec![] },
            &chain,
            &f.keys,
            DELTA,
            T0 + 2,
        )
        .unwrap_err();
        assert!(matches!(err, ValidationError::ChainLengthMismatch { .. }));
    }
}
