//! Client-side revocation-status validation — §III step 5 of the paper.
//!
//! The server's certificate is accepted only when (a) it passes standard
//! chain validation (done by `ritm-tls`), (b) the revocation status carries
//! a valid *absence* proof against a validly-signed root, and (c) the
//! freshness statement is no older than 2Δ.

use ritm_agent::StatusPayload;
use ritm_crypto::ed25519::VerifyingKey;
use ritm_dictionary::{CaId, SerialNumber, SignedRoot, StatusError};
use std::collections::HashMap;

/// The verdict from validating a status payload against a chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every certificate of the chain has a fresh absence proof.
    AllValid,
    /// Some certificate is revoked — the connection must be aborted.
    Revoked {
        /// The revoked certificate's serial.
        serial: SerialNumber,
        /// Its revocation number at the CA.
        number: u64,
    },
}

/// Why a status payload was rejected (distinct from a *revoked* verdict:
/// rejection means the payload proves nothing either way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Payload covers a different number of certificates than expected.
    ChainLengthMismatch {
        /// Statuses in the payload.
        got: usize,
        /// Certificates expected.
        expected: usize,
    },
    /// No pinned key for the CA named in a status.
    UnknownCa(CaId),
    /// A status referenced the wrong CA for its chain position.
    CaMismatch,
    /// The underlying status failed (bad signature / proof / freshness).
    Status(StatusError),
    /// The status carries an older dictionary epoch (smaller size, or equal
    /// size with an older timestamp) than one this client already accepted
    /// for the CA — a replayed root.
    RootRegression {
        /// The CA whose root regressed.
        ca: CaId,
    },
}

impl core::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ValidationError::ChainLengthMismatch { got, expected } => {
                write!(f, "payload has {got} statuses for {expected} certificates")
            }
            ValidationError::UnknownCa(ca) => write!(f, "no pinned key for CA {ca}"),
            ValidationError::CaMismatch => {
                f.write_str("status CA does not match certificate issuer")
            }
            ValidationError::Status(e) => write!(f, "status invalid: {e}"),
            ValidationError::RootRegression { ca } => {
                write!(
                    f,
                    "signed root for CA {ca} regressed behind an already-seen epoch"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a status payload for a certificate chain (leaf first).
///
/// A payload may cover only the leaf (the default RA behaviour) or the whole
/// chain (§VIII); it must be a prefix of the chain either way.
///
/// # Errors
///
/// Returns [`ValidationError`] when the payload proves nothing; a
/// *successful* return may still carry the [`Verdict::Revoked`] verdict.
pub fn validate_payload(
    payload: &StatusPayload,
    chain: &[(CaId, SerialNumber)],
    ca_keys: &HashMap<CaId, VerifyingKey>,
    delta: u64,
    now: u64,
) -> Result<Verdict, ValidationError> {
    validate_payload_tracked(
        payload,
        chain,
        ca_keys,
        delta,
        now,
        &mut RootTracker::disabled(),
    )
}

/// A client's record of the newest dictionary epoch it has accepted per CA.
///
/// The incremental dictionary engine tags every batch with a new epoch; on
/// the wire that epoch is observable as the signed root's
/// `(size, timestamp)` pair, which grows monotonically at an honest CA
/// (dictionaries are append-only). Tracking the largest accepted pair lets a
/// client reject *replayed* roots: an attacker (or a stale upstream RA)
/// re-serving a still-fresh status from before the latest revocation batch.
/// Within the paper's 2Δ freshness window such a replay would otherwise
/// validate.
#[derive(Debug, Clone, Default)]
pub struct RootTracker {
    /// CA → newest accepted `(size, timestamp)`.
    seen: HashMap<CaId, (u64, u64)>,
    disabled: bool,
}

impl RootTracker {
    /// A tracker that starts with no observations.
    pub fn new() -> Self {
        RootTracker::default()
    }

    /// A tracker that accepts everything (used by the untracked
    /// [`validate_payload`] entry point).
    fn disabled() -> Self {
        RootTracker {
            seen: HashMap::new(),
            disabled: true,
        }
    }

    /// Whether `root` is older than an epoch already known for its CA
    /// (`newer` overrides the stored state, letting callers dry-run a
    /// multi-status payload).
    fn regresses(&self, root: &SignedRoot, newer: Option<(u64, u64)>) -> bool {
        if self.disabled {
            return false;
        }
        match newer.or_else(|| self.newest(&root.ca)) {
            Some((size, ts)) => root.size < size || (root.size == size && root.timestamp < ts),
            None => false,
        }
    }

    /// Records `root` as accepted; rejects epoch regressions.
    ///
    /// # Errors
    ///
    /// [`ValidationError::RootRegression`] when `root` is older than the
    /// newest accepted root for the same CA.
    pub fn observe(&mut self, root: &SignedRoot) -> Result<(), ValidationError> {
        if self.disabled {
            return Ok(());
        }
        if self.regresses(root, None) {
            return Err(ValidationError::RootRegression { ca: root.ca });
        }
        self.seen.insert(root.ca, (root.size, root.timestamp));
        Ok(())
    }

    /// The newest accepted `(size, timestamp)` for `ca`, if any.
    pub fn newest(&self, ca: &CaId) -> Option<(u64, u64)> {
        self.seen.get(ca).copied()
    }

    /// Records a batch of already-regression-checked epochs (the commit
    /// half of validation's check-then-commit).
    fn commit(&mut self, pending: &HashMap<CaId, (u64, u64)>) {
        if self.disabled {
            return;
        }
        for (ca, newest) in pending {
            self.seen.insert(*ca, *newest);
        }
    }
}

/// [`validate_payload`] plus replay protection: every status root must be at
/// least as new as the newest this client already accepted (per CA), and
/// accepted roots advance the tracker.
///
/// # Errors
///
/// As [`validate_payload`], plus [`ValidationError::RootRegression`].
pub fn validate_payload_tracked(
    payload: &StatusPayload,
    chain: &[(CaId, SerialNumber)],
    ca_keys: &HashMap<CaId, VerifyingKey>,
    delta: u64,
    now: u64,
    tracker: &mut RootTracker,
) -> Result<Verdict, ValidationError> {
    if payload.is_empty() || payload.covered() > chain.len() {
        return Err(ValidationError::ChainLengthMismatch {
            got: payload.covered(),
            expected: chain.len(),
        });
    }
    // Two-phase check-then-commit: validate every entry (regression checks
    // run against the tracker state *plus* the earlier entries of this
    // payload), and only record once the payload is accepted — a payload
    // rejected at any point leaves the tracker untouched. A `Revoked`
    // verdict is an acceptance: the roots validated up to that point are
    // committed, so a client fed only revoked verdicts still refuses a
    // later replay of an older root.
    //
    // Coverage walks the chain in order: a compressed multi-status whose
    // first serial matches the current position consumes its whole run of
    // chain entries (all must share its CA and match its serials exactly);
    // otherwise the next individual status covers the position. Coverage
    // may end early (a leaf-only payload is a valid prefix), but every
    // payload entry must be consumed.
    let mut pending: HashMap<CaId, (u64, u64)> = HashMap::new();
    let mut singles = payload.statuses.iter();
    let mut multis = payload.multi.iter().peekable();
    let mut pos = 0;
    while pos < chain.len() {
        let (ca, serial) = chain[pos];
        // A multi entry is consumed here only when its *whole* run matches
        // the chain slice starting at this position; a first-serial match
        // alone is ambiguous when the chain repeats a serial (the entry
        // might belong to a later position), so mismatching runs fall
        // through to individual-status coverage.
        let next_multi_matches_here = multis.peek().is_some_and(|m| {
            m.signed_root.ca == ca
                && m.serials.first() == Some(&serial)
                && pos + m.serials.len() <= chain.len()
                && m.serials
                    .iter()
                    .zip(&chain[pos..pos + m.serials.len()])
                    .all(|(ms, (cca, cserial))| *cca == ca && ms == cserial)
        });
        if next_multi_matches_here {
            let m = multis.next().expect("peeked");
            let end = pos + m.serials.len();
            let key = ca_keys.get(&ca).ok_or(ValidationError::UnknownCa(ca))?;
            let outcomes = m
                .validate(key, delta, now)
                .map_err(ValidationError::Status)?;
            let sr = &m.signed_root;
            if tracker.regresses(sr, pending.get(&ca).copied()) {
                return Err(ValidationError::RootRegression { ca });
            }
            pending.insert(ca, (sr.size, sr.timestamp));
            for (outcome, (_, cserial)) in outcomes.iter().zip(&chain[pos..end]) {
                if let ritm_dictionary::ProvenStatus::Revoked { number } = outcome {
                    tracker.commit(&pending);
                    return Ok(Verdict::Revoked {
                        serial: *cserial,
                        number: *number,
                    });
                }
            }
            pos = end;
            continue;
        }
        let Some(status) = singles.next() else {
            break; // prefix coverage ends here
        };
        if status.signed_root.ca != ca {
            return Err(ValidationError::CaMismatch);
        }
        let key = ca_keys.get(&ca).ok_or(ValidationError::UnknownCa(ca))?;
        let outcome = status
            .validate(&serial, key, delta, now)
            .map_err(ValidationError::Status)?;
        let sr = &status.signed_root;
        if tracker.regresses(sr, pending.get(&ca).copied()) {
            return Err(ValidationError::RootRegression { ca });
        }
        pending.insert(ca, (sr.size, sr.timestamp));
        if let ritm_dictionary::ProvenStatus::Revoked { number } = outcome {
            tracker.commit(&pending);
            return Ok(Verdict::Revoked { serial, number });
        }
        pos += 1;
    }
    // Every entry must have matched a chain position.
    if singles.next().is_some() || multis.next().is_some() {
        return Err(ValidationError::ChainLengthMismatch {
            got: payload.covered(),
            expected: chain.len(),
        });
    }
    tracker.commit(&pending);
    Ok(Verdict::AllValid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::{CaDictionary, MirrorDictionary};

    const T0: u64 = 1_000_000;
    const DELTA: u64 = 10;

    struct Fixture {
        ca: CaDictionary,
        mirror: MirrorDictionary,
        keys: HashMap<CaId, VerifyingKey>,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(51);
        let mut ca = CaDictionary::new(
            CaId::from_name("VCA"),
            SigningKey::from_seed([1u8; 32]),
            DELTA,
            1 << 12,
            &mut rng,
            T0,
        );
        let mut mirror =
            MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root()).unwrap();
        mirror.set_delta(DELTA);
        let serials: Vec<SerialNumber> = (50..60u32).map(SerialNumber::from_u24).collect();
        let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
        mirror.apply_issuance(&iss, T0 + 1).unwrap();
        let mut keys = HashMap::new();
        keys.insert(ca.ca(), ca.verifying_key());
        Fixture { ca, mirror, keys }
    }

    fn payload_for(f: &Fixture, serial: u32) -> StatusPayload {
        StatusPayload::single(vec![f.mirror.prove(&SerialNumber::from_u24(serial))])
    }

    fn multi_payload_for(f: &Fixture, serials: &[u32]) -> StatusPayload {
        let serials: Vec<SerialNumber> =
            serials.iter().map(|&v| SerialNumber::from_u24(v)).collect();
        StatusPayload {
            statuses: vec![],
            multi: vec![f.mirror.prove_multi(&serials)],
        }
    }

    fn chain_of(f: &Fixture, serials: &[u32]) -> Vec<(CaId, SerialNumber)> {
        serials
            .iter()
            .map(|&v| (f.ca.ca(), SerialNumber::from_u24(v)))
            .collect()
    }

    #[test]
    fn compressed_chain_all_absent_accepted() {
        let f = fixture();
        let chain = chain_of(&f, &[200, 300, 400]);
        let payload = multi_payload_for(&f, &[200, 300, 400]);
        let v = validate_payload(&payload, &chain, &f.keys, DELTA, T0 + 2).unwrap();
        assert_eq!(v, Verdict::AllValid);
    }

    #[test]
    fn compressed_chain_detects_revoked() {
        let f = fixture();
        // 55 is revoked in the fixture.
        let chain = chain_of(&f, &[200, 55, 400]);
        let payload = multi_payload_for(&f, &[200, 55, 400]);
        let v = validate_payload(&payload, &chain, &f.keys, DELTA, T0 + 2).unwrap();
        assert!(
            matches!(v, Verdict::Revoked { serial, .. } if serial == SerialNumber::from_u24(55))
        );
    }

    #[test]
    fn compressed_entry_must_match_chain_serials() {
        let f = fixture();
        // Proof covers (200, 300) but the chain presents (200, 301): the
        // entry matches no chain run, is never consumed, and the payload
        // is rejected for covering nothing that exists.
        let chain = chain_of(&f, &[200, 301]);
        let payload = multi_payload_for(&f, &[200, 300]);
        let err = validate_payload(&payload, &chain, &f.keys, DELTA, T0 + 2).unwrap_err();
        assert!(matches!(err, ValidationError::ChainLengthMismatch { .. }));
    }

    #[test]
    fn repeated_serial_chain_routes_multi_to_its_own_run() {
        // Chain [(A,s),(A,s),(A,x)]: the RA proves the leaf individually
        // and compresses positions 1-2 as [s, x]. The multi's first serial
        // equals position 0's serial, but its full run only matches at
        // position 1 — the validator must not misroute it.
        let f = fixture();
        let s = 200u32;
        let x = 300u32;
        let chain = chain_of(&f, &[s, s, x]);
        let payload = StatusPayload {
            statuses: vec![f.mirror.prove(&SerialNumber::from_u24(s))],
            multi: vec![f
                .mirror
                .prove_multi(&[SerialNumber::from_u24(s), SerialNumber::from_u24(x)])],
        };
        let v = validate_payload(&payload, &chain, &f.keys, DELTA, T0 + 2).unwrap();
        assert_eq!(v, Verdict::AllValid);
    }

    #[test]
    fn compressed_entry_longer_than_chain_rejected() {
        let f = fixture();
        let chain = chain_of(&f, &[200]);
        let payload = multi_payload_for(&f, &[200, 300]);
        let err = validate_payload(&payload, &chain, &f.keys, DELTA, T0 + 2).unwrap_err();
        assert!(matches!(err, ValidationError::ChainLengthMismatch { .. }));
    }

    #[test]
    fn mixed_single_and_compressed_coverage() {
        let f = fixture();
        // Leaf proven individually, the two intermediates compressed.
        let chain = chain_of(&f, &[200, 300, 400]);
        let payload = StatusPayload {
            statuses: vec![f.mirror.prove(&SerialNumber::from_u24(200))],
            multi: vec![f
                .mirror
                .prove_multi(&[SerialNumber::from_u24(300), SerialNumber::from_u24(400)])],
        };
        let round = StatusPayload::from_bytes(&payload.to_bytes()).unwrap();
        assert_eq!(round, payload, "mixed payload must round-trip");
        let v = validate_payload(&round, &chain, &f.keys, DELTA, T0 + 2).unwrap();
        assert_eq!(v, Verdict::AllValid);
    }

    #[test]
    fn replayed_compressed_root_rejected_by_tracker() {
        let mut f = fixture();
        let mut rng = StdRng::seed_from_u64(57);
        let chain = chain_of(&f, &[200, 300]);
        let mut tracker = RootTracker::new();
        let old_payload = multi_payload_for(&f, &[200, 300]);

        let iss =
            f.ca.insert(&[SerialNumber::from_u24(900)], &mut rng, T0 + 2)
                .unwrap();
        f.mirror.apply_issuance(&iss, T0 + 2).unwrap();
        let v = validate_payload_tracked(
            &multi_payload_for(&f, &[200, 300]),
            &chain,
            &f.keys,
            DELTA,
            T0 + 3,
            &mut tracker,
        )
        .unwrap();
        assert_eq!(v, Verdict::AllValid);
        assert_eq!(tracker.newest(&f.ca.ca()), Some((11, T0 + 2)));

        let err =
            validate_payload_tracked(&old_payload, &chain, &f.keys, DELTA, T0 + 3, &mut tracker)
                .unwrap_err();
        assert_eq!(err, ValidationError::RootRegression { ca: f.ca.ca() });
    }

    #[test]
    fn revoked_verdict_still_advances_tracker() {
        // A client that only ever sees revoked verdicts must still build
        // replay protection: the root validated on the revoked path is
        // committed, so a later replay of an older root is refused.
        let mut f = fixture();
        let mut rng = StdRng::seed_from_u64(58);
        let chain = chain_of(&f, &[55]); // revoked serial
        let mut tracker = RootTracker::new();
        let old_payload = payload_for(&f, 55);

        let iss =
            f.ca.insert(&[SerialNumber::from_u24(901)], &mut rng, T0 + 2)
                .unwrap();
        f.mirror.apply_issuance(&iss, T0 + 2).unwrap();
        let v = validate_payload_tracked(
            &payload_for(&f, 55),
            &chain,
            &f.keys,
            DELTA,
            T0 + 3,
            &mut tracker,
        )
        .unwrap();
        assert!(matches!(v, Verdict::Revoked { number: 6, .. }));
        assert_eq!(tracker.newest(&f.ca.ca()), Some((11, T0 + 2)));

        let err =
            validate_payload_tracked(&old_payload, &chain, &f.keys, DELTA, T0 + 3, &mut tracker)
                .unwrap_err();
        assert_eq!(err, ValidationError::RootRegression { ca: f.ca.ca() });
    }

    #[test]
    fn valid_absence_accepted() {
        let f = fixture();
        let chain = [(f.ca.ca(), SerialNumber::from_u24(200))];
        let v = validate_payload(&payload_for(&f, 200), &chain, &f.keys, DELTA, T0 + 2).unwrap();
        assert_eq!(v, Verdict::AllValid);
    }

    #[test]
    fn revoked_detected() {
        let f = fixture();
        let chain = [(f.ca.ca(), SerialNumber::from_u24(55))];
        let v = validate_payload(&payload_for(&f, 55), &chain, &f.keys, DELTA, T0 + 2).unwrap();
        assert!(matches!(v, Verdict::Revoked { number: 6, .. }));
    }

    #[test]
    fn stale_freshness_rejected() {
        let f = fixture();
        let chain = [(f.ca.ca(), SerialNumber::from_u24(200))];
        let err = validate_payload(
            &payload_for(&f, 200),
            &chain,
            &f.keys,
            DELTA,
            T0 + 1 + 3 * DELTA,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ValidationError::Status(StatusError::NotFresh(_))
        ));
    }

    #[test]
    fn unknown_ca_rejected() {
        let f = fixture();
        let chain = [(f.ca.ca(), SerialNumber::from_u24(200))];
        let err = validate_payload(
            &payload_for(&f, 200),
            &chain,
            &HashMap::new(),
            DELTA,
            T0 + 2,
        )
        .unwrap_err();
        assert!(matches!(err, ValidationError::UnknownCa(_)));
    }

    #[test]
    fn mismatched_chain_rejected() {
        let f = fixture();
        // Status is for VCA's dictionary but the chain claims another CA.
        let chain = [(CaId::from_name("OtherCA"), SerialNumber::from_u24(200))];
        let err =
            validate_payload(&payload_for(&f, 200), &chain, &f.keys, DELTA, T0 + 2).unwrap_err();
        assert_eq!(err, ValidationError::CaMismatch);
    }

    #[test]
    fn proof_for_wrong_serial_rejected() {
        let f = fixture();
        // RA (maliciously) sends the absence proof for 200 while the chain's
        // leaf is actually revoked serial 55.
        let chain = [(f.ca.ca(), SerialNumber::from_u24(55))];
        let err =
            validate_payload(&payload_for(&f, 200), &chain, &f.keys, DELTA, T0 + 2).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::Status(StatusError::BadProof(_))
        ));
    }

    #[test]
    fn replayed_older_root_rejected_by_tracker() {
        let mut f = fixture();
        let mut rng = StdRng::seed_from_u64(52);
        let chain = [(f.ca.ca(), SerialNumber::from_u24(200))];
        let mut tracker = RootTracker::new();

        // Snapshot a status from the current (size 10) dictionary.
        let old_payload = payload_for(&f, 200);

        // The CA revokes one more serial; the mirror catches up, and the
        // client accepts a status at the new epoch (size 11).
        let iss =
            f.ca.insert(&[SerialNumber::from_u24(900)], &mut rng, T0 + 2)
                .unwrap();
        f.mirror.apply_issuance(&iss, T0 + 2).unwrap();
        let v = validate_payload_tracked(
            &payload_for(&f, 200),
            &chain,
            &f.keys,
            DELTA,
            T0 + 3,
            &mut tracker,
        )
        .unwrap();
        assert_eq!(v, Verdict::AllValid);
        assert_eq!(tracker.newest(&f.ca.ca()), Some((11, T0 + 2)));

        // Replaying the still-fresh pre-revocation status must now fail,
        // even though untracked validation would accept it.
        let err =
            validate_payload_tracked(&old_payload, &chain, &f.keys, DELTA, T0 + 3, &mut tracker)
                .unwrap_err();
        assert_eq!(err, ValidationError::RootRegression { ca: f.ca.ca() });
        assert!(validate_payload(&old_payload, &chain, &f.keys, DELTA, T0 + 3).is_ok());
    }

    #[test]
    fn intra_payload_regression_rejected_without_advancing_tracker() {
        // A payload whose second status (same CA) is older than its first:
        // rejected as a regression, and the tracker records neither.
        let mut f = fixture();
        let mut rng = StdRng::seed_from_u64(53);
        let old_status = f.mirror.prove(&SerialNumber::from_u24(200));
        let iss =
            f.ca.insert(&[SerialNumber::from_u24(900)], &mut rng, T0 + 2)
                .unwrap();
        f.mirror.apply_issuance(&iss, T0 + 2).unwrap();
        let new_status = f.mirror.prove(&SerialNumber::from_u24(200));

        let payload = StatusPayload::single(vec![new_status, old_status]);
        let chain = [
            (f.ca.ca(), SerialNumber::from_u24(200)),
            (f.ca.ca(), SerialNumber::from_u24(200)),
        ];
        let mut tracker = RootTracker::new();
        let err = validate_payload_tracked(&payload, &chain, &f.keys, DELTA, T0 + 3, &mut tracker)
            .unwrap_err();
        assert_eq!(err, ValidationError::RootRegression { ca: f.ca.ca() });
        assert_eq!(
            tracker.newest(&f.ca.ca()),
            None,
            "rejected payload must not poison the tracker"
        );
    }

    #[test]
    fn tracker_not_poisoned_by_rejected_payload() {
        let f = fixture();
        let mut tracker = RootTracker::new();
        // A payload failing CA-mismatch must record nothing.
        let chain = [(CaId::from_name("OtherCA"), SerialNumber::from_u24(200))];
        let err = validate_payload_tracked(
            &payload_for(&f, 200),
            &chain,
            &f.keys,
            DELTA,
            T0 + 2,
            &mut tracker,
        )
        .unwrap_err();
        assert_eq!(err, ValidationError::CaMismatch);
        assert_eq!(tracker.newest(&f.ca.ca()), None);
    }

    #[test]
    fn empty_payload_rejected() {
        let f = fixture();
        let chain = [(f.ca.ca(), SerialNumber::from_u24(200))];
        let err = validate_payload(&StatusPayload::default(), &chain, &f.keys, DELTA, T0 + 2)
            .unwrap_err();
        assert!(matches!(err, ValidationError::ChainLengthMismatch { .. }));
    }
}
