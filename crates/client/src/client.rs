//! The RITM-supported TLS client (paper §III steps 1, 5, 7; §IV downgrade
//! protection).
//!
//! Wraps the `ritm-tls` client state machine and enforces the RITM
//! acceptance policy: the connection lives only while fresh absence proofs
//! keep arriving. On a presence proof — even mid-connection — the client
//! tears the connection down, which is what closes the race-condition
//! window for long-lived connections (§V "Race Condition").

use crate::validator::{validate_payload_tracked, RootTracker, ValidationError, Verdict};
use ritm_agent::StatusPayload;
use ritm_crypto::ed25519::VerifyingKey;
use ritm_dictionary::{CaId, SerialNumber};
use ritm_tls::alert::AlertDescription;
use ritm_tls::certificate::TrustAnchors;
use ritm_tls::connection::{ClientConfig, ClientEvent, TlsClient, TlsError};
use ritm_tls::record::TlsRecord;
use ritm_tls::session::SessionState;
use std::collections::HashMap;

/// How the client defends against downgrade attacks (§IV, §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DowngradePolicy {
    /// Incremental deployment: accept connections without any RA on path.
    AllowMissing,
    /// Close-to-server model: require statuses when the server's
    /// TLS-terminator confirmed RITM support in its ServerHello.
    RequireIfServerConfirms,
    /// Close-to-client model: the access network promised an RA (e.g. via
    /// authenticated DHCP), so statuses are always required.
    AlwaysRequire,
}

/// RITM client configuration.
#[derive(Debug, Clone)]
pub struct RitmClientConfig {
    /// Server to connect to.
    pub server_name: String,
    /// PKI trust anchors for standard validation (step 5a).
    pub anchors: TrustAnchors,
    /// Pinned CA keys for revocation-status validation (step 5b).
    pub ca_keys: HashMap<CaId, VerifyingKey>,
    /// Dissemination period Δ in seconds.
    pub delta: u64,
    /// Downgrade policy.
    pub policy: DowngradePolicy,
}

/// Why the client aborted.
#[derive(Debug, Clone, PartialEq)]
pub enum AbortReason {
    /// A presence proof arrived: the certificate is revoked.
    Revoked {
        /// The revoked serial.
        serial: SerialNumber,
    },
    /// Policy demanded a revocation status and none (valid) arrived by
    /// handshake completion.
    MissingStatus,
    /// No fresh status within 2Δ on an established connection.
    StaleStatus,
}

/// Events surfaced to the application driving the client.
#[derive(Debug, Clone, PartialEq)]
pub enum RitmEvent {
    /// Handshake completed under the policy.
    Established {
        /// Whether the session was resumed.
        resumed: bool,
    },
    /// A fresh absence proof was validated (initial or periodic).
    StatusAccepted,
    /// An invalid status was discarded (kept for diagnostics; an attacker
    /// can always inject garbage, which must not kill the connection by
    /// itself — only the *absence* of valid statuses does).
    StatusRejected(ValidationError),
    /// Application data.
    Data(Vec<u8>),
    /// The client aborted the connection.
    Aborted(AbortReason),
}

/// A RITM-supported TLS client connection.
pub struct RitmClient {
    tls: TlsClient,
    config: RitmClientConfig,
    chain: Vec<(CaId, SerialNumber)>,
    pending_status: Vec<StatusPayload>,
    /// Per-CA newest accepted dictionary epoch (replay protection).
    root_tracker: RootTracker,
    /// Time of the last accepted status.
    last_valid: Option<u64>,
    established: bool,
    resumed_chain: bool,
    server_confirmed: bool,
    aborted: Option<AbortReason>,
}

impl core::fmt::Debug for RitmClient {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RitmClient")
            .field("server", &self.config.server_name)
            .field("established", &self.established)
            .field("last_valid", &self.last_valid)
            .field("aborted", &self.aborted)
            .finish()
    }
}

impl RitmClient {
    /// Creates a client; `resume` carries a cached session *and* the
    /// certificate identities remembered from the original handshake
    /// (resumed handshakes carry no Certificate message).
    ///
    /// Starts with an empty [`RootTracker`], so replay protection spans
    /// this connection only; applications wanting cross-connection
    /// protection (the stale-upstream-RA case) should carry the tracker
    /// from [`RitmClient::root_tracker`] into
    /// [`RitmClient::with_root_tracker`] on the next connection.
    pub fn new(
        config: RitmClientConfig,
        random: [u8; 32],
        resume: Option<(SessionState, Vec<(CaId, SerialNumber)>)>,
    ) -> Self {
        Self::with_root_tracker(config, random, resume, RootTracker::new())
    }

    /// [`RitmClient::new`] with a [`RootTracker`] carried over from earlier
    /// connections, extending epoch-replay protection across handshakes.
    pub fn with_root_tracker(
        config: RitmClientConfig,
        random: [u8; 32],
        resume: Option<(SessionState, Vec<(CaId, SerialNumber)>)>,
        root_tracker: RootTracker,
    ) -> Self {
        let (session, chain) = match resume {
            Some((s, c)) => (Some(s), c),
            None => (None, Vec::new()),
        };
        let tls = TlsClient::new(
            ClientConfig {
                server_name: config.server_name.clone(),
                anchors: config.anchors.clone(),
                enable_ritm: true,
            },
            random,
            session,
        );
        RitmClient {
            tls,
            config,
            resumed_chain: !chain.is_empty(),
            chain,
            pending_status: Vec::new(),
            root_tracker,
            last_valid: None,
            established: false,
            server_confirmed: false,
            aborted: None,
        }
    }

    /// Starts the handshake (emits the ClientHello with the RITM extension).
    pub fn start(&mut self) -> TlsRecord {
        self.tls.start()
    }

    /// `true` once established and not aborted.
    pub fn is_established(&self) -> bool {
        self.established && self.aborted.is_none()
    }

    /// Why the client aborted, if it did.
    pub fn abort_reason(&self) -> Option<&AbortReason> {
        self.aborted.as_ref()
    }

    /// The certificate identities of the current connection.
    pub fn chain_identities(&self) -> &[(CaId, SerialNumber)] {
        &self.chain
    }

    /// The per-CA newest-accepted-epoch record — carry it into the next
    /// connection via [`RitmClient::with_root_tracker`] for
    /// cross-connection replay protection.
    pub fn root_tracker(&self) -> &RootTracker {
        &self.root_tracker
    }

    /// The session state + identities to cache for later resumption.
    pub fn resumption_data(&self, now: u64) -> Option<(SessionState, Vec<(CaId, SerialNumber)>)> {
        Some((self.tls.session_state(now)?, self.chain.clone()))
    }

    /// Seconds since the last accepted status, if any.
    pub fn status_age(&self, now: u64) -> Option<u64> {
        self.last_valid.map(|t| now.saturating_sub(t))
    }

    fn requires_status(&self) -> bool {
        match self.config.policy {
            DowngradePolicy::AllowMissing => false,
            DowngradePolicy::RequireIfServerConfirms => self.server_confirmed,
            DowngradePolicy::AlwaysRequire => true,
        }
    }

    fn abort(
        &mut self,
        reason: AbortReason,
        out: &mut Vec<TlsRecord>,
        events: &mut Vec<RitmEvent>,
    ) {
        let desc = match reason {
            AbortReason::Revoked { .. } => AlertDescription::CertificateRevoked,
            AbortReason::MissingStatus | AbortReason::StaleStatus => {
                AlertDescription::CertificateUnknown
            }
        };
        out.push(self.tls.abort(desc));
        events.push(RitmEvent::Aborted(reason.clone()));
        self.aborted = Some(reason);
    }

    fn handle_status_bytes(
        &mut self,
        bytes: &[u8],
        now: u64,
        out: &mut Vec<TlsRecord>,
        events: &mut Vec<RitmEvent>,
    ) {
        let Ok(payload) = StatusPayload::from_bytes(bytes) else {
            events.push(RitmEvent::StatusRejected(
                ValidationError::ChainLengthMismatch {
                    got: 0,
                    expected: self.chain.len(),
                },
            ));
            return;
        };
        if self.chain.is_empty() {
            // Certificate not seen yet (should not happen given record
            // ordering, but a hostile RA could reorder): buffer it.
            self.pending_status.push(payload);
            return;
        }
        match validate_payload_tracked(
            &payload,
            &self.chain,
            &self.config.ca_keys,
            self.config.delta,
            now,
            &mut self.root_tracker,
        ) {
            Ok(Verdict::AllValid) => {
                self.last_valid = Some(now);
                events.push(RitmEvent::StatusAccepted);
            }
            Ok(Verdict::Revoked { serial, .. }) => {
                self.abort(AbortReason::Revoked { serial }, out, events);
            }
            Err(e) => events.push(RitmEvent::StatusRejected(e)),
        }
    }

    /// Feeds one inbound record; returns records to send and events.
    ///
    /// # Errors
    ///
    /// TLS-level failures are returned as [`TlsError`]; RITM policy
    /// violations surface as [`RitmEvent::Aborted`] plus an alert record.
    pub fn process_record(
        &mut self,
        record: &TlsRecord,
        now: u64,
    ) -> Result<(Vec<TlsRecord>, Vec<RitmEvent>), TlsError> {
        if self.aborted.is_some() {
            return Err(TlsError::Closed);
        }
        let (mut out, tls_events) = self.tls.process_record(record, now)?;
        let mut events = Vec::new();
        for ev in tls_events {
            match ev {
                ClientEvent::CertificateReceived(chain) => {
                    self.chain = chain.0.iter().map(|c| (c.issuer, c.serial)).collect();
                    // Drain any early-arriving statuses.
                    let pending = std::mem::take(&mut self.pending_status);
                    for p in pending {
                        let bytes = p.to_bytes();
                        self.handle_status_bytes(&bytes, now, &mut out, &mut events);
                    }
                }
                ClientEvent::RitmStatus(bytes) => {
                    self.handle_status_bytes(&bytes, now, &mut out, &mut events);
                }
                ClientEvent::HandshakeComplete {
                    resumed,
                    server_confirms_ritm,
                } => {
                    self.server_confirmed = server_confirms_ritm;
                    if resumed && !self.resumed_chain {
                        // Resumed without remembered identities: statuses
                        // cannot be validated; treat per policy below.
                    }
                    if self.requires_status() && self.last_valid.is_none() {
                        self.abort(AbortReason::MissingStatus, &mut out, &mut events);
                    } else {
                        self.established = true;
                        events.push(RitmEvent::Established { resumed });
                    }
                }
                ClientEvent::ReceivedData(d) => events.push(RitmEvent::Data(d)),
                ClientEvent::ConnectionClosed => {}
            }
            if self.aborted.is_some() {
                break;
            }
        }
        Ok((out, events))
    }

    /// Periodic policy enforcement (§III step 7): on an established
    /// connection the client expects a fresh status at least every Δ and
    /// interrupts after 2Δ without one. Returns the alert record to send
    /// when the connection must be torn down.
    pub fn tick(&mut self, now: u64) -> Option<(TlsRecord, RitmEvent)> {
        if !self.is_established() || !self.requires_status() {
            return None;
        }
        let stale = match self.last_valid {
            Some(t) => now.saturating_sub(t) > 2 * self.config.delta,
            None => true,
        };
        if stale {
            let mut out = Vec::new();
            let mut events = Vec::new();
            self.abort(AbortReason::StaleStatus, &mut out, &mut events);
            Some((out.remove(0), events.remove(0)))
        } else {
            None
        }
    }

    /// Sends application data.
    ///
    /// # Errors
    ///
    /// [`TlsError::Closed`] before establishment or after an abort.
    pub fn send_data(&mut self, data: &[u8]) -> Result<TlsRecord, TlsError> {
        if self.aborted.is_some() {
            return Err(TlsError::Closed);
        }
        self.tls.send_data(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_agent::{RaConfig, RevocationAgent};
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::CaDictionary;
    use ritm_net::middlebox::Middlebox;
    use ritm_net::tcp::{Direction, FourTuple, SocketAddr, TcpSegment};
    use ritm_net::time::SimTime;
    use ritm_tls::certificate::{Certificate, CertificateChain};
    use ritm_tls::connection::{ServerConnection, ServerContext};

    const T0: u64 = 1_000_000;
    const DELTA: u64 = 10;

    fn tuple() -> FourTuple {
        FourTuple {
            client: SocketAddr::new(1, 9012),
            server: SocketAddr::new(2, 443),
        }
    }

    /// Full test world: CA, RA mirroring it, TLS server, RITM client.
    struct World {
        ca: CaDictionary,
        ra: RevocationAgent,
        server: ServerConnection,
        client: RitmClient,
        rng: StdRng,
    }

    fn world(revoke_server_cert: bool, policy: DowngradePolicy) -> World {
        let mut rng = StdRng::seed_from_u64(61);
        let ca_key = SigningKey::from_seed([1u8; 32]);
        let mut ca = CaDictionary::new(
            CaId::from_name("WCA"),
            ca_key.clone(),
            DELTA,
            1 << 12,
            &mut rng,
            T0,
        );
        let mut ra = RevocationAgent::new(RaConfig {
            delta: DELTA,
            ..Default::default()
        });
        ra.follow_ca(ca.ca(), ca.verifying_key(), *ca.signed_root())
            .unwrap();

        let server_key = SigningKey::from_seed([2u8; 32]);
        let cert = Certificate::issue(
            &ca_key,
            ca.ca(),
            SerialNumber::from_u24(0x073e10),
            "example.com",
            T0 - 100,
            T0 + 1_000_000,
            server_key.verifying_key(),
            false,
        );
        if revoke_server_cert {
            let iss = ca.insert(&[cert.serial], &mut rng, T0 + 1).unwrap();
            ra.mirror_mut(&ca.ca())
                .unwrap()
                .apply_issuance(&iss, T0 + 1)
                .unwrap();
        }

        let ctx = ServerContext::new(CertificateChain(vec![cert]), [9u8; 20]);
        let server = ServerConnection::new(ctx, [3u8; 32]);

        let mut anchors = TrustAnchors::new();
        anchors.add(ca.ca(), ca.verifying_key());
        let mut ca_keys = HashMap::new();
        ca_keys.insert(ca.ca(), ca.verifying_key());
        let client = RitmClient::new(
            RitmClientConfig {
                server_name: "example.com".into(),
                anchors,
                ca_keys,
                delta: DELTA,
                policy,
            },
            [4u8; 32],
            None,
        );
        World {
            ca,
            ra,
            server,
            client,
            rng,
        }
    }

    /// Drives the handshake through the RA, record by record, collecting
    /// client events.
    fn drive(w: &mut World, now: u64) -> Vec<RitmEvent> {
        let mut events = Vec::new();
        let mut to_server = vec![w.client.start()];
        let mut seq_up = 0u64;
        let mut seq_down = 0u64;
        for _ in 0..8 {
            let mut to_client = Vec::new();
            for rec in to_server.drain(..) {
                // client → RA → server
                let seg = TcpSegment::data(tuple(), Direction::ToServer, seq_up, 0, rec.to_bytes());
                seq_up += rec.encoded_len() as u64;
                for out_seg in w.ra.process(seg, SimTime::from_secs(now)) {
                    for r in TlsRecord::parse_stream(&out_seg.payload).unwrap() {
                        // A fatal alert from the client legitimately kills
                        // the server side; stop feeding it afterwards.
                        match w.server.process_record(&r, now) {
                            Ok((outs, _)) => to_client.extend(outs),
                            Err(_) => return events,
                        }
                    }
                }
            }
            for rec in to_client.drain(..) {
                // server → RA → client
                let seg =
                    TcpSegment::data(tuple(), Direction::ToClient, seq_down, 0, rec.to_bytes());
                seq_down += rec.encoded_len() as u64;
                for out_seg in w.ra.process(seg, SimTime::from_secs(now)) {
                    for r in TlsRecord::parse_stream(&out_seg.payload).unwrap() {
                        match w.client.process_record(&r, now) {
                            Ok((outs, evs)) => {
                                to_server.extend(outs);
                                events.extend(evs);
                            }
                            Err(_) => return events,
                        }
                    }
                }
            }
            if to_server.is_empty() && w.client.is_established() {
                break;
            }
        }
        events
    }

    #[test]
    fn valid_certificate_establishes_with_status() {
        let mut w = world(false, DowngradePolicy::AlwaysRequire);
        let events = drive(&mut w, T0 + 2);
        assert!(events.contains(&RitmEvent::StatusAccepted), "{events:?}");
        assert!(events.contains(&RitmEvent::Established { resumed: false }));
        assert!(w.client.is_established());
        assert_eq!(w.client.status_age(T0 + 2), Some(0));
    }

    #[test]
    fn revoked_certificate_aborts_handshake() {
        let mut w = world(true, DowngradePolicy::AlwaysRequire);
        let events = drive(&mut w, T0 + 2);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, RitmEvent::Aborted(AbortReason::Revoked { .. }))),
            "{events:?}"
        );
        assert!(!w.client.is_established());
        assert!(w.client.send_data(b"x").is_err());
    }

    #[test]
    fn downgrade_blocked_when_ra_missing() {
        // AlwaysRequire + no RA on path (adversary tunnelled around it):
        // the handshake completes at the TLS layer but RITM policy aborts.
        let mut w = world(false, DowngradePolicy::AlwaysRequire);
        let mut events = Vec::new();
        let mut to_server = vec![w.client.start()];
        for _ in 0..8 {
            let mut to_client = Vec::new();
            for rec in to_server.drain(..) {
                match w.server.process_record(&rec, T0 + 2) {
                    Ok((outs, _)) => to_client.extend(outs),
                    Err(_) => break,
                }
            }
            for rec in to_client.drain(..) {
                if let Ok((outs, evs)) = w.client.process_record(&rec, T0 + 2) {
                    to_server.extend(outs);
                    events.extend(evs);
                }
            }
            if to_server.is_empty() {
                break;
            }
        }
        assert!(
            events.contains(&RitmEvent::Aborted(AbortReason::MissingStatus)),
            "{events:?}"
        );
    }

    #[test]
    fn allow_missing_policy_permits_no_ra() {
        let mut w = world(false, DowngradePolicy::AllowMissing);
        let mut to_server = vec![w.client.start()];
        let mut established = false;
        for _ in 0..8 {
            let mut to_client = Vec::new();
            for rec in to_server.drain(..) {
                let (outs, _) = w.server.process_record(&rec, T0 + 2).unwrap();
                to_client.extend(outs);
            }
            for rec in to_client.drain(..) {
                let (outs, evs) = w.client.process_record(&rec, T0 + 2).unwrap();
                to_server.extend(outs);
                established |= evs
                    .iter()
                    .any(|e| matches!(e, RitmEvent::Established { .. }));
            }
            if to_server.is_empty() {
                break;
            }
        }
        assert!(established);
    }

    #[test]
    fn mid_connection_revocation_interrupts() {
        // The §V race-condition defence: revoke *after* establishment; the
        // next periodic status carries a presence proof and the client
        // aborts.
        let mut w = world(false, DowngradePolicy::AlwaysRequire);
        drive(&mut w, T0 + 2);
        assert!(w.client.is_established());

        // CA revokes the server's certificate; RA syncs.
        let serial = SerialNumber::from_u24(0x073e10);
        let iss = w.ca.insert(&[serial], &mut w.rng, T0 + 5).unwrap();
        w.ra.mirror_mut(&w.ca.ca())
            .unwrap()
            .apply_issuance(&iss, T0 + 5)
            .unwrap();

        // Δ later, the server sends data; the RA piggybacks the new status.
        let now = T0 + 2 + DELTA + 1;
        let data = w.server.send_data(b"payload").unwrap();
        let seg = TcpSegment::data(tuple(), Direction::ToClient, 50_000, 0, data.to_bytes());
        let mut aborted = false;
        for out_seg in w.ra.process(seg, SimTime::from_secs(now)) {
            for r in TlsRecord::parse_stream(&out_seg.payload).unwrap() {
                if let Ok((_, evs)) = w.client.process_record(&r, now) {
                    aborted |= evs
                        .iter()
                        .any(|e| matches!(e, RitmEvent::Aborted(AbortReason::Revoked { .. })));
                }
            }
        }
        assert!(
            aborted,
            "client must interrupt on mid-connection revocation"
        );
        assert!(!w.client.is_established());
    }

    #[test]
    fn blocking_statuses_stalls_connection() {
        // §V "MITM and Blocking Attack": an adversary dropping status
        // records cannot keep the connection alive past 2Δ.
        let mut w = world(false, DowngradePolicy::AlwaysRequire);
        drive(&mut w, T0 + 2);
        assert!(w.client.is_established());
        // No statuses arrive (adversary drops them); at +2Δ+1 the client
        // interrupts on its own.
        assert!(w.client.tick(T0 + 2 + 2 * DELTA).is_none(), "within 2Δ: ok");
        let (alert, ev) = w.client.tick(T0 + 3 + 2 * DELTA).expect("stale → abort");
        assert_eq!(ev, RitmEvent::Aborted(AbortReason::StaleStatus));
        assert_eq!(alert.content_type, ritm_tls::record::ContentType::Alert);
    }

    #[test]
    fn garbage_status_does_not_kill_connection() {
        let mut w = world(false, DowngradePolicy::AlwaysRequire);
        drive(&mut w, T0 + 2);
        let rec = TlsRecord::new(ritm_tls::record::ContentType::RitmStatus, vec![0xFF; 40]);
        let (_, evs) = w.client.process_record(&rec, T0 + 3).unwrap();
        assert!(matches!(evs[0], RitmEvent::StatusRejected(_)));
        assert!(w.client.is_established(), "garbage must not DoS the client");
    }
}
