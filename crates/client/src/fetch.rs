//! Client-side status fetching over the wire protocol.
//!
//! The in-path deployment piggybacks statuses on TLS records, but the same
//! validation logic also backs a *pull* model: a client (or an auditor, or
//! a test harness) asks an RA endpoint for a chain's statuses through any
//! [`Transport`] and runs the full §III step-5 acceptance policy on the
//! response. This replaces the hand-fed payload plumbing the integration
//! tests used before the protocol existed — the bytes validated here are
//! exactly the bytes a real endpoint served. Multi-chain fetches
//! ([`fetch_and_validate_many`]) ride one pipelined flight; on an
//! envelope-v2 event transport the flight is multiplexed by request id,
//! so one slow chain cannot head-of-line block the others' verdicts.

use crate::validator::{validate_payload_tracked, RootTracker, ValidationError, Verdict};
use ritm_crypto::ed25519::VerifyingKey;
use ritm_dictionary::{CaId, SerialNumber};
use ritm_proto::{
    ProtoError, RitmRequest, RitmResponse, StatusPayload, Transport, TransportError, TransportMeta,
};
use std::collections::HashMap;

/// Why a status fetch produced no verdict.
#[derive(Debug)]
pub enum FetchError {
    /// The transport failed (no decodable response).
    Transport(TransportError),
    /// The endpoint answered with a typed protocol error.
    Service(ProtoError),
    /// The endpoint answered with a non-status response kind.
    UnexpectedResponse(&'static str),
    /// The payload arrived but failed the acceptance policy.
    Validation(ValidationError),
}

impl core::fmt::Display for FetchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FetchError::Transport(e) => write!(f, "status fetch transport failure: {e}"),
            FetchError::Service(e) => write!(f, "endpoint refused status fetch: {e}"),
            FetchError::UnexpectedResponse(kind) => {
                write!(f, "endpoint answered with unexpected kind {kind}")
            }
            FetchError::Validation(e) => write!(f, "fetched status rejected: {e}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// A fetched-and-validated chain status.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchedStatus {
    /// The served payload (individual and/or compressed statuses).
    pub payload: StatusPayload,
    /// The acceptance-policy verdict.
    pub verdict: Verdict,
    /// Byte/latency accounting for the round trip.
    pub meta: TransportMeta,
}

/// Unwraps one completed round trip into its status payload, mapping the
/// error paths identically for the single and batched fetch entry points.
fn unwrap_status(
    rt: Result<ritm_proto::RoundTrip, ritm_proto::TransportError>,
) -> Result<(StatusPayload, TransportMeta), FetchError> {
    let rt = rt.map_err(FetchError::Transport)?;
    match rt.response {
        RitmResponse::Status(payload) => Ok((payload, rt.meta)),
        RitmResponse::Error(e) => Err(FetchError::Service(e)),
        other => Err(FetchError::UnexpectedResponse(other.kind_name())),
    }
}

/// Fetches the raw status payload for `chain` from an RA endpoint.
///
/// # Errors
///
/// [`FetchError::Transport`]/[`FetchError::Service`] when no payload came
/// back; [`FetchError::UnexpectedResponse`] on a mismatched response kind.
pub fn fetch_status<T: Transport>(
    transport: &mut T,
    chain: &[(CaId, SerialNumber)],
    compress: bool,
) -> Result<(StatusPayload, TransportMeta), FetchError> {
    let req = RitmRequest::GetMultiStatus {
        chain: chain.to_vec(),
        compress,
    };
    unwrap_status(transport.round_trip(&req))
}

/// Fetches `chain`'s statuses and runs the full acceptance policy
/// (signatures, absence proofs, ≤2Δ freshness, root-replay protection via
/// `tracker`).
///
/// # Errors
///
/// See [`FetchError`]. A successful return may still carry
/// [`Verdict::Revoked`] — that is a *valid* (and urgent) answer.
pub fn fetch_and_validate<T: Transport>(
    transport: &mut T,
    chain: &[(CaId, SerialNumber)],
    ca_keys: &HashMap<CaId, VerifyingKey>,
    delta: u64,
    now: u64,
    tracker: &mut RootTracker,
) -> Result<FetchedStatus, FetchError> {
    fetch_and_validate_many(transport, &[chain], ca_keys, delta, now, tracker)
        .pop()
        .expect("one chain yields one result")
}

/// Fetches and validates statuses for several independent chains in one
/// pipelined flight ([`Transport::round_trip_many`]): all `GetMultiStatus`
/// requests go onto the wire together, so on the event-driven transport N
/// chains cost ~1 RTT instead of N — the shape of a client (or terminating
/// middlebox) revalidating many open connections at a Δ boundary.
///
/// Results come back in `chains` order, each independently carrying its
/// verdict or [`FetchError`]; `tracker` is advanced across the whole
/// batch in that same order.
pub fn fetch_and_validate_many<T: Transport>(
    transport: &mut T,
    chains: &[&[(CaId, SerialNumber)]],
    ca_keys: &HashMap<CaId, VerifyingKey>,
    delta: u64,
    now: u64,
    tracker: &mut RootTracker,
) -> Vec<Result<FetchedStatus, FetchError>> {
    let reqs: Vec<RitmRequest> = chains
        .iter()
        .map(|chain| RitmRequest::GetMultiStatus {
            chain: chain.to_vec(),
            compress: true,
        })
        .collect();
    let round_trips = transport.round_trip_many(&reqs);
    chains
        .iter()
        .zip(round_trips)
        .map(|(chain, rt)| {
            let (payload, meta) = unwrap_status(rt)?;
            let verdict = validate_payload_tracked(&payload, chain, ca_keys, delta, now, tracker)
                .map_err(FetchError::Validation)?;
            Ok(FetchedStatus {
                payload,
                verdict,
                meta,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_agent::{RaConfig, RevocationAgent, StatusService};
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::CaDictionary;
    use ritm_proto::Loopback;

    const T0: u64 = 1_000_000;

    fn world(revoked: &[u32]) -> (CaDictionary, RevocationAgent, HashMap<CaId, VerifyingKey>) {
        let mut rng = StdRng::seed_from_u64(41);
        let mut ca = CaDictionary::new(
            CaId::from_name("FetchCA"),
            SigningKey::from_seed([1u8; 32]),
            10,
            1 << 10,
            &mut rng,
            T0,
        );
        let mut ra = RevocationAgent::new(RaConfig::default());
        ra.follow_ca(ca.ca(), ca.verifying_key(), *ca.signed_root())
            .unwrap();
        if !revoked.is_empty() {
            let serials: Vec<SerialNumber> =
                revoked.iter().map(|&v| SerialNumber::from_u24(v)).collect();
            let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
            ra.mirror_mut(&ca.ca())
                .unwrap()
                .apply_issuance(&iss, T0 + 1)
                .unwrap();
        }
        let mut keys = HashMap::new();
        keys.insert(ca.ca(), ca.verifying_key());
        (ca, ra, keys)
    }

    #[test]
    fn fetched_status_validates_end_to_end() {
        let (ca, ra, keys) = world(&[100, 102, 104]);
        let mut transport = Loopback::new(StatusService::new(ra.status_server()));
        let chain = [(ca.ca(), SerialNumber::from_u24(555))];
        let mut tracker = RootTracker::new();
        let out = fetch_and_validate(&mut transport, &chain, &keys, 10, T0 + 2, &mut tracker)
            .expect("serves and validates");
        assert_eq!(out.verdict, Verdict::AllValid);
        assert!(out.meta.response_bytes > 0);
        assert!(tracker.newest(&ca.ca()).is_some(), "tracker advanced");
    }

    #[test]
    fn revoked_serial_is_a_verdict_not_an_error() {
        let (ca, ra, keys) = world(&[100]);
        let mut transport = Loopback::new(StatusService::new(ra.status_server()));
        let chain = [(ca.ca(), SerialNumber::from_u24(100))];
        let out = fetch_and_validate(
            &mut transport,
            &chain,
            &keys,
            10,
            T0 + 2,
            &mut RootTracker::new(),
        )
        .unwrap();
        assert!(matches!(out.verdict, Verdict::Revoked { serial, .. }
            if serial == SerialNumber::from_u24(100)));
    }

    #[test]
    fn batched_chains_validate_in_order_with_one_tracker() {
        let (ca, ra, keys) = world(&[100, 102, 104]);
        let mut transport = Loopback::new(StatusService::new(ra.status_server()));
        let revoked = [(ca.ca(), SerialNumber::from_u24(102))];
        let valid = [(ca.ca(), SerialNumber::from_u24(555))];
        let stranger = [(CaId::from_name("stranger"), SerialNumber::from_u24(1))];
        let chains: [&[(CaId, SerialNumber)]; 3] = [&revoked, &valid, &stranger];
        let mut tracker = RootTracker::new();
        let results =
            fetch_and_validate_many(&mut transport, &chains, &keys, 10, T0 + 2, &mut tracker);
        assert_eq!(results.len(), 3);
        assert!(matches!(
            results[0].as_ref().unwrap().verdict,
            Verdict::Revoked { serial, .. } if serial == SerialNumber::from_u24(102)
        ));
        assert_eq!(results[1].as_ref().unwrap().verdict, Verdict::AllValid);
        // A per-chain failure stays per-chain: the batch's other results
        // are unaffected and the tracker still advanced.
        assert!(matches!(
            results[2],
            Err(FetchError::Service(ProtoError::NotFound))
        ));
        assert!(tracker.newest(&ca.ca()).is_some());
    }

    #[test]
    fn unmirrored_ca_surfaces_the_service_error() {
        let (_, ra, _) = world(&[]);
        let mut transport = Loopback::new(StatusService::new(ra.status_server()));
        let chain = [(CaId::from_name("stranger"), SerialNumber::from_u24(1))];
        match fetch_status(&mut transport, &chain, true) {
            // The RA stays silent about *which* CA it cannot prove.
            Err(FetchError::Service(ProtoError::NotFound)) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }
    }
}
