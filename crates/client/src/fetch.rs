//! Client-side status fetching over the wire protocol.
//!
//! The in-path deployment piggybacks statuses on TLS records, but the same
//! validation logic also backs a *pull* model: a client (or an auditor, or
//! a test harness) asks an RA endpoint for a chain's statuses through any
//! [`Transport`] and runs the full §III step-5 acceptance policy on the
//! response. This replaces the hand-fed payload plumbing the integration
//! tests used before the protocol existed — the bytes validated here are
//! exactly the bytes a real endpoint served.

use crate::validator::{validate_payload_tracked, RootTracker, ValidationError, Verdict};
use ritm_crypto::ed25519::VerifyingKey;
use ritm_dictionary::{CaId, SerialNumber};
use ritm_proto::{
    ProtoError, RitmRequest, RitmResponse, StatusPayload, Transport, TransportError, TransportMeta,
};
use std::collections::HashMap;

/// Why a status fetch produced no verdict.
#[derive(Debug)]
pub enum FetchError {
    /// The transport failed (no decodable response).
    Transport(TransportError),
    /// The endpoint answered with a typed protocol error.
    Service(ProtoError),
    /// The endpoint answered with a non-status response kind.
    UnexpectedResponse(&'static str),
    /// The payload arrived but failed the acceptance policy.
    Validation(ValidationError),
}

impl core::fmt::Display for FetchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FetchError::Transport(e) => write!(f, "status fetch transport failure: {e}"),
            FetchError::Service(e) => write!(f, "endpoint refused status fetch: {e}"),
            FetchError::UnexpectedResponse(kind) => {
                write!(f, "endpoint answered with unexpected kind {kind}")
            }
            FetchError::Validation(e) => write!(f, "fetched status rejected: {e}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// A fetched-and-validated chain status.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchedStatus {
    /// The served payload (individual and/or compressed statuses).
    pub payload: StatusPayload,
    /// The acceptance-policy verdict.
    pub verdict: Verdict,
    /// Byte/latency accounting for the round trip.
    pub meta: TransportMeta,
}

/// Fetches the raw status payload for `chain` from an RA endpoint.
///
/// # Errors
///
/// [`FetchError::Transport`]/[`FetchError::Service`] when no payload came
/// back; [`FetchError::UnexpectedResponse`] on a mismatched response kind.
pub fn fetch_status<T: Transport>(
    transport: &mut T,
    chain: &[(CaId, SerialNumber)],
    compress: bool,
) -> Result<(StatusPayload, TransportMeta), FetchError> {
    let req = RitmRequest::GetMultiStatus {
        chain: chain.to_vec(),
        compress,
    };
    let rt = transport.round_trip(&req).map_err(FetchError::Transport)?;
    match rt.response {
        RitmResponse::Status(payload) => Ok((payload, rt.meta)),
        RitmResponse::Error(e) => Err(FetchError::Service(e)),
        other => Err(FetchError::UnexpectedResponse(other.kind_name())),
    }
}

/// Fetches `chain`'s statuses and runs the full acceptance policy
/// (signatures, absence proofs, ≤2Δ freshness, root-replay protection via
/// `tracker`).
///
/// # Errors
///
/// See [`FetchError`]. A successful return may still carry
/// [`Verdict::Revoked`] — that is a *valid* (and urgent) answer.
pub fn fetch_and_validate<T: Transport>(
    transport: &mut T,
    chain: &[(CaId, SerialNumber)],
    ca_keys: &HashMap<CaId, VerifyingKey>,
    delta: u64,
    now: u64,
    tracker: &mut RootTracker,
) -> Result<FetchedStatus, FetchError> {
    let (payload, meta) = fetch_status(transport, chain, true)?;
    let verdict = validate_payload_tracked(&payload, chain, ca_keys, delta, now, tracker)
        .map_err(FetchError::Validation)?;
    Ok(FetchedStatus {
        payload,
        verdict,
        meta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_agent::{RaConfig, RevocationAgent, StatusService};
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::CaDictionary;
    use ritm_proto::Loopback;

    const T0: u64 = 1_000_000;

    fn world(revoked: &[u32]) -> (CaDictionary, RevocationAgent, HashMap<CaId, VerifyingKey>) {
        let mut rng = StdRng::seed_from_u64(41);
        let mut ca = CaDictionary::new(
            CaId::from_name("FetchCA"),
            SigningKey::from_seed([1u8; 32]),
            10,
            1 << 10,
            &mut rng,
            T0,
        );
        let mut ra = RevocationAgent::new(RaConfig::default());
        ra.follow_ca(ca.ca(), ca.verifying_key(), *ca.signed_root())
            .unwrap();
        if !revoked.is_empty() {
            let serials: Vec<SerialNumber> =
                revoked.iter().map(|&v| SerialNumber::from_u24(v)).collect();
            let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
            ra.mirror_mut(&ca.ca())
                .unwrap()
                .apply_issuance(&iss, T0 + 1)
                .unwrap();
        }
        let mut keys = HashMap::new();
        keys.insert(ca.ca(), ca.verifying_key());
        (ca, ra, keys)
    }

    #[test]
    fn fetched_status_validates_end_to_end() {
        let (ca, ra, keys) = world(&[100, 102, 104]);
        let mut transport = Loopback::new(StatusService::new(ra.status_server()));
        let chain = [(ca.ca(), SerialNumber::from_u24(555))];
        let mut tracker = RootTracker::new();
        let out = fetch_and_validate(&mut transport, &chain, &keys, 10, T0 + 2, &mut tracker)
            .expect("serves and validates");
        assert_eq!(out.verdict, Verdict::AllValid);
        assert!(out.meta.response_bytes > 0);
        assert!(tracker.newest(&ca.ca()).is_some(), "tracker advanced");
    }

    #[test]
    fn revoked_serial_is_a_verdict_not_an_error() {
        let (ca, ra, keys) = world(&[100]);
        let mut transport = Loopback::new(StatusService::new(ra.status_server()));
        let chain = [(ca.ca(), SerialNumber::from_u24(100))];
        let out = fetch_and_validate(
            &mut transport,
            &chain,
            &keys,
            10,
            T0 + 2,
            &mut RootTracker::new(),
        )
        .unwrap();
        assert!(matches!(out.verdict, Verdict::Revoked { serial, .. }
            if serial == SerialNumber::from_u24(100)));
    }

    #[test]
    fn unmirrored_ca_surfaces_the_service_error() {
        let (_, ra, _) = world(&[]);
        let mut transport = Loopback::new(StatusService::new(ra.status_server()));
        let chain = [(CaId::from_name("stranger"), SerialNumber::from_u24(1))];
        match fetch_status(&mut transport, &chain, true) {
            // The RA stays silent about *which* CA it cannot prove.
            Err(FetchError::Service(ProtoError::NotFound)) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }
    }
}
