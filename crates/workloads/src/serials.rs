//! Serial-number generation matching the paper's dataset observations
//! (§VII-A): serial sizes vary, with 3 bytes the most frequent (32 % of all
//! revocations), which is why the analyses use 3-byte serials.

use rand::Rng;
use ritm_dictionary::SerialNumber;
use std::collections::HashSet;

/// Serial length mix. Only the 3-byte share is published; the remainder is
/// synthesized to cover the 1–20-byte range RFC 5280 permits (documented
/// substitution, DESIGN.md).
pub const LENGTH_MIX: [(usize, f64); 6] = [
    (1, 0.04),
    (2, 0.12),
    (3, 0.32),
    (8, 0.18),
    (16, 0.22),
    (20, 0.12),
];

/// Samples one serial length from [`LENGTH_MIX`].
pub fn sample_length<R: Rng + ?Sized>(rng: &mut R) -> usize {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (len, share) in LENGTH_MIX {
        acc += share;
        if x < acc {
            return len;
        }
    }
    20
}

/// Generates `n` distinct serial numbers with the observed length mix.
pub fn generate_unique<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<SerialNumber> {
    let mut seen = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let len = sample_length(rng);
        let mut bytes = vec![0u8; len];
        rng.fill(&mut bytes[..]);
        let serial = SerialNumber::new(&bytes).expect("1..=20 bytes");
        if seen.insert(serial) {
            out.push(serial);
        }
    }
    out
}

/// Generates `n` distinct 3-byte serials (the analysis default).
pub fn generate_3byte<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<SerialNumber> {
    assert!(n <= 1 << 24, "only 2^24 distinct 3-byte serials exist");
    let mut seen = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v: u32 = rng.gen_range(0..1 << 24);
        let serial = SerialNumber::from_u24(v);
        if seen.insert(v) {
            out.push(serial);
        }
    }
    out
}

/// Average encoded serial size under [`LENGTH_MIX`] (bytes).
pub fn mean_serial_len() -> f64 {
    LENGTH_MIX.iter().map(|(l, s)| *l as f64 * s).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mix_sums_to_one() {
        let total: f64 = LENGTH_MIX.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn three_bytes_is_the_mode() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(sample_length(&mut rng)).or_insert(0u32) += 1;
        }
        let mode = counts.iter().max_by_key(|(_, c)| **c).unwrap();
        assert_eq!(*mode.0, 3);
        let three_share = counts[&3] as f64 / 20_000.0;
        assert!((three_share - 0.32).abs() < 0.02, "got {three_share}");
    }

    #[test]
    fn generated_serials_are_unique() {
        let mut rng = StdRng::seed_from_u64(2);
        let serials = generate_unique(&mut rng, 5_000);
        let set: HashSet<_> = serials.iter().collect();
        assert_eq!(set.len(), 5_000);
    }

    #[test]
    fn three_byte_serials_all_three_bytes() {
        let mut rng = StdRng::seed_from_u64(3);
        for s in generate_3byte(&mut rng, 1_000) {
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn mean_length_reasonable() {
        let m = mean_serial_len();
        assert!(m > 3.0 && m < 15.0, "got {m}");
    }
}
