//! The Fig. 4 revocation time series: January 2014 – June 2015, with the
//! Heartbleed disclosure (7 April 2014) producing a mass-revocation spike
//! peaking on 16–17 April 2014.
//!
//! Shape parameters are calibrated to the figure: a weekly baseline around
//! 4–10 k revocations, a spike reaching ~80 k in the peak week, and an
//! hourly profile for 16–17 April climbing to ~10 k per 6-hour bin.

use rand::Rng;

/// Unix time of 1 January 2014 00:00 UTC.
pub const SERIES_START: u64 = 1_388_534_400;
/// Unix time of the Heartbleed disclosure (7 April 2014).
pub const HEARTBLEED_DISCLOSURE: u64 = 1_396_828_800;
/// Seconds per week.
pub const WEEK: u64 = 7 * 86_400;
/// Number of weeks in the Fig. 4 top graph (Jan 2014 – Jun 2015).
pub const SERIES_WEEKS: usize = 78;

/// One bin of the revocation series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bin {
    /// Bin start (Unix seconds).
    pub start: u64,
    /// Revocations issued in this bin.
    pub count: u64,
}

/// The weekly series of Fig. 4 (top): baseline noise plus the Heartbleed
/// spike with an exponential tail.
pub fn weekly_series<R: Rng + ?Sized>(rng: &mut R) -> Vec<Bin> {
    let mut out = Vec::with_capacity(SERIES_WEEKS);
    for w in 0..SERIES_WEEKS {
        let start = SERIES_START + w as u64 * WEEK;
        let baseline = 4_000.0 + 6_000.0 * rng.gen::<f64>();
        let spike = heartbleed_boost(start);
        out.push(Bin {
            start,
            count: (baseline + spike) as u64,
        });
    }
    out
}

/// The extra weekly revocations attributable to Heartbleed at week `start`.
fn heartbleed_boost(start: u64) -> f64 {
    if start + WEEK <= HEARTBLEED_DISCLOSURE {
        return 0.0;
    }
    let weeks_after = (start.saturating_sub(HEARTBLEED_DISCLOSURE)) as f64 / WEEK as f64;
    // Peak ~72k extra in the disclosure week, decaying with a ~2-week
    // half-life (Durumeric et al. observed most reissues within a month).
    72_000.0 * (-weeks_after / 2.9).exp()
}

/// The 16–17 April hourly profile of Fig. 4 (bottom), in 6-hour bins:
/// ramps up through 16 April, peaks around 10 k, falls off on the 17th.
pub fn peak_days_six_hourly<R: Rng + ?Sized>(rng: &mut R) -> Vec<Bin> {
    // 16 April 2014 00:00 UTC.
    let start = 1_397_606_400u64;
    let shape = [
        2_000.0, 5_500.0, 9_000.0, 10_000.0, 8_000.0, 5_000.0, 3_500.0, 2_500.0,
    ];
    shape
        .iter()
        .enumerate()
        .map(|(i, base)| {
            let noise = 0.9 + 0.2 * rng.gen::<f64>();
            Bin {
                start: start + i as u64 * 6 * 3_600,
                count: (base * noise) as u64,
            }
        })
        .collect()
}

/// Daily revocation counts for the two weeks around the disclosure (one
/// week of standard rates, one week of the spike) — the Fig. 7 input.
/// Climbs from a ~1.2 k/day baseline to a 55–60 k/day peak on 16 April,
/// matching the event analyses of Durumeric and Zhang et al.
pub fn disclosure_fortnight_daily<R: Rng + ?Sized>(rng: &mut R) -> Vec<Bin> {
    let start = HEARTBLEED_DISCLOSURE - 7 * 86_400;
    let shape = [
        1_200.0, 1_100.0, 1_300.0, 1_250.0, 1_150.0, 1_200.0, 1_300.0, // quiet week
        4_000.0, 9_000.0, 16_000.0, 25_000.0, 38_000.0, // ramp after 7 Apr
        58_000.0, // 16 Apr peak
        48_000.0, // 17 Apr
    ];
    shape
        .iter()
        .enumerate()
        .map(|(i, base)| {
            let noise = 0.95 + 0.1 * rng.gen::<f64>();
            Bin {
                start: start + i as u64 * 86_400,
                count: (base * noise) as u64,
            }
        })
        .collect()
}

/// Rescales a series so its total equals `target_total` (used to replay the
/// largest CRL's 339,557 entries over the Fig. 6 billing period while
/// keeping the Fig. 4 shape).
pub fn rescale_to_total(series: &[Bin], target_total: u64) -> Vec<Bin> {
    let total: u64 = series.iter().map(|b| b.count).sum();
    if total == 0 {
        return series.to_vec();
    }
    let mut out: Vec<Bin> = series
        .iter()
        .map(|b| Bin {
            start: b.start,
            count: ((b.count as u128 * target_total as u128) / total as u128) as u64,
        })
        .collect();
    // Put the rounding remainder into the largest bin.
    let new_total: u64 = out.iter().map(|b| b.count).sum();
    let drift = target_total - new_total;
    if let Some(max) = out.iter_mut().max_by_key(|b| b.count) {
        max.count += drift;
    }
    out
}

/// Expands a bin series into per-Δ revocation counts across `[start, end)`:
/// each bin's revocations spread uniformly over the Δ-periods it covers.
/// This is the input to the Fig. 7 communication-overhead simulation.
pub fn per_period_counts(
    series: &[Bin],
    bin_len: u64,
    delta: u64,
    start: u64,
    end: u64,
) -> Vec<u64> {
    assert!(delta > 0 && end > start);
    let periods = ((end - start) / delta) as usize;
    let mut out = vec![0u64; periods];
    for bin in series {
        if bin.start + bin_len <= start || bin.start >= end {
            continue;
        }
        let periods_in_bin = (bin_len / delta).max(1);
        let per = bin.count / periods_in_bin;
        let mut rem = bin.count % periods_in_bin;
        for k in 0..periods_in_bin {
            let t = bin.start + k * delta;
            if t < start || t >= end {
                continue;
            }
            let idx = ((t - start) / delta) as usize;
            if idx < out.len() {
                out[idx] += per + if rem > 0 { 1 } else { 0 };
                rem = rem.saturating_sub(1);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weekly_series_has_heartbleed_spike() {
        let mut rng = StdRng::seed_from_u64(4);
        let series = weekly_series(&mut rng);
        assert_eq!(series.len(), SERIES_WEEKS);
        let peak = series.iter().max_by_key(|b| b.count).unwrap();
        // Peak falls in the weeks right after disclosure.
        assert!(peak.start >= HEARTBLEED_DISCLOSURE - WEEK);
        assert!(peak.start <= HEARTBLEED_DISCLOSURE + 3 * WEEK);
        assert!(peak.count > 60_000, "peak was {}", peak.count);
        // Baseline weeks stay below 12k.
        let before: Vec<_> = series
            .iter()
            .filter(|b| b.start + WEEK <= HEARTBLEED_DISCLOSURE)
            .collect();
        assert!(before.iter().all(|b| b.count < 12_000));
        assert!(!before.is_empty());
    }

    #[test]
    fn spike_decays() {
        let mut rng = StdRng::seed_from_u64(5);
        let series = weekly_series(&mut rng);
        let late: Vec<_> = series
            .iter()
            .filter(|b| b.start > HEARTBLEED_DISCLOSURE + 20 * WEEK)
            .collect();
        assert!(late.iter().all(|b| b.count < 15_000), "tail must decay");
    }

    #[test]
    fn peak_days_shape() {
        let mut rng = StdRng::seed_from_u64(6);
        let bins = peak_days_six_hourly(&mut rng);
        assert_eq!(bins.len(), 8);
        let max = bins.iter().map(|b| b.count).max().unwrap();
        assert!((8_000..=12_000).contains(&max), "peak 6h bin was {max}");
        // Rises then falls.
        let peak_idx = bins.iter().position(|b| b.count == max).unwrap();
        assert!((1..=5).contains(&peak_idx));
    }

    #[test]
    fn rescale_is_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let series = weekly_series(&mut rng);
        let scaled = rescale_to_total(&series, 339_557);
        assert_eq!(scaled.iter().map(|b| b.count).sum::<u64>(), 339_557);
        // Shape preserved: peak stays the peak.
        let orig_peak = series.iter().max_by_key(|b| b.count).unwrap().start;
        let new_peak = scaled.iter().max_by_key(|b| b.count).unwrap().start;
        assert_eq!(orig_peak, new_peak);
    }

    #[test]
    fn per_period_conserves_in_window_counts() {
        let series = vec![
            Bin {
                start: 1_000,
                count: 100,
            },
            Bin {
                start: 2_000,
                count: 50,
            },
        ];
        let per = per_period_counts(&series, 1_000, 100, 1_000, 3_000);
        assert_eq!(per.len(), 20);
        assert_eq!(per.iter().sum::<u64>(), 150);
        // First bin spreads over its own 10 periods only.
        assert_eq!(per[..10].iter().sum::<u64>(), 100);
    }

    #[test]
    #[should_panic(expected = "delta > 0")]
    fn zero_delta_panics() {
        per_period_counts(&[], 10, 0, 0, 10);
    }
}
