//! The city-population RA-placement model (§VII-C).
//!
//! The paper estimates RA count and placement from the MaxMind city
//! database: 47,980 cities totalling 2.3 billion people, with the number of
//! RAs proportional to population. The MaxMind dump is proprietary, so this
//! module synthesizes a Zipf-distributed city population with the same
//! aggregates and assigns cities to CDN regions by the regional population
//! shares.

use rand::Rng;
use ritm_cdn::regions::{Region, ALL_REGIONS};

/// Published aggregates of the MaxMind dataset used by the paper.
pub mod aggregates {
    /// Cities with population data.
    pub const CITY_COUNT: usize = 47_980;
    /// Total covered population.
    pub const TOTAL_POPULATION: u64 = 2_300_000_000;
}

/// One synthesized city.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct City {
    /// Population.
    pub population: u64,
    /// Serving CDN region.
    pub region: Region,
}

/// The synthesized city set.
#[derive(Debug, Clone)]
pub struct CityModel {
    /// All cities, population-descending.
    pub cities: Vec<City>,
}

impl CityModel {
    /// Synthesizes the city set: Zipf(s = 1.05) sizes rescaled to the exact
    /// total, regions drawn with the population shares of
    /// [`Region::population_share`].
    pub fn synthesize<R: Rng + ?Sized>(rng: &mut R) -> Self {
        use aggregates::*;
        let s = 1.05;
        let weights: Vec<f64> = (1..=CITY_COUNT).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let wsum: f64 = weights.iter().sum();
        let mut populations: Vec<u64> = weights
            .iter()
            .map(|w| ((w / wsum) * TOTAL_POPULATION as f64).floor().max(100.0) as u64)
            .collect();
        let drift = TOTAL_POPULATION as i64 - populations.iter().sum::<u64>() as i64;
        populations[0] = (populations[0] as i64 + drift) as u64;

        // Assign regions so that regional population matches the target
        // shares: each city (largest first) goes to the region with the
        // biggest remaining deficit, with small random tie-breaking noise.
        let mut deficit: Vec<(Region, f64)> = ALL_REGIONS
            .iter()
            .map(|r| (*r, r.population_share() * TOTAL_POPULATION as f64))
            .collect();
        let cities = populations
            .into_iter()
            .map(|population| {
                let jitter: f64 = rng.gen::<f64>() * 1e3;
                let (idx, _) = deficit
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        (a.1 .1 + jitter)
                            .partial_cmp(&(b.1 .1 + jitter))
                            .expect("finite")
                    })
                    .expect("regions non-empty");
                deficit[idx].1 -= population as f64;
                City {
                    population,
                    region: deficit[idx].0,
                }
            })
            .collect();
        CityModel { cities }
    }

    /// Total population (matches the aggregate exactly).
    pub fn total_population(&self) -> u64 {
        self.cities.iter().map(|c| c.population).sum()
    }

    /// Number of RAs per region given `clients_per_ra` (the Fig. 6 /
    /// Table II parameter: 10, 30, 250, or 1,000).
    pub fn ras_per_region(&self, clients_per_ra: u64) -> Vec<(Region, u64)> {
        assert!(clients_per_ra > 0);
        let mut per: std::collections::BTreeMap<Region, u64> = Default::default();
        for c in &self.cities {
            *per.entry(c.region).or_default() += c.population / clients_per_ra;
        }
        ALL_REGIONS
            .iter()
            .map(|r| (*r, per.get(r).copied().unwrap_or(0)))
            .collect()
    }

    /// Total RA count for a client density.
    pub fn total_ras(&self, clients_per_ra: u64) -> u64 {
        self.ras_per_region(clients_per_ra)
            .iter()
            .map(|(_, n)| n)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::aggregates::*;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> CityModel {
        CityModel::synthesize(&mut StdRng::seed_from_u64(8))
    }

    #[test]
    fn aggregates_match() {
        let m = model();
        assert_eq!(m.cities.len(), CITY_COUNT);
        assert_eq!(m.total_population(), TOTAL_POPULATION);
    }

    #[test]
    fn ten_clients_per_ra_gives_about_230_million() {
        // The paper: "every RA serves only ten clients (thus there are 230
        // million RAs in total)". Per-city floor division loses a little.
        let m = model();
        let total = m.total_ras(10);
        assert!((225_000_000..=230_000_000).contains(&total), "got {total}");
    }

    #[test]
    fn ras_scale_inversely_with_density() {
        let m = model();
        let dense = m.total_ras(1_000);
        let sparse = m.total_ras(30);
        assert!(sparse > 20 * dense);
    }

    #[test]
    fn regional_split_tracks_population_shares() {
        let m = model();
        let per = m.ras_per_region(10);
        let total = m.total_ras(10) as f64;
        for (region, n) in per {
            let share = n as f64 / total;
            let expected = region.population_share();
            assert!(
                (share - expected).abs() < 0.05,
                "{region:?}: {share} vs {expected}"
            );
        }
    }

    #[test]
    fn populations_descend() {
        let m = model();
        for w in m.cities.windows(2) {
            assert!(w[0].population >= w[1].population);
        }
    }
}
