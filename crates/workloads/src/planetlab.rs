//! PlanetLab-style vantage points for the Fig. 5 download-time experiment:
//! 80 nodes in diverse geographical areas, each repeating the measurement
//! 10 times per message size.

use ritm_cdn::regions::Region;

/// Number of vantage points in the paper's measurement.
pub const VANTAGE_COUNT: usize = 80;
/// Repetitions per node and message size.
pub const REPETITIONS: usize = 10;

/// A measurement vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VantagePoint {
    /// Stable id (0..80).
    pub id: usize,
    /// Hosting region.
    pub region: Region,
}

/// The 80 vantage points. PlanetLab was dominated by North-American and
/// European universities, with a meaningful Asian presence and a few nodes
/// elsewhere; the split below reflects that (documented substitution).
pub fn vantage_points() -> Vec<VantagePoint> {
    let mut out = Vec::with_capacity(VANTAGE_COUNT);
    let quota = [
        (Region::NorthAmerica, 30),
        (Region::Europe, 28),
        (Region::AsiaPacific, 10),
        (Region::Japan, 5),
        (Region::SouthAmerica, 3),
        (Region::Australia, 2),
        (Region::India, 2),
    ];
    for (region, n) in quota {
        for _ in 0..n {
            let id = out.len();
            out.push(VantagePoint { id, region });
        }
    }
    debug_assert_eq!(out.len(), VANTAGE_COUNT);
    out
}

/// The five revocation-message sizes measured in Fig. 5 (number of revoked
/// certificates; 0 = freshness statement only).
pub const FIG5_MESSAGE_SIZES: [u64; 5] = [0, 15_000, 30_000, 45_000, 60_000];

/// Encoded bytes of a revocation message holding `revocations` 3-byte
/// serials: the issuance framing, one length byte + serial each, plus the
/// signed root; 0 revocations means a bare freshness statement.
pub fn message_bytes(revocations: u64) -> u64 {
    if revocations == 0 {
        // Tagged freshness statement (1 + 20 bytes).
        21
    } else {
        12 + revocations * 4 + ritm_dictionary::root::SIGNED_ROOT_LEN as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighty_nodes() {
        let vps = vantage_points();
        assert_eq!(vps.len(), VANTAGE_COUNT);
        // Ids are stable and unique.
        for (i, vp) in vps.iter().enumerate() {
            assert_eq!(vp.id, i);
        }
    }

    #[test]
    fn mostly_na_and_eu() {
        let vps = vantage_points();
        let na_eu = vps
            .iter()
            .filter(|v| matches!(v.region, Region::NorthAmerica | Region::Europe))
            .count();
        assert!(na_eu > VANTAGE_COUNT / 2);
    }

    #[test]
    fn message_sizes_scale() {
        assert_eq!(message_bytes(0), 21);
        let m15 = message_bytes(15_000);
        let m60 = message_bytes(60_000);
        assert!(m15 > 60_000 && m15 < 70_000, "15k msg = {m15} B");
        // 60k revocations ≈ 4× the 15k message.
        assert!((m60 as f64 / m15 as f64 - 4.0).abs() < 0.05);
    }
}
