//! Synthesizer for the Internet Storm Center CRL dataset used throughout
//! §VII: 254 separate revocation lists, 1,381,992 unique revocations
//! (average 5,440 per CRL), with the largest CRL holding 339,557 entries
//! (~7.5 MB, almost 25 % of all revocations).
//!
//! The real dumps are not redistributable, so per-CRL sizes follow a Zipf
//! law pinned to the published aggregates (documented substitution).

/// Published aggregates of the ISC dataset (§VII-A, §VII-C).
pub mod aggregates {
    /// Number of distinct CRLs (and hence CA dictionaries).
    pub const CRL_COUNT: usize = 254;
    /// Total unique revocations.
    pub const TOTAL_REVOCATIONS: u64 = 1_381_992;
    /// Mean revocations per CRL.
    pub const MEAN_PER_CRL: u64 = 5_440;
    /// The largest CRL's entry count (CAcert).
    pub const LARGEST_CRL: u64 = 339_557;
    /// The largest CRL's on-disk size in bytes (7.5 MB).
    pub const LARGEST_CRL_BYTES: u64 = 7_500_000;
}

/// Per-CRL sizes summing exactly to the dataset totals.
#[derive(Debug, Clone)]
pub struct IscDataset {
    /// Entry count per CRL, descending; `sizes[0] == LARGEST_CRL`.
    pub sizes: Vec<u64>,
}

impl Default for IscDataset {
    fn default() -> Self {
        Self::synthesize()
    }
}

impl IscDataset {
    /// Builds the dataset: the largest CRL is pinned, the remaining 253
    /// follow a Zipf tail rescaled so the total matches exactly.
    pub fn synthesize() -> Self {
        use aggregates::*;
        let tail_total = TOTAL_REVOCATIONS - LARGEST_CRL;
        let n_tail = CRL_COUNT - 1;
        // Zipf weights 1/k^s for k = 1..=253; s chosen to give a heavy but
        // not degenerate tail.
        let s = 1.1;
        let weights: Vec<f64> = (1..=n_tail).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let wsum: f64 = weights.iter().sum();
        let mut sizes: Vec<u64> = weights
            .iter()
            .map(|w| ((w / wsum) * tail_total as f64).floor().max(1.0) as u64)
            .collect();
        // Fix rounding drift by adjusting the largest tail entry.
        let drift = tail_total as i64 - sizes.iter().sum::<u64>() as i64;
        sizes[0] = (sizes[0] as i64 + drift) as u64;
        let mut all = Vec::with_capacity(CRL_COUNT);
        all.push(LARGEST_CRL);
        all.extend(sizes);
        all.sort_unstable_by(|a, b| b.cmp(a));
        IscDataset { sizes: all }
    }

    /// Total revocations (equals the published figure).
    pub fn total(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Mean revocations per CRL.
    pub fn mean(&self) -> u64 {
        self.total() / self.sizes.len() as u64
    }

    /// Approximate bytes per entry in the original DER files, derived from
    /// the largest CRL's published size.
    pub fn bytes_per_entry() -> f64 {
        aggregates::LARGEST_CRL_BYTES as f64 / aggregates::LARGEST_CRL as f64
    }
}

#[cfg(test)]
mod tests {
    use super::aggregates::*;
    use super::*;

    #[test]
    fn totals_match_paper() {
        let d = IscDataset::synthesize();
        assert_eq!(d.sizes.len(), CRL_COUNT);
        assert_eq!(d.total(), TOTAL_REVOCATIONS);
        assert_eq!(d.sizes[0], LARGEST_CRL);
        assert_eq!(d.mean(), MEAN_PER_CRL);
    }

    #[test]
    fn largest_is_a_quarter_of_all() {
        let d = IscDataset::synthesize();
        let share = d.sizes[0] as f64 / d.total() as f64;
        assert!((share - 0.2457).abs() < 0.01, "got {share}");
    }

    #[test]
    fn sizes_descend_and_are_positive() {
        let d = IscDataset::synthesize();
        for w in d.sizes.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(d.sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn bytes_per_entry_near_22() {
        let b = IscDataset::bytes_per_entry();
        assert!((21.0..24.0).contains(&b), "got {b}");
    }
}
