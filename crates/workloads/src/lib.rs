//! # ritm-workloads — dataset synthesizers for the evaluation (§VII)
//!
//! Substitutes for the paper's proprietary/unavailable inputs, each pinned
//! to the published aggregates (see DESIGN.md):
//!
//! * [`isc`] — the Internet Storm Center CRL dataset (254 CRLs, 1,381,992
//!   revocations, largest 339,557 entries / 7.5 MB);
//! * [`heartbleed`] — the Fig. 4 revocation time series with the April 2014
//!   spike;
//! * [`cities`] — the MaxMind city-population RA placement (47,980 cities,
//!   2.3 B people);
//! * [`planetlab`] — 80 vantage points for the Fig. 5 download CDFs;
//! * [`serials`] — serial numbers with the observed 3-byte mode (32 %).

pub mod cities;
pub mod heartbleed;
pub mod isc;
pub mod planetlab;
pub mod serials;

pub use cities::CityModel;
pub use heartbleed::Bin;
pub use isc::IscDataset;
pub use planetlab::{vantage_points, VantagePoint, FIG5_MESSAGE_SIZES};
