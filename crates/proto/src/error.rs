//! The typed protocol error taxonomy.
//!
//! Every failure a RITM endpoint can report travels the wire as a
//! [`crate::RitmResponse::Error`] carrying one of these variants, so a
//! client can distinguish "object not published yet" (benign, retry next Δ)
//! from "my protocol version is too new" (negotiate down) from "this
//! endpoint does not serve that request" (misrouted) without string
//! matching. Client-side failures that never cross the wire (socket errors,
//! malformed *response* frames) live in [`TransportError`] instead.

use ritm_crypto::wire::{DecodeError, Reader, Writer};
use ritm_dictionary::CaId;

/// A typed, wire-encodable protocol error (the server half of the taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The request's version byte is outside the server's supported window.
    /// Carries both sides so the client can renegotiate.
    UnsupportedVersion {
        /// Version the client asked for.
        requested: u8,
        /// Highest version this server speaks.
        supported: u8,
    },
    /// The request body failed to decode at the given offset.
    Malformed {
        /// Byte offset at which decoding failed.
        offset: u32,
    },
    /// The named CA is not known to this endpoint.
    UnknownCa(CaId),
    /// The CA is known but the requested object is not (yet) available.
    NotFound,
    /// The request kind is valid but this endpoint does not serve it
    /// (e.g. asking a CDN edge for a revocation status).
    Unsupported,
    /// The endpoint is at capacity; retry later.
    Busy,
    /// The endpoint failed internally (stored object undecodable, lock
    /// poisoned, ...). Nothing actionable for the client.
    Internal,
    /// The response was built but could not be framed: its encoding is
    /// `len` bytes against the framing cap `max`
    /// ([`crate::MAX_FRAME_LEN`]). The observable trigger for chunked
    /// catch-up — an RA seeing this on a `CatchUp` knows the gap itself is
    /// the problem, not the origin.
    ResponseTooLarge {
        /// Encoded size the response would have had.
        len: u64,
        /// The frame-body cap it exceeded.
        max: u64,
    },
    /// The server dropped this connection because no frame arrived within
    /// its keepalive window. Sent best-effort as a goodbye before the
    /// close; a client seeing it should reconnect rather than retry on
    /// the same socket.
    IdleTimeout {
        /// The keepalive window, in milliseconds.
        after_ms: u64,
    },
}

impl core::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtoError::UnsupportedVersion {
                requested,
                supported,
            } => write!(
                f,
                "protocol version {requested} unsupported (server speaks up to {supported})"
            ),
            ProtoError::Malformed { offset } => {
                write!(f, "malformed request (decode failed at offset {offset})")
            }
            ProtoError::UnknownCa(ca) => write!(f, "unknown CA {ca}"),
            ProtoError::NotFound => f.write_str("object not found"),
            ProtoError::Unsupported => f.write_str("request not served by this endpoint"),
            ProtoError::Busy => f.write_str("endpoint at capacity"),
            ProtoError::Internal => f.write_str("internal server error"),
            ProtoError::ResponseTooLarge { len, max } => {
                write!(
                    f,
                    "response of {len} bytes exceeds the {max}-byte frame cap"
                )
            }
            ProtoError::IdleTimeout { after_ms } => {
                write!(f, "connection idle past the {after_ms}ms keepalive window")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

// Wire codes. Gaps are reserved for future taxonomy growth.
const CODE_UNSUPPORTED_VERSION: u8 = 0x01;
const CODE_MALFORMED: u8 = 0x02;
const CODE_UNKNOWN_CA: u8 = 0x03;
const CODE_NOT_FOUND: u8 = 0x04;
const CODE_UNSUPPORTED: u8 = 0x05;
const CODE_BUSY: u8 = 0x06;
const CODE_INTERNAL: u8 = 0x07;
const CODE_RESPONSE_TOO_LARGE: u8 = 0x08;
const CODE_IDLE_TIMEOUT: u8 = 0x09;

impl ProtoError {
    /// Exact encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            ProtoError::UnsupportedVersion { .. } => 2,
            ProtoError::Malformed { .. } => 4,
            ProtoError::UnknownCa(_) => 8,
            ProtoError::ResponseTooLarge { .. } => 16,
            ProtoError::IdleTimeout { .. } => 8,
            _ => 0,
        }
    }

    /// Appends the error to a wire writer.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            ProtoError::UnsupportedVersion {
                requested,
                supported,
            } => {
                w.u8(CODE_UNSUPPORTED_VERSION);
                w.u8(*requested);
                w.u8(*supported);
            }
            ProtoError::Malformed { offset } => {
                w.u8(CODE_MALFORMED);
                w.u32(*offset);
            }
            ProtoError::UnknownCa(ca) => {
                w.u8(CODE_UNKNOWN_CA);
                w.bytes(&ca.0);
            }
            ProtoError::NotFound => {
                w.u8(CODE_NOT_FOUND);
            }
            ProtoError::Unsupported => {
                w.u8(CODE_UNSUPPORTED);
            }
            ProtoError::Busy => {
                w.u8(CODE_BUSY);
            }
            ProtoError::Internal => {
                w.u8(CODE_INTERNAL);
            }
            ProtoError::ResponseTooLarge { len, max } => {
                w.u8(CODE_RESPONSE_TOO_LARGE);
                w.u64(*len);
                w.u64(*max);
            }
            ProtoError::IdleTimeout { after_ms } => {
                w.u8(CODE_IDLE_TIMEOUT);
                w.u64(*after_ms);
            }
        }
    }

    /// Decodes one error from the reader.
    ///
    /// A code this decoder does not know (a *newer* peer's taxonomy
    /// growth) is not a wire error: the remaining bytes — the unknown
    /// variant's fields; the error is always the final field of a frame —
    /// are consumed and the result degrades to [`ProtoError::Internal`],
    /// so old clients keep interoperating across taxonomy extensions
    /// (exactly how [`ProtoError::ResponseTooLarge`] was introduced).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when a *known* code's fields are truncated.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8("proto error code")? {
            CODE_UNSUPPORTED_VERSION => ProtoError::UnsupportedVersion {
                requested: r.u8("requested version")?,
                supported: r.u8("supported version")?,
            },
            CODE_MALFORMED => ProtoError::Malformed {
                offset: r.u32("malformed offset")?,
            },
            CODE_UNKNOWN_CA => ProtoError::UnknownCa(CaId(r.array("unknown ca id")?)),
            CODE_NOT_FOUND => ProtoError::NotFound,
            CODE_UNSUPPORTED => ProtoError::Unsupported,
            CODE_BUSY => ProtoError::Busy,
            CODE_INTERNAL => ProtoError::Internal,
            CODE_RESPONSE_TOO_LARGE => ProtoError::ResponseTooLarge {
                len: r.u64("oversized response len")?,
                max: r.u64("frame cap")?,
            },
            CODE_IDLE_TIMEOUT => ProtoError::IdleTimeout {
                after_ms: r.u64("keepalive window ms")?,
            },
            _ => {
                let rest = r.remaining();
                let _ = r.slice(rest, "unknown error fields")?;
                ProtoError::Internal
            }
        })
    }
}

/// A client-side transport failure: the request never produced a decodable
/// response. Server-reported failures arrive as
/// [`crate::RitmResponse::Error`] instead and are *not* transport errors.
#[derive(Debug)]
pub enum TransportError {
    /// The socket (or simulated path) failed before a response arrived.
    Io(std::io::Error),
    /// A response frame arrived but did not decode.
    BadResponse(DecodeError),
    /// The response's version byte is outside the client's window.
    VersionMismatch {
        /// Version byte the response carried.
        got: u8,
    },
    /// The transport is closed (server shut down, simulator drained without
    /// delivering a reply).
    NoResponse,
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport I/O failure: {e}"),
            TransportError::BadResponse(e) => write!(f, "undecodable response: {e}"),
            TransportError::VersionMismatch { got } => {
                write!(f, "response speaks unknown protocol version {got}")
            }
            TransportError::NoResponse => f.write_str("no response arrived"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<DecodeError> for TransportError {
    fn from(e: DecodeError) -> Self {
        TransportError::BadResponse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_errors() -> Vec<ProtoError> {
        vec![
            ProtoError::UnsupportedVersion {
                requested: 9,
                supported: 1,
            },
            ProtoError::Malformed { offset: 77 },
            ProtoError::UnknownCa(CaId(*b"someCA!!")),
            ProtoError::NotFound,
            ProtoError::Unsupported,
            ProtoError::Busy,
            ProtoError::Internal,
            ProtoError::ResponseTooLarge {
                len: 40_000_000,
                max: 1 << 25,
            },
            ProtoError::IdleTimeout { after_ms: 60_000 },
        ]
    }

    #[test]
    fn round_trip_every_variant() {
        for e in all_errors() {
            let mut w = Writer::new();
            e.encode(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(bytes.len(), e.encoded_len(), "{e:?}");
            let mut r = Reader::new(&bytes);
            assert_eq!(ProtoError::decode(&mut r).unwrap(), e);
            assert!(r.is_done());
        }
    }

    #[test]
    fn unknown_code_degrades_to_internal_and_consumes_its_fields() {
        // A future taxonomy variant (code 0xEE with 3 field bytes) must
        // decode — as Internal — with its fields consumed, so the frame's
        // trailing-bytes check still passes on old clients.
        let mut r = Reader::new(&[0xEE, 1, 2, 3]);
        assert_eq!(ProtoError::decode(&mut r), Ok(ProtoError::Internal));
        assert!(r.is_done());
    }

    #[test]
    fn display_is_informative() {
        for e in all_errors() {
            assert!(!format!("{e}").is_empty());
        }
    }
}
