//! Carrying protocol frames through the `ritm-net` simulator.
//!
//! [`ServiceNode`] wraps any [`Service`] as a simulator [`NetNode`]: each
//! client→server [`TcpSegment`] payload is one encoded request frame, and
//! the node replies with one response-frame segment after charging the
//! service's reported latency. [`SimTransport`] then drives a private
//! simulation per round trip, so the existing latency and middlebox
//! machinery (drops, extra hops, RA-style in-path boxes) applies unchanged
//! to real protocol traffic — the same frames, byte for byte, that the
//! loopback and TCP transports move.

use crate::error::TransportError;
use crate::message::{split_frame, RitmRequest, RitmResponse};
use crate::service::Service;
use crate::transport::{RoundTrip, Transport, TransportMeta};
use ritm_net::sim::{Context, NetNode, Path, Simulator};
use ritm_net::tcp::{Addr, Direction, FourTuple, SocketAddr, TcpSegment};
use ritm_net::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Adapts a [`Service`] into a simulator node: one request frame per
/// inbound segment, one response frame per outbound segment.
pub struct ServiceNode<S> {
    service: S,
    /// Frames served so far.
    pub served: u64,
}

impl<S: Service> ServiceNode<S> {
    /// Wraps `service`.
    pub fn new(service: S) -> Self {
        ServiceNode { service, served: 0 }
    }

    /// The wrapped service.
    pub fn service(&self) -> &S {
        &self.service
    }
}

impl<S: Service> NetNode for ServiceNode<S> {
    fn on_segment(&mut self, segment: TcpSegment, ctx: &mut Context) {
        if segment.direction != Direction::ToServer {
            return; // not addressed to this endpoint
        }
        self.served += 1;
        let resp_frame = self.service.handle_frame(&segment.payload);
        let reply = TcpSegment::data(
            segment.tuple,
            Direction::ToClient,
            segment.ack,
            segment.seq_end(),
            resp_frame,
        );
        // Charge the service's own processing/backend latency on the wire,
        // exactly like a middlebox charges its processing delay.
        ctx.send_after(reply, self.service.take_latency());
    }
}

/// Shared inbox collecting the segments delivered back to the client side.
type Inbox = Rc<RefCell<Vec<(SimTime, TcpSegment)>>>;

struct ClientSink {
    inbox: Inbox,
}

impl NetNode for ClientSink {
    fn on_segment(&mut self, segment: TcpSegment, ctx: &mut Context) {
        self.inbox.borrow_mut().push((ctx.now, segment));
    }
}

const CLIENT_ADDR: u32 = 0x0a00_0001;
const SERVER_ADDR: u32 = 0x0a00_0002;

/// A [`Transport`] that moves every frame through a deterministic
/// `ritm-net` simulation: client node, optional middleboxes, service node.
/// Each round trip injects one segment, runs the event queue to
/// quiescence, and reports the *simulated* elapsed time as latency.
pub struct SimTransport {
    sim: Simulator,
    client: ritm_net::sim::NodeId,
    tuple: FourTuple,
    inbox: Inbox,
    seq_up: u64,
    seq_down: u64,
}

impl SimTransport {
    /// Builds a two-node simulation (client ↔ service) with one hop of
    /// `hop_latency` each way.
    pub fn new<S: Service + 'static>(service: S, hop_latency: SimDuration) -> Self {
        Self::with_middleboxes(service, Vec::new(), vec![hop_latency])
    }

    /// Builds a simulation with `middleboxes` sitting in path order between
    /// the client and the service; `hop_latency` must have one entry per
    /// hop (`middleboxes.len() + 1`).
    ///
    /// # Panics
    ///
    /// Panics when the latency count does not match the hop count.
    pub fn with_middleboxes<S: Service + 'static>(
        service: S,
        middleboxes: Vec<Box<dyn NetNode>>,
        hop_latency: Vec<SimDuration>,
    ) -> Self {
        assert_eq!(
            hop_latency.len(),
            middleboxes.len() + 1,
            "one latency per hop"
        );
        let mut sim = Simulator::new();
        let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
        let client = sim.add_node(Box::new(ClientSink {
            inbox: Rc::clone(&inbox),
        }));
        let mut nodes = vec![client];
        for mb in middleboxes {
            nodes.push(sim.add_node(mb));
        }
        nodes.push(sim.add_node(Box::new(ServiceNode::new(service))));
        sim.add_path(
            Addr(CLIENT_ADDR),
            Addr(SERVER_ADDR),
            Path::new(nodes, hop_latency),
        );
        SimTransport {
            sim,
            client,
            tuple: FourTuple {
                client: SocketAddr::new(CLIENT_ADDR, 40_001),
                server: SocketAddr::new(SERVER_ADDR, 443),
            },
            inbox,
            seq_up: 0,
            seq_down: 0,
        }
    }

    /// Advances the simulation clock (e.g. to align with an experiment's
    /// wall time). No-op when `t` is not ahead of the current clock.
    pub fn set_now(&mut self, t: SimTime) {
        if t > self.sim.now() {
            self.sim.set_now(t);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}

impl Transport for SimTransport {
    fn round_trip(&mut self, req: &RitmRequest) -> Result<RoundTrip, TransportError> {
        let frame = req.to_frame();
        let request_bytes = frame.len() as u64;
        let seg = TcpSegment::data(
            self.tuple,
            Direction::ToServer,
            self.seq_up,
            self.seq_down,
            frame,
        );
        self.seq_up = seg.seq_end();
        let start = self.sim.now();
        // Drop any leftover deliveries from earlier round trips (e.g. a
        // duplicating middlebox): a stale segment must never be returned
        // as this request's reply.
        self.inbox.borrow_mut().clear();
        self.sim.inject(self.client, seg);
        self.sim.run_to_quiescence();
        // First delivery wins; later ones (duplicates) are discarded at
        // the start of the next round trip.
        let (arrived_at, reply) = {
            let mut inbox = self.inbox.borrow_mut();
            if inbox.is_empty() {
                return Err(TransportError::NoResponse);
            }
            inbox.remove(0)
        };
        self.seq_down = reply.seq_end();
        let (body, _) = split_frame(&reply.payload)?;
        let response = RitmResponse::decode_body(body)?;
        Ok(RoundTrip {
            response,
            meta: TransportMeta {
                request_bytes,
                response_bytes: reply.payload.len() as u64,
                latency: arrived_at.since(start),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtoError;
    use ritm_dictionary::CaId;

    struct Fixed;

    impl Service for Fixed {
        fn handle(&self, _req: RitmRequest) -> RitmResponse {
            RitmResponse::Error(ProtoError::NotFound)
        }

        fn take_latency(&self) -> SimDuration {
            SimDuration::from_millis(5)
        }
    }

    #[test]
    fn frames_ride_segments_and_latency_is_simulated() {
        let mut t = SimTransport::new(Fixed, SimDuration::from_millis(10));
        let req = RitmRequest::FetchFreshness {
            ca: CaId::from_name("SimCA"),
        };
        let rt = t.round_trip(&req).unwrap();
        assert_eq!(rt.response, RitmResponse::Error(ProtoError::NotFound));
        // 10 ms out + 5 ms service + 10 ms back.
        assert_eq!(rt.meta.latency, SimDuration::from_millis(25));
        assert_eq!(rt.meta.request_bytes as usize, req.to_frame().len());
    }

    #[test]
    fn a_dropping_middlebox_surfaces_as_no_response() {
        use ritm_net::middlebox::{Dropper, MiddleboxNode};
        let dropper = MiddleboxNode::new(Dropper::new(|_: &TcpSegment| true));
        let mut t = SimTransport::with_middleboxes(
            Fixed,
            vec![Box::new(dropper)],
            vec![SimDuration::from_millis(1); 2],
        );
        let req = RitmRequest::FetchDelta {
            ca: CaId::from_name("SimCA"),
        };
        match t.round_trip(&req) {
            Err(TransportError::NoResponse) => {}
            other => panic!("expected NoResponse, got {other:?}"),
        }
    }
}
