//! Event-driven serving over real OS sockets: many connections, ≤2 threads.
//!
//! [`EventServer`] is the deployment-shaped counterpart to the blocking
//! [`crate::tcp::TcpServer`]: instead of one OS thread per connection, every
//! connection is a small task on a [`ritm_rt`] executor. Sockets are
//! `set_nonblocking`; partial frames are resumed by
//! [`ritm_rt::FrameReader`] / [`ritm_rt::FrameWriter`]; a task whose socket
//! is not ready parks in the reactor and costs nothing but its buffers.
//! Several servers can share one runtime ([`EventServer::spawn_on`]): an
//! RA, a CA, and a CDN edge together still run on at most
//! [`ritm_rt::executor::MAX_WORKERS`] (= 2) OS threads, which is what lets
//! one edge or RA process hold open connections from very many clients at
//! once (the paper's middlebox/CDN deployment model, §VI).
//!
//! # Out-of-order completion (envelope v2)
//!
//! A v1 connection is answered strictly in request order — that in-order
//! guarantee is what made id-less pipelining safe, and it is preserved
//! byte-identically for v1 peers. A **v2** frame instead spawns its own
//! handler task: replies are written back tagged with the request's id as
//! each handler finishes, so one slow `CatchUp` no longer head-of-line
//! blocks the `GetStatus` requests behind it on the same connection.
//! [`EventTransport`] correlates replies by id; against a v1-only server
//! it transparently falls back to the in-order path (see
//! [`EventTransport::negotiated_version`]).
//!
//! # Backpressure and keepalive
//!
//! [`EventServerConfig`] bounds what a peer can cost the server:
//! * `max_connections` — the acceptor pauses (parks) while at the cap and
//!   resumes as connections close; the backlog queues in the kernel.
//! * `max_buffered_bytes` — a connection whose peer stops reading while
//!   replies accumulate past the cap is shed (the write queue is the only
//!   per-connection buffer that grows without the peer's cooperation).
//! * `keepalive` — a connection with no in-flight work that sends nothing
//!   for the whole window is dropped with a best-effort typed
//!   [`ProtoError::IdleTimeout`] goodbye.

use crate::error::TransportError;
use crate::message::{
    split_frame, RequestEnvelope, RitmRequest, RitmResponse, MAX_FRAME_LEN, MAX_SUPPORTED_VERSION,
    PROTOCOL_V2, PROTOCOL_VERSION,
};
use crate::service::Service;
use crate::transport::{RoundTrip, Transport, TransportMeta};
use crate::ProtoError;
use ritm_net::time::SimDuration;
use ritm_rt::{
    io as rt_io, BufPool, Executor, FrameRead, FrameReader, FrameWrite, FrameWriter, IoPoll,
};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Resource bounds and negotiation ceiling for one [`EventServer`].
#[derive(Debug, Clone, Copy)]
pub struct EventServerConfig {
    /// Connections held open at once; the acceptor pauses past this.
    pub max_connections: usize,
    /// Per-connection cap on queued-but-unwritten reply bytes; a peer
    /// that stops reading past it is shed.
    pub max_buffered_bytes: usize,
    /// Idle window after which a connection with nothing in flight is
    /// dropped (`None` = never).
    pub keepalive: Option<Duration>,
    /// Highest envelope version this server answers in — pin to
    /// [`PROTOCOL_VERSION`] to exercise a v1-only peer.
    pub max_version: u8,
}

impl Default for EventServerConfig {
    fn default() -> Self {
        EventServerConfig {
            max_connections: 4096,
            // Two maximal frames: one mid-write, one queued behind it.
            max_buffered_bytes: 2 * MAX_FRAME_LEN,
            keepalive: Some(Duration::from_secs(60)),
            max_version: MAX_SUPPORTED_VERSION,
        }
    }
}

/// Shared per-server counters.
#[derive(Debug, Default)]
struct ServerStats {
    served: AtomicU64,
    open_conns: AtomicU64,
    peak_conns: AtomicU64,
    keepalive_drops: AtomicU64,
    overflow_drops: AtomicU64,
    accept_deferrals: AtomicU64,
}

/// An event-driven server for one [`Service`]: all connections multiplexed
/// onto a ≤2-thread [`ritm_rt`] runtime — its own, or one shared with
/// other servers ([`EventServer::spawn_on`]).
pub struct EventServer {
    addr: SocketAddr,
    handle: ritm_rt::Handle,
    /// `Some` when this server owns its executor; `None` on a shared
    /// runtime (shutdown then drains this server's tasks only).
    runtime: Option<Executor>,
    closing: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    /// This server's live task count (acceptor + connections + handlers)
    /// — what a shared-runtime shutdown drains.
    tasks: Arc<AtomicU64>,
}

impl EventServer {
    /// Binds `127.0.0.1:0` (ephemeral port) and starts serving `service`
    /// on its own runtime of `threads` workers (clamped to `1..=2` —
    /// connections are multiplexed, not threaded), with default bounds.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn spawn(service: Arc<dyn Service>, threads: usize) -> std::io::Result<Self> {
        Self::spawn_with(service, threads, EventServerConfig::default())
    }

    /// [`EventServer::spawn`] with explicit bounds.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn spawn_with(
        service: Arc<dyn Service>,
        threads: usize,
        config: EventServerConfig,
    ) -> std::io::Result<Self> {
        let executor = Executor::new(threads);
        let mut server = Self::spawn_on(service, &executor.handle(), config)?;
        server.runtime = Some(executor);
        Ok(server)
    }

    /// Binds and serves on an existing runtime's handle — how several
    /// endpoints (RA + CA + edge) share one reactor/executor pair. The
    /// caller keeps ownership of the runtime; [`EventServer::shutdown`]
    /// drains only this server's tasks.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn spawn_on(
        service: Arc<dyn Service>,
        handle: &ritm_rt::Handle,
        config: EventServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let closing = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let tasks = Arc::new(AtomicU64::new(0));
        // One buffer pool per server, shared by every connection's reader
        // and writer: request frames and drained reply buffers recycle
        // instead of allocating per round trip.
        let pool = BufPool::default();

        {
            let closing = Arc::clone(&closing);
            let stats = Arc::clone(&stats);
            let tasks = Arc::clone(&tasks);
            let spawner = handle.clone();
            tasks.fetch_add(1, Ordering::SeqCst);
            handle.spawn(async move {
                accept_loop(
                    listener,
                    service,
                    spawner,
                    closing,
                    stats,
                    Arc::clone(&tasks),
                    pool,
                    config,
                )
                .await;
                tasks.fetch_sub(1, Ordering::SeqCst);
            });
        }

        Ok(EventServer {
            addr,
            handle: handle.clone(),
            runtime: None,
            closing,
            stats,
            tasks,
        })
    }

    /// The bound address to hand to [`EventTransport::connect`].
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far, across all connections.
    pub fn served(&self) -> u64 {
        self.stats.served.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> u64 {
        self.stats.open_conns.load(Ordering::Relaxed)
    }

    /// The most connections ever open at once — the multiplexing headroom
    /// the `event-smoke` acceptance asserts (≥64 on 2 threads).
    pub fn peak_connections(&self) -> u64 {
        self.stats.peak_conns.load(Ordering::Relaxed)
    }

    /// Connections dropped for sending nothing within the keepalive
    /// window.
    pub fn keepalive_drops(&self) -> u64 {
        self.stats.keepalive_drops.load(Ordering::Relaxed)
    }

    /// Connections shed because their write queue outgrew
    /// [`EventServerConfig::max_buffered_bytes`].
    pub fn overflow_drops(&self) -> u64 {
        self.stats.overflow_drops.load(Ordering::Relaxed)
    }

    /// Accept attempts deferred because the server sat at
    /// [`EventServerConfig::max_connections`] (one per readiness tick
    /// while paused).
    pub fn accept_deferrals(&self) -> u64 {
        self.stats.accept_deferrals.load(Ordering::Relaxed)
    }

    /// OS threads the server runs on (acceptor included) — the whole
    /// shared runtime's budget when spawned via [`EventServer::spawn_on`].
    pub fn thread_count(&self) -> usize {
        self.handle.thread_count()
    }

    /// Stops accepting, closes every connection task (each observes the
    /// flag within one readiness tick — an idle client cannot pin
    /// anything), drains this server's tasks, and returns the total
    /// requests served. On an owned runtime the executor is joined; on a
    /// shared runtime only this server's tasks are waited for — the
    /// runtime (and any other servers on it) keeps running. Like
    /// [`crate::tcp::TcpServer::shutdown`], this ends an experiment; it
    /// does not drain in-flight client batches.
    pub fn shutdown(mut self) -> u64 {
        self.closing.store(true, Ordering::SeqCst);
        match self.runtime.take() {
            Some(executor) => executor.shutdown(),
            None => {
                while self.tasks.load(Ordering::SeqCst) > 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        self.stats.served.load(Ordering::Relaxed)
    }
}

impl Drop for EventServer {
    fn drop(&mut self) {
        // An abandoned server on a shared runtime must still wind down:
        // its tasks observe the flag within one tick and exit.
        self.closing.store(true, Ordering::SeqCst);
    }
}

#[allow(clippy::too_many_arguments)]
async fn accept_loop(
    listener: TcpListener,
    service: Arc<dyn Service>,
    handle: ritm_rt::Handle,
    closing: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    tasks: Arc<AtomicU64>,
    pool: BufPool,
    config: EventServerConfig,
) {
    let reactor = handle.reactor();
    loop {
        let accepted = rt_io(&reactor, || {
            if closing.load(Ordering::SeqCst) {
                return IoPoll::Ready(None);
            }
            // Connection-count backpressure: at the cap the acceptor
            // simply parks. The kernel backlog queues (and eventually
            // refuses) the excess; accepting resumes as soon as a
            // connection closes.
            if stats.open_conns.load(Ordering::SeqCst) >= config.max_connections as u64 {
                stats.accept_deferrals.fetch_add(1, Ordering::Relaxed);
                return IoPoll::WouldBlock;
            }
            match listener.accept() {
                Ok((stream, _peer)) => IoPoll::Ready(Some(stream)),
                Err(e) if e.kind() == ErrorKind::WouldBlock => IoPoll::WouldBlock,
                // Transient accept failures (peer reset in the backlog):
                // treated as not-ready, retried next tick.
                Err(_) => IoPoll::WouldBlock,
            }
        })
        .await;
        let Some(stream) = accepted else { return };
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            continue;
        }
        let open = stats.open_conns.fetch_add(1, Ordering::SeqCst) + 1;
        stats.peak_conns.fetch_max(open, Ordering::SeqCst);
        let service = Arc::clone(&service);
        let closing = Arc::clone(&closing);
        let stats = Arc::clone(&stats);
        let reactor = Arc::clone(&reactor);
        let tasks = Arc::clone(&tasks);
        let pool = pool.clone();
        let spawner = handle.clone();
        tasks.fetch_add(1, Ordering::SeqCst);
        handle.spawn(async move {
            serve_connection(
                stream,
                service,
                closing,
                Arc::clone(&stats),
                reactor,
                spawner,
                Arc::clone(&tasks),
                pool,
                config,
            )
            .await;
            stats.open_conns.fetch_sub(1, Ordering::SeqCst);
            tasks.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

/// Per-connection state shared between the read task and the handler
/// tasks it spawns for v2 requests.
struct Conn {
    stream: TcpStream,
    /// The write queue: handler tasks enqueue tagged reply frames and
    /// drive the flush; the mutex is only ever held across non-blocking
    /// calls.
    writer: Mutex<FrameWriter>,
    /// Set on any fatal per-connection condition (write error, overflow
    /// shed, handler panic); every task on the connection observes it
    /// within one tick and exits.
    dead: AtomicBool,
    /// v2 requests decoded but not yet replied — keepalive never fires
    /// while work is in flight.
    inflight: AtomicU64,
}

impl Conn {
    fn lock_writer(&self) -> std::sync::MutexGuard<'_, FrameWriter> {
        self.writer.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Outcome of one read attempt on a connection.
enum ReadStep {
    Frame(Vec<u8>),
    TimedOut,
    Close,
}

/// One connection's task: read frames and answer them — inline and in
/// order for v1 frames (byte-identical to the pre-v2 server), via a
/// spawned per-request handler task for v2 frames (out-of-order, tagged).
#[allow(clippy::too_many_arguments)]
async fn serve_connection(
    stream: TcpStream,
    service: Arc<dyn Service>,
    closing: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    reactor: Arc<ritm_rt::Reactor>,
    handle: ritm_rt::Handle,
    tasks: Arc<AtomicU64>,
    pool: BufPool,
    config: EventServerConfig,
) {
    let conn = Arc::new(Conn {
        stream,
        writer: Mutex::new(FrameWriter::with_pool(pool.clone())),
        dead: AtomicBool::new(false),
        inflight: AtomicU64::new(0),
    });
    let mut reader = FrameReader::with_pool(MAX_FRAME_LEN, pool.clone());
    let mut last_frame = Instant::now();
    loop {
        let step = rt_io(&reactor, || {
            if closing.load(Ordering::SeqCst) || conn.dead.load(Ordering::SeqCst) {
                return IoPoll::Ready(ReadStep::Close);
            }
            match reader.poll_frame(&mut &conn.stream) {
                FrameRead::Frame(f) => IoPoll::Ready(ReadStep::Frame(f)),
                FrameRead::WouldBlock => {
                    if let Some(window) = config.keepalive {
                        if conn.inflight.load(Ordering::SeqCst) != 0 || conn.lock_writer().pending()
                        {
                            // In-flight work and unflushed replies count
                            // as activity: the window measures *silence*,
                            // so a handler slower than the window cannot
                            // leave its connection instantly reapable the
                            // moment it completes.
                            last_frame = Instant::now();
                        } else if last_frame.elapsed() > window {
                            return IoPoll::Ready(ReadStep::TimedOut);
                        }
                    }
                    IoPoll::WouldBlock
                }
                FrameRead::Eof | FrameRead::Err(_) => IoPoll::Ready(ReadStep::Close),
            }
        })
        .await;
        match step {
            ReadStep::Close => break,
            ReadStep::TimedOut => {
                stats.keepalive_drops.fetch_add(1, Ordering::Relaxed);
                // Best-effort typed goodbye: one non-blocking flush
                // attempt; a peer that is not reading just gets the close.
                let goodbye = RitmResponse::Error(ProtoError::IdleTimeout {
                    after_ms: config.keepalive.map_or(0, |w| w.as_millis() as u64),
                })
                .to_frame();
                let mut w = conn.lock_writer();
                w.queue(goodbye);
                let _ = w.poll_write(&mut &conn.stream);
                drop(w);
                conn.kill();
                break;
            }
            ReadStep::Frame(frame) => {
                last_frame = Instant::now();
                let body_version = frame.get(4).copied().unwrap_or(PROTOCOL_VERSION);
                if body_version > config.max_version {
                    // Negotiation ceiling (including a server pinned to
                    // v1): answer in v1, in order — what a probing client
                    // can always parse.
                    let reply = RitmResponse::Error(ProtoError::UnsupportedVersion {
                        requested: body_version,
                        supported: config.max_version,
                    })
                    .to_frame();
                    pool.put(frame);
                    conn.lock_writer().queue(reply);
                    if drive_flush(&conn, &reactor, &closing).await {
                        stats.served.fetch_add(1, Ordering::Relaxed);
                    } else {
                        break;
                    }
                } else if body_version >= PROTOCOL_V2 {
                    // v2: out-of-order — each request gets its own handler
                    // task; the reply carries the echoed id, so completion
                    // order is free to differ from arrival order.
                    let Ok((body, _)) = split_frame(&frame) else {
                        break;
                    };
                    let env = RequestEnvelope::decode(body);
                    pool.put(frame);
                    conn.inflight.fetch_add(1, Ordering::SeqCst);
                    tasks.fetch_add(1, Ordering::SeqCst);
                    let service = Arc::clone(&service);
                    let conn = Arc::clone(&conn);
                    let stats = Arc::clone(&stats);
                    let reactor = Arc::clone(&reactor);
                    let closing = Arc::clone(&closing);
                    let tasks = Arc::clone(&tasks);
                    handle.spawn(async move {
                        handle_v2_request(env, service, &conn, &stats, &reactor, &closing, config)
                            .await;
                        conn.inflight.fetch_sub(1, Ordering::SeqCst);
                        tasks.fetch_sub(1, Ordering::SeqCst);
                    });
                } else {
                    // v1: inline and strictly in order — the guarantee
                    // id-less pipelining depends on, preserved
                    // byte-identically. `serve_frame` lets a caching
                    // service answer with a shared body (header + cached
                    // bytes, no copy); the drained request frame recycles
                    // into the pool.
                    let Ok(resp) =
                        std::panic::catch_unwind(AssertUnwindSafe(|| service.serve_frame(&frame)))
                    else {
                        conn.kill();
                        break;
                    };
                    pool.put(frame);
                    resp.queue_onto(&mut conn.lock_writer());
                    if drive_flush(&conn, &reactor, &closing).await {
                        stats.served.fetch_add(1, Ordering::Relaxed);
                    } else {
                        break;
                    }
                }
            }
        }
    }
    // Let in-flight v2 handlers finish writing their replies before the
    // connection task retires (a peer may half-close after sending its
    // requests and still read the answers). A dead or closing connection
    // skips the grace.
    rt_io(&reactor, || {
        if closing.load(Ordering::SeqCst) || conn.dead.load(Ordering::SeqCst) {
            return IoPoll::Ready(());
        }
        if conn.inflight.load(Ordering::SeqCst) == 0 && !conn.lock_writer().pending() {
            return IoPoll::Ready(());
        }
        IoPoll::WouldBlock
    })
    .await;
}

/// One v2 request's handler task: serve, enqueue the tagged reply, shed
/// the connection if the write queue overflows, flush otherwise.
async fn handle_v2_request(
    env: RequestEnvelope,
    service: Arc<dyn Service>,
    conn: &Arc<Conn>,
    stats: &ServerStats,
    reactor: &Arc<ritm_rt::Reactor>,
    closing: &Arc<AtomicBool>,
    config: EventServerConfig,
) {
    // A panicking service request costs only its own connection — the
    // executor also guards the worker, but killing the connection here
    // keeps the peer from waiting on a reply that will never come.
    // `serve_envelope` is the cached-response hook: a hot status reply
    // arrives as a shared body and is queued by reference.
    let Ok(reply) = std::panic::catch_unwind(AssertUnwindSafe(|| service.serve_envelope(env)))
    else {
        conn.kill();
        return;
    };
    let overflow = {
        let mut w = conn.lock_writer();
        reply.queue_onto(&mut w);
        w.buffered_bytes() > config.max_buffered_bytes
    };
    if overflow {
        // Write-queue backpressure: the peer is not reading fast enough
        // to be worth buffering for. There is no way to *send* a typed
        // error into a full pipe — shedding the connection is the signal.
        stats.overflow_drops.fetch_add(1, Ordering::Relaxed);
        conn.kill();
        return;
    }
    if drive_flush(conn, reactor, closing).await {
        stats.served.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drives the connection's shared write queue until empty. Several tasks
/// may drive concurrently; whoever holds the lock makes progress and a
/// queue another task already drained completes immediately. Returns
/// `false` when the connection died or the server is closing.
async fn drive_flush(
    conn: &Arc<Conn>,
    reactor: &Arc<ritm_rt::Reactor>,
    closing: &Arc<AtomicBool>,
) -> bool {
    rt_io(reactor, || {
        if closing.load(Ordering::SeqCst) || conn.dead.load(Ordering::SeqCst) {
            return IoPoll::Ready(false);
        }
        let mut w = conn.lock_writer();
        match w.poll_write(&mut &conn.stream) {
            FrameWrite::Done => IoPoll::Ready(true),
            FrameWrite::WouldBlock => IoPoll::WouldBlock,
            FrameWrite::Err(_) => {
                drop(w);
                conn.kill();
                IoPoll::Ready(false)
            }
        }
    })
    .await
}

/// How long a client flight may wait without any socket progress before
/// giving up with [`TransportError::NoResponse`].
const CLIENT_DEADLINE: Duration = Duration::from_secs(30);

/// Client-side sleep while the socket is not ready in either direction.
const CLIENT_POLL_INTERVAL: Duration = Duration::from_micros(200);

/// What envelope version the peer has been observed to speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeerVersion {
    /// Nothing observed yet: the next flight probes v2.
    Unknown,
    /// The peer answered v2 frames in v2: multiplexed from here on.
    V2,
    /// The peer rejected v2 (or was pinned): in-order v1, byte-identical
    /// to the id-less pipelining path.
    V1,
}

/// The non-blocking client: one connection, pipelined round trips.
///
/// [`Transport::round_trip`] behaves like the blocking client; the payoff
/// is [`Transport::round_trip_many`], which keeps every request of a batch
/// in flight at once. Against a v2 server the batch is **multiplexed**:
/// each request carries a fresh id and replies are correlated by the
/// echoed id, so they may complete in any order. Against a v1 server the
/// first flight triggers a transparent fallback (the server answers every
/// v2 frame with a v1 `UnsupportedVersion` error, in order; the client
/// drains them, pins v1, and re-sends the flight id-less) and every
/// subsequent flight is byte-identical to the pre-v2 pipelining client.
///
/// Any transport-level failure (EOF, I/O error, deadline) **poisons the
/// connection**: the stream may be mid-frame, so it must never be reused.
/// The next flight dials the same address afresh ([`Self::reconnect`]);
/// only if that dial fails does the flight fail outright. A server that
/// restarted elsewhere can be followed with [`Self::reconnect_to`].
pub struct EventTransport {
    /// Where the current stream was dialed; reconnects go here.
    addr: SocketAddr,
    stream: TcpStream,
    reader: FrameReader,
    /// Set after any transport-level failure; the stream may hold
    /// misaligned bytes, so it must never be reused.
    broken: bool,
    peer: PeerVersion,
    /// What `peer` resets to after a reconnect: `V1` keeps a pin,
    /// `Unknown` re-probes (the restarted peer may speak differently).
    reset_peer: PeerVersion,
    /// Next request id to assign (wrapping; uniqueness only matters
    /// within one flight, where ids are consecutive).
    next_id: u32,
    /// Recycles the flight scratch buffer and decoded reply frames across
    /// flights; shared with the reader so completed frames come from here
    /// too.
    pool: BufPool,
}

impl EventTransport {
    /// Connects to an [`EventServer`] (or any frame-speaking server). The
    /// first flight probes envelope v2 and negotiates down transparently
    /// if the server only speaks v1.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_as(addr, PeerVersion::Unknown)
    }

    /// Connects pinned to envelope v1: no probe, in-order pipelining,
    /// byte-identical to the pre-v2 client. For peers known to be v1-only
    /// (or for measuring the in-order baseline).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_pinned_v1(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_as(addr, PeerVersion::V1)
    }

    fn connect_as(addr: SocketAddr, peer: PeerVersion) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let pool = BufPool::default();
        Ok(EventTransport {
            addr,
            stream,
            reader: FrameReader::with_pool(MAX_FRAME_LEN, pool.clone()),
            broken: false,
            peer,
            reset_peer: peer,
            next_id: 1,
            pool,
        })
    }

    /// Tears down the (possibly poisoned) stream and dials the same
    /// address again: fresh socket, fresh framing state, version
    /// re-probed — or the v1 pin kept. Runs automatically at the start of
    /// any flight on a broken transport; call it directly to re-dial
    /// eagerly.
    ///
    /// # Errors
    ///
    /// Propagates connect failures; the transport stays broken.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        self.reconnect_to(self.addr)
    }

    /// Like [`Self::reconnect`], but dials `addr` and remembers it — how
    /// a client follows a server that restarted on a new address.
    ///
    /// # Errors
    ///
    /// Propagates connect failures; the transport stays broken.
    pub fn reconnect_to(&mut self, addr: SocketAddr) -> std::io::Result<()> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        self.addr = addr;
        self.stream = stream;
        self.reader = FrameReader::with_pool(MAX_FRAME_LEN, self.pool.clone());
        self.broken = false;
        self.peer = self.reset_peer;
        Ok(())
    }

    /// Whether a transport-level failure has poisoned this connection.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Bytes of read-buffer capacity this transport currently keeps
    /// resident — bounded by the reader's shrink policy even after a
    /// multi-megabyte frame passed through.
    pub fn reader_resident_capacity(&self) -> usize {
        self.reader.resident_capacity()
    }

    /// The envelope version negotiated with the peer: `None` before the
    /// first flight, then `Some(2)` (multiplexed) or `Some(1)` (in-order).
    pub fn negotiated_version(&self) -> Option<u8> {
        match self.peer {
            PeerVersion::Unknown => None,
            PeerVersion::V2 => Some(PROTOCOL_V2),
            PeerVersion::V1 => Some(PROTOCOL_VERSION),
        }
    }

    /// Runs one flight, dispatched on the negotiated envelope version.
    fn flight(&mut self, reqs: &[RitmRequest]) -> Vec<Result<RoundTrip, TransportError>> {
        // A poisoned stream is never reused, but a flight boundary is a
        // safe place to dial afresh: nothing of *this* flight has been
        // sent yet. Only an unreachable peer fails the flight outright.
        if self.broken && self.reconnect().is_err() {
            return reqs
                .iter()
                .map(|_| {
                    Err(TransportError::Io(std::io::Error::new(
                        ErrorKind::NotConnected,
                        "transport poisoned and reconnect failed",
                    )))
                })
                .collect();
        }
        match self.peer {
            PeerVersion::V1 => self.flight_in_order(reqs),
            PeerVersion::Unknown | PeerVersion::V2 => self.flight_multiplexed(reqs),
        }
    }

    /// The multiplexed flight: every request tagged with a consecutive
    /// id, replies routed into their slot by the echoed id as they
    /// arrive — in any order. Falls back to [`Self::flight_in_order`]
    /// (re-sending the whole flight) when an unknown peer turns out to
    /// speak only v1.
    fn flight_multiplexed(
        &mut self,
        reqs: &[RitmRequest],
    ) -> Vec<Result<RoundTrip, TransportError>> {
        let n = reqs.len();
        let base = self.next_id;
        self.next_id = self.next_id.wrapping_add(n as u32);
        // The whole flight encodes into one pooled scratch buffer, queued
        // as a single owned segment: one buffer (recycled across flights
        // once the pool is warm) instead of one allocation per request,
        // and the writer pushes it in one syscall when the socket allows.
        let mut writer = FrameWriter::with_pool(self.pool.clone());
        let mut scratch = self.pool.get();
        let mut request_lens = Vec::with_capacity(n);
        for (i, req) in reqs.iter().enumerate() {
            let before = scratch.len();
            req.to_frame_v2_into(base.wrapping_add(i as u32), &mut scratch);
            request_lens.push((scratch.len() - before) as u64);
        }
        writer.queue(scratch);
        let mut slots: Vec<Option<Result<RoundTrip, TransportError>>> =
            (0..n).map(|_| None).collect();
        let mut received = 0usize;
        let mut fallback = false;
        let mut failed = false;
        // First unfilled slot gets the specific failure; the rest a
        // generic one (an unattributable stream failure fails the whole
        // flight — there is no id to blame).
        let fail_all = |slots: &mut Vec<Option<Result<RoundTrip, TransportError>>>,
                        first: TransportError| {
            let mut first = Some(first);
            for slot in slots.iter_mut().filter(|s| s.is_none()) {
                *slot = Some(Err(first.take().unwrap_or(TransportError::NoResponse)));
            }
        };
        // The deadline is on socket *progress* (bytes written or a frame
        // arrived), not total flight time: a large flight streaming
        // steadily must never trip it.
        let mut last_progress = Instant::now();
        let mut last_reply = last_progress;
        while received < n {
            let mut progress = false;
            // Keep pushing request frames while the socket accepts them...
            let written_before = writer.written();
            match writer.poll_write(&mut self.stream) {
                FrameWrite::Done | FrameWrite::WouldBlock => {
                    progress |= writer.written() > written_before;
                }
                FrameWrite::Err(e) => {
                    fail_all(&mut slots, TransportError::Io(e));
                    failed = true;
                    break;
                }
            }
            // ...while draining responses, so a server that fills its send
            // buffer before we finish writing can never deadlock us.
            let mut got_frame = false;
            match self.reader.poll_frame(&mut self.stream) {
                FrameRead::Frame(reply) => {
                    progress = true;
                    got_frame = true;
                    received += 1;
                    let now = Instant::now();
                    let latency = SimDuration::from_micros((now - last_reply).as_micros() as u64);
                    last_reply = now;
                    let decoded = split_frame(&reply)
                        .map_err(TransportError::from)
                        .and_then(|(body, _)| RitmResponse::decode_envelope(body));
                    match decoded {
                        Err(e) => {
                            fail_all(&mut slots, e);
                            failed = true;
                            break;
                        }
                        Ok((version, id, response)) => {
                            if fallback {
                                // Draining the v1 server's in-order error
                                // replies to the rest of the probe flight;
                                // only their arrival matters.
                                if version >= PROTOCOL_V2 {
                                    fail_all(
                                        &mut slots,
                                        TransportError::VersionMismatch { got: version },
                                    );
                                    failed = true;
                                    break;
                                }
                            } else if version >= PROTOCOL_V2 {
                                self.peer = PeerVersion::V2;
                                // Ids are consecutive from `base`, so the
                                // slot index is a subtraction away.
                                let idx = id.wrapping_sub(base) as usize;
                                if idx >= n || slots[idx].is_some() {
                                    fail_all(
                                        &mut slots,
                                        TransportError::Io(std::io::Error::new(
                                            ErrorKind::InvalidData,
                                            "reply carries an id this flight never sent",
                                        )),
                                    );
                                    failed = true;
                                    break;
                                }
                                slots[idx] = Some(Ok(RoundTrip {
                                    response,
                                    meta: TransportMeta {
                                        request_bytes: request_lens[idx],
                                        response_bytes: reply.len() as u64,
                                        latency,
                                    },
                                }));
                            } else if self.peer == PeerVersion::Unknown
                                && matches!(
                                    response,
                                    RitmResponse::Error(ProtoError::UnsupportedVersion {
                                        requested: PROTOCOL_V2,
                                        ..
                                    })
                                )
                            {
                                // The peer is v1-only: keep draining its
                                // in-order rejections, then re-send the
                                // flight id-less.
                                fallback = true;
                            } else {
                                // A v1 reply from a server that already
                                // spoke v2 (or a non-negotiation v1 reply
                                // to a v2 probe): protocol violation.
                                fail_all(
                                    &mut slots,
                                    TransportError::VersionMismatch { got: version },
                                );
                                failed = true;
                                break;
                            }
                        }
                    }
                    // The decoded reply buffer goes back to the pool for
                    // the reader to hand out again (failure paths above
                    // break out and simply drop theirs).
                    self.pool.put(reply);
                }
                FrameRead::WouldBlock => {}
                FrameRead::Eof => {
                    fail_all(&mut slots, TransportError::NoResponse);
                    failed = true;
                    break;
                }
                FrameRead::Err(e) => {
                    fail_all(&mut slots, TransportError::Io(e));
                    failed = true;
                    break;
                }
            }
            if progress {
                last_progress = Instant::now();
            }
            if !got_frame && received < n {
                if last_progress.elapsed() > CLIENT_DEADLINE {
                    fail_all(&mut slots, TransportError::NoResponse);
                    failed = true;
                    break;
                }
                if !progress {
                    std::thread::sleep(CLIENT_POLL_INTERVAL);
                }
            }
        }
        if failed {
            // The stream may be mid-frame or hold replies to requests we
            // already failed; poison the transport so no later flight can
            // misattribute them.
            self.broken = true;
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
            return slots
                .into_iter()
                .map(|s| s.unwrap_or(Err(TransportError::NoResponse)))
                .collect();
        }
        if fallback {
            self.peer = PeerVersion::V1;
            return self.flight_in_order(reqs);
        }
        slots
            .into_iter()
            .map(|s| s.unwrap_or(Err(TransportError::NoResponse)))
            .collect()
    }

    /// The in-order v1 flight: queues every request frame onto the wire
    /// and decodes responses as they stream back, in request order —
    /// byte-identical to the pre-v2 pipelining client. Each response's
    /// latency is charged since the previous response arrived (the first
    /// since flight start), so the flight's summed latency is its
    /// wall-clock duration — comparable across transports.
    fn flight_in_order(&mut self, reqs: &[RitmRequest]) -> Vec<Result<RoundTrip, TransportError>> {
        // Same one-scratch-buffer flight encoding as the multiplexed path
        // (byte-identical to queueing each `to_frame()` separately).
        let mut writer = FrameWriter::with_pool(self.pool.clone());
        let mut scratch = self.pool.get();
        let mut request_lens = Vec::with_capacity(reqs.len());
        for req in reqs {
            let before = scratch.len();
            req.to_frame_into(&mut scratch);
            request_lens.push((scratch.len() - before) as u64);
        }
        writer.queue(scratch);
        let mut results: Vec<Result<RoundTrip, TransportError>> = Vec::with_capacity(reqs.len());
        let fail_rest = |results: &mut Vec<Result<RoundTrip, TransportError>>,
                         n: usize,
                         kind: ErrorKind,
                         msg: &str| {
            while results.len() < n {
                results.push(Err(TransportError::Io(std::io::Error::new(kind, msg))));
            }
        };
        // Same progress-based deadline as the multiplexed flight.
        let mut last_progress = Instant::now();
        let mut last_reply = last_progress;
        while results.len() < reqs.len() {
            let mut progress = false;
            let written_before = writer.written();
            match writer.poll_write(&mut self.stream) {
                FrameWrite::Done | FrameWrite::WouldBlock => {
                    progress |= writer.written() > written_before;
                }
                FrameWrite::Err(e) => {
                    let (kind, msg) = (e.kind(), "pipelined write failed");
                    fail_rest(&mut results, reqs.len(), kind, msg);
                    break;
                }
            }
            let mut got_frame = false;
            match self.reader.poll_frame(&mut self.stream) {
                FrameRead::Frame(reply) => {
                    progress = true;
                    got_frame = true;
                    let now = Instant::now();
                    let latency = SimDuration::from_micros((now - last_reply).as_micros() as u64);
                    last_reply = now;
                    results.push(decode_reply(&reply, latency));
                    self.pool.put(reply);
                }
                FrameRead::WouldBlock => {}
                FrameRead::Eof => {
                    while results.len() < reqs.len() {
                        results.push(Err(TransportError::NoResponse));
                    }
                    break;
                }
                FrameRead::Err(e) => {
                    let (kind, msg) = (e.kind(), "pipelined read failed");
                    fail_rest(&mut results, reqs.len(), kind, msg);
                    break;
                }
            }
            if progress {
                last_progress = Instant::now();
            }
            if !got_frame && results.len() < reqs.len() {
                if last_progress.elapsed() > CLIENT_DEADLINE {
                    while results.len() < reqs.len() {
                        results.push(Err(TransportError::NoResponse));
                    }
                    break;
                }
                if !progress {
                    std::thread::sleep(CLIENT_POLL_INTERVAL);
                }
            }
        }
        if results.iter().any(Result::is_err) {
            self.broken = true;
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
        }
        // Attach exact request-frame sizes (responses arrive in request
        // order, so results[i] answers reqs[i]).
        for (len, r) in request_lens.iter().zip(results.iter_mut()) {
            if let Ok(rt) = r {
                rt.meta.request_bytes = *len;
            }
        }
        results
    }
}

fn decode_reply(reply: &[u8], latency: SimDuration) -> Result<RoundTrip, TransportError> {
    let (body, _) = split_frame(reply)?;
    let response = RitmResponse::decode_body(body)?;
    Ok(RoundTrip {
        response,
        meta: TransportMeta {
            request_bytes: 0, // filled by the caller per request index
            response_bytes: reply.len() as u64,
            latency,
        },
    })
}

impl Transport for EventTransport {
    fn round_trip(&mut self, req: &RitmRequest) -> Result<RoundTrip, TransportError> {
        self.flight(std::slice::from_ref(req))
            .pop()
            .expect("one request yields one result")
    }

    fn round_trip_many(&mut self, reqs: &[RitmRequest]) -> Vec<Result<RoundTrip, TransportError>> {
        if reqs.is_empty() {
            return Vec::new();
        }
        self.flight(reqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtoError;
    use ritm_dictionary::CaId;

    struct Nope;

    impl Service for Nope {
        fn handle(&self, _req: RitmRequest) -> RitmResponse {
            RitmResponse::Error(ProtoError::NotFound)
        }
    }

    /// Echoes the manifest request's CA id back as an error (distinguishes
    /// responses, so ordering is observable).
    struct EchoCa;

    impl Service for EchoCa {
        fn handle(&self, req: RitmRequest) -> RitmResponse {
            match req {
                RitmRequest::GetManifest { ca } | RitmRequest::FetchDelta { ca } => {
                    RitmResponse::Error(ProtoError::UnknownCa(ca))
                }
                _ => RitmResponse::Error(ProtoError::Unsupported),
            }
        }
    }

    #[test]
    fn event_server_round_trips_and_shuts_down_cleanly() {
        let server = EventServer::spawn(Arc::new(Nope), 2).unwrap();
        assert!(server.thread_count() <= 2);
        let mut t = EventTransport::connect(server.addr()).unwrap();
        assert_eq!(t.negotiated_version(), None);
        let req = RitmRequest::GetManifest {
            ca: CaId::from_name("EvCA"),
        };
        for _ in 0..3 {
            let rt = t.round_trip(&req).unwrap();
            assert_eq!(rt.response, RitmResponse::Error(ProtoError::NotFound));
            // v2 frames carry 4 extra id bytes over the v1 baseline.
            assert_eq!(rt.meta.request_bytes as usize, req.to_frame().len() + 4);
        }
        assert_eq!(t.negotiated_version(), Some(PROTOCOL_V2));
        drop(t);
        assert_eq!(server.shutdown(), 3);
    }

    #[test]
    fn pipelined_flight_preserves_request_order() {
        let server = EventServer::spawn(Arc::new(EchoCa), 1).unwrap();
        let mut t = EventTransport::connect(server.addr()).unwrap();
        let cas: Vec<CaId> = (0..16)
            .map(|i| CaId::from_name(&format!("PipeCA{i}")))
            .collect();
        let reqs: Vec<RitmRequest> = cas
            .iter()
            .map(|&ca| RitmRequest::GetManifest { ca })
            .collect();
        let results = t.round_trip_many(&reqs);
        assert_eq!(results.len(), 16);
        for (i, r) in results.into_iter().enumerate() {
            let rt = r.expect("pipelined response");
            assert_eq!(
                rt.response,
                RitmResponse::Error(ProtoError::UnknownCa(cas[i])),
                "response {i} misrouted"
            );
            assert_eq!(rt.meta.request_bytes as usize, reqs[i].to_frame_v2(0).len());
        }
        drop(t);
        assert_eq!(server.shutdown(), 16);
    }

    #[test]
    fn shutdown_returns_despite_idle_clients() {
        let server = EventServer::spawn(Arc::new(Nope), 2).unwrap();
        // Idle clients that connect and send nothing: with thread-per-
        // connection these each pinned a worker; here they are parked
        // tasks, and shutdown still returns promptly.
        let idles: Vec<TcpStream> = (0..8)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(server.open_connections(), 8);
        assert_eq!(server.shutdown(), 0);
        drop(idles);
    }

    #[test]
    fn failed_flight_poisons_the_transport() {
        let server = EventServer::spawn(Arc::new(Nope), 1).unwrap();
        let addr = server.addr();
        let mut t = EventTransport::connect(addr).unwrap();
        let req = RitmRequest::FetchDelta {
            ca: CaId::from_name("GoneCA"),
        };
        // Tearing the server down mid-life makes the next flight fail...
        server.shutdown();
        assert!(t.round_trip(&req).is_err());
        assert!(t.is_broken());
        // ...and a poisoned connection is never reused (the stream may be
        // mid-frame): the next flight dials afresh, and with the server
        // gone for good that dial fails too — errors, never misattributed
        // replies.
        let results = t.round_trip_many(std::slice::from_ref(&req));
        assert!(matches!(&results[0], Err(TransportError::Io(_))));
        assert!(t.is_broken());
    }

    #[test]
    fn broken_transport_auto_reconnects_while_the_server_lives() {
        let server = EventServer::spawn(Arc::new(Grenade), 2).unwrap();
        let ca = CaId::from_name("PhoenixCA");
        let mut t = EventTransport::connect(server.addr()).unwrap();
        // The panicking service costs us the connection...
        assert!(t.round_trip(&RitmRequest::GetManifest { ca }).is_err());
        assert!(t.is_broken());
        // ...but the next flight dials the same (living) server afresh.
        let rt = t.round_trip(&RitmRequest::FetchDelta { ca }).unwrap();
        assert_eq!(rt.response, RitmResponse::Error(ProtoError::NotFound));
        assert!(!t.is_broken());
        drop(t);
        server.shutdown();
    }

    #[test]
    fn reconnect_to_follows_a_restarted_server() {
        let server = EventServer::spawn(Arc::new(EchoCa), 1).unwrap();
        let ca = CaId::from_name("MoveCA");
        let req = RitmRequest::GetManifest { ca };
        let mut t = EventTransport::connect(server.addr()).unwrap();
        assert!(t.round_trip(&req).is_ok());
        server.shutdown();
        // The old address is gone: the failing flight and the auto-redial
        // behind the next one both come up empty...
        assert!(t.round_trip(&req).is_err());
        assert!(t.round_trip(&req).is_err());
        // ...but following the restarted server to its new address works,
        // with version negotiation re-run from scratch.
        let server = EventServer::spawn(Arc::new(EchoCa), 1).unwrap();
        t.reconnect_to(server.addr()).unwrap();
        assert!(!t.is_broken());
        let rt = t.round_trip(&req).unwrap();
        assert_eq!(rt.response, RitmResponse::Error(ProtoError::UnknownCa(ca)));
        assert_eq!(t.negotiated_version(), Some(PROTOCOL_V2));
        drop(t);
        server.shutdown();
    }

    /// Panics on `GetManifest`, serves everything else.
    struct Grenade;

    impl Service for Grenade {
        fn handle(&self, req: RitmRequest) -> RitmResponse {
            if matches!(req, RitmRequest::GetManifest { .. }) {
                panic!("boom");
            }
            RitmResponse::Error(ProtoError::NotFound)
        }
    }

    #[test]
    fn panicking_service_costs_only_its_connection() {
        let server = EventServer::spawn(Arc::new(Grenade), 2).unwrap();
        let ca = CaId::from_name("BoomCA");
        let mut t1 = EventTransport::connect(server.addr()).unwrap();
        assert!(t1.round_trip(&RitmRequest::GetManifest { ca }).is_err());
        // The runtime survives and keeps serving new connections.
        let mut t2 = EventTransport::connect(server.addr()).unwrap();
        let rt = t2.round_trip(&RitmRequest::FetchDelta { ca }).unwrap();
        assert_eq!(rt.response, RitmResponse::Error(ProtoError::NotFound));
        drop((t1, t2));
        server.shutdown();
    }

    #[test]
    fn v1_pinned_transport_sends_baseline_frames() {
        let server = EventServer::spawn(Arc::new(EchoCa), 2).unwrap();
        let mut t = EventTransport::connect_pinned_v1(server.addr()).unwrap();
        assert_eq!(t.negotiated_version(), Some(PROTOCOL_VERSION));
        let ca = CaId::from_name("PinCA");
        let req = RitmRequest::GetManifest { ca };
        let rt = t.round_trip(&req).unwrap();
        assert_eq!(rt.response, RitmResponse::Error(ProtoError::UnknownCa(ca)));
        assert_eq!(rt.meta.request_bytes as usize, req.to_frame().len());
        drop(t);
        assert_eq!(server.shutdown(), 1);
    }
}
