//! Event-driven serving over real OS sockets: many connections, ≤2 threads.
//!
//! [`EventServer`] is the deployment-shaped counterpart to the blocking
//! [`crate::tcp::TcpServer`]: instead of one OS thread per connection, every
//! connection is a small task on a [`ritm_rt`] executor. Sockets are
//! `set_nonblocking`; partial frames are resumed by
//! [`ritm_rt::FrameReader`] / [`ritm_rt::FrameWriter`]; a task whose socket
//! is not ready parks in the reactor and costs nothing but its buffers.
//! The whole server — acceptor included — runs on at most
//! [`ritm_rt::executor::MAX_WORKERS`] (= 2) OS threads, which is what lets
//! one edge or RA process hold open connections from very many clients at
//! once (the paper's middlebox/CDN deployment model, §VI).
//!
//! [`EventTransport`] is the matching non-blocking client. Beyond the plain
//! [`Transport`] round trip it implements true request *pipelining*
//! ([`Transport::round_trip_many`]): all request frames are queued onto the
//! wire while responses stream back, so N round trips cost ~1 RTT instead
//! of N. Responses arrive in request order — the server handles each
//! connection's frames sequentially — which is what makes pipelining safe
//! without request IDs in the envelope.
//!
//! Frames on the socket are byte-identical to every other transport: the
//! same `u32 length ‖ version ‖ kind ‖ fields` envelopes.

use crate::error::TransportError;
use crate::message::{split_frame, RitmRequest, RitmResponse, MAX_FRAME_LEN};
use crate::service::Service;
use crate::transport::{RoundTrip, Transport, TransportMeta};
use ritm_net::time::SimDuration;
use ritm_rt::{io as rt_io, Executor, FrameRead, FrameReader, FrameWrite, FrameWriter, IoPoll};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared per-server counters.
#[derive(Debug, Default)]
struct ServerStats {
    served: AtomicU64,
    open_conns: AtomicU64,
    peak_conns: AtomicU64,
}

/// An event-driven server for one [`Service`]: all connections multiplexed
/// onto a ≤2-thread [`ritm_rt`] runtime.
pub struct EventServer {
    addr: SocketAddr,
    executor: Executor,
    closing: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
}

impl EventServer {
    /// Binds `127.0.0.1:0` (ephemeral port) and starts serving `service`
    /// on `threads` executor workers (clamped to `1..=2` — connections are
    /// multiplexed, not threaded).
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn spawn(service: Arc<dyn Service>, threads: usize) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let executor = Executor::new(threads);
        let closing = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());

        let handle = executor.handle();
        {
            let closing = Arc::clone(&closing);
            let stats = Arc::clone(&stats);
            let spawner = handle.clone();
            handle.spawn(accept_loop(listener, service, spawner, closing, stats));
        }

        Ok(EventServer {
            addr,
            executor,
            closing,
            stats,
        })
    }

    /// The bound address to hand to [`EventTransport::connect`].
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far, across all connections.
    pub fn served(&self) -> u64 {
        self.stats.served.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> u64 {
        self.stats.open_conns.load(Ordering::Relaxed)
    }

    /// The most connections ever open at once — the multiplexing headroom
    /// the `event-smoke` acceptance asserts (≥64 on 2 threads).
    pub fn peak_connections(&self) -> u64 {
        self.stats.peak_conns.load(Ordering::Relaxed)
    }

    /// OS threads the server runs on (acceptor included).
    pub fn thread_count(&self) -> usize {
        self.executor.thread_count()
    }

    /// Stops accepting, closes every connection task (each observes the
    /// flag within one readiness tick — an idle client cannot pin
    /// anything), drains the runtime, and returns the total requests
    /// served. Like [`crate::tcp::TcpServer::shutdown`], this ends an
    /// experiment; it does not drain in-flight client batches.
    pub fn shutdown(self) -> u64 {
        self.closing.store(true, Ordering::SeqCst);
        self.executor.shutdown();
        self.stats.served.load(Ordering::Relaxed)
    }
}

async fn accept_loop(
    listener: TcpListener,
    service: Arc<dyn Service>,
    handle: ritm_rt::Handle,
    closing: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
) {
    let reactor = handle.reactor();
    loop {
        let accepted = rt_io(&reactor, || {
            if closing.load(Ordering::SeqCst) {
                return IoPoll::Ready(None);
            }
            match listener.accept() {
                Ok((stream, _peer)) => IoPoll::Ready(Some(stream)),
                Err(e) if e.kind() == ErrorKind::WouldBlock => IoPoll::WouldBlock,
                // Transient accept failures (peer reset in the backlog):
                // treated as not-ready, retried next tick.
                Err(_) => IoPoll::WouldBlock,
            }
        })
        .await;
        let Some(stream) = accepted else { return };
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            continue;
        }
        let open = stats.open_conns.fetch_add(1, Ordering::SeqCst) + 1;
        stats.peak_conns.fetch_max(open, Ordering::SeqCst);
        let service = Arc::clone(&service);
        let closing = Arc::clone(&closing);
        let stats = Arc::clone(&stats);
        let reactor = Arc::clone(&reactor);
        handle.spawn(async move {
            serve_connection(stream, service, closing, &stats, reactor).await;
            stats.open_conns.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

/// One connection's task: read frame → handle → flush, until the client
/// hangs up, the stream fails, or the server starts closing.
async fn serve_connection(
    mut stream: TcpStream,
    service: Arc<dyn Service>,
    closing: Arc<AtomicBool>,
    stats: &ServerStats,
    reactor: Arc<ritm_rt::Reactor>,
) {
    let mut reader = FrameReader::new(MAX_FRAME_LEN);
    let mut writer = FrameWriter::new();
    loop {
        let frame = rt_io(&reactor, || {
            if closing.load(Ordering::SeqCst) {
                return IoPoll::Ready(None);
            }
            match reader.poll_frame(&mut stream) {
                FrameRead::Frame(f) => IoPoll::Ready(Some(f)),
                FrameRead::WouldBlock => IoPoll::WouldBlock,
                FrameRead::Eof | FrameRead::Err(_) => IoPoll::Ready(None),
            }
        })
        .await;
        let Some(frame) = frame else { return };
        // A panicking service request costs only its own connection — the
        // executor also guards the worker, but closing the connection here
        // keeps the peer from waiting on a reply that will never come.
        let Ok(resp) = std::panic::catch_unwind(AssertUnwindSafe(|| service.handle_frame(&frame)))
        else {
            return;
        };
        writer.queue(resp);
        let flushed = rt_io(&reactor, || {
            if closing.load(Ordering::SeqCst) {
                return IoPoll::Ready(false);
            }
            match writer.poll_write(&mut stream) {
                FrameWrite::Done => IoPoll::Ready(true),
                FrameWrite::WouldBlock => IoPoll::WouldBlock,
                FrameWrite::Err(_) => IoPoll::Ready(false),
            }
        })
        .await;
        if !flushed {
            return;
        }
        stats.served.fetch_add(1, Ordering::Relaxed);
    }
}

/// How long a client flight may wait without any socket progress before
/// giving up with [`TransportError::NoResponse`].
const CLIENT_DEADLINE: Duration = Duration::from_secs(30);

/// Client-side sleep while the socket is not ready in either direction.
const CLIENT_POLL_INTERVAL: Duration = Duration::from_micros(200);

/// The non-blocking client: one connection, pipelined round trips.
///
/// [`Transport::round_trip`] behaves like the blocking client; the payoff
/// is [`Transport::round_trip_many`], which keeps every request of a batch
/// in flight at once.
///
/// Any transport-level failure (EOF, I/O error, deadline) **poisons the
/// connection**: without request IDs in the envelope, a late reply to a
/// failed flight could otherwise be misattributed to the next flight's
/// requests. Every later call fails immediately — reconnect to recover.
pub struct EventTransport {
    stream: TcpStream,
    reader: FrameReader,
    /// Set after any transport-level failure; the stream may hold
    /// misaligned bytes, so it must never be reused.
    broken: bool,
}

impl EventTransport {
    /// Connects to an [`EventServer`] (or any frame-speaking server).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(EventTransport {
            stream,
            reader: FrameReader::new(MAX_FRAME_LEN),
            broken: false,
        })
    }

    /// Whether a transport-level failure has poisoned this connection.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Runs one pipelined flight: queues every request frame onto the wire
    /// and decodes responses as they stream back, in request order. Each
    /// response's latency is charged since the previous response arrived
    /// (the first since flight start), so the flight's summed latency is
    /// its wall-clock duration — comparable across transports.
    fn flight(&mut self, reqs: &[RitmRequest]) -> Vec<Result<RoundTrip, TransportError>> {
        if self.broken {
            return reqs
                .iter()
                .map(|_| {
                    Err(TransportError::Io(std::io::Error::new(
                        ErrorKind::NotConnected,
                        "transport poisoned by an earlier failed flight",
                    )))
                })
                .collect();
        }
        let mut writer = FrameWriter::new();
        let mut request_lens = Vec::with_capacity(reqs.len());
        for req in reqs {
            let frame = req.to_frame();
            request_lens.push(frame.len() as u64);
            writer.queue(frame);
        }
        let mut results: Vec<Result<RoundTrip, TransportError>> = Vec::with_capacity(reqs.len());
        let fail_rest = |results: &mut Vec<Result<RoundTrip, TransportError>>,
                         n: usize,
                         kind: ErrorKind,
                         msg: &str| {
            while results.len() < n {
                results.push(Err(TransportError::Io(std::io::Error::new(kind, msg))));
            }
        };
        // The deadline is on socket *progress* (bytes written or a frame
        // arrived), not total flight time: a large flight streaming
        // steadily must never trip it.
        let mut last_progress = Instant::now();
        let mut last_reply = last_progress;
        while results.len() < reqs.len() {
            let mut progress = false;
            // Keep pushing request frames while the socket accepts them...
            let written_before = writer.written();
            match writer.poll_write(&mut self.stream) {
                FrameWrite::Done | FrameWrite::WouldBlock => {
                    progress |= writer.written() > written_before;
                }
                FrameWrite::Err(e) => {
                    let (kind, msg) = (e.kind(), "pipelined write failed");
                    fail_rest(&mut results, reqs.len(), kind, msg);
                    break;
                }
            }
            // ...while draining responses, so a server that fills its send
            // buffer before we finish writing can never deadlock us.
            let mut got_frame = false;
            match self.reader.poll_frame(&mut self.stream) {
                FrameRead::Frame(reply) => {
                    progress = true;
                    got_frame = true;
                    let now = Instant::now();
                    let latency = SimDuration::from_micros((now - last_reply).as_micros() as u64);
                    last_reply = now;
                    results.push(decode_reply(&reply, latency));
                }
                FrameRead::WouldBlock => {}
                FrameRead::Eof => {
                    while results.len() < reqs.len() {
                        results.push(Err(TransportError::NoResponse));
                    }
                    break;
                }
                FrameRead::Err(e) => {
                    let (kind, msg) = (e.kind(), "pipelined read failed");
                    fail_rest(&mut results, reqs.len(), kind, msg);
                    break;
                }
            }
            if progress {
                last_progress = Instant::now();
            }
            if !got_frame && results.len() < reqs.len() {
                if last_progress.elapsed() > CLIENT_DEADLINE {
                    while results.len() < reqs.len() {
                        results.push(Err(TransportError::NoResponse));
                    }
                    break;
                }
                if !progress {
                    std::thread::sleep(CLIENT_POLL_INTERVAL);
                }
            }
        }
        if results.iter().any(Result::is_err) {
            // The stream may be mid-frame or hold replies to requests we
            // already failed; poison the transport so no later flight can
            // misattribute them.
            self.broken = true;
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
        }
        // Attach exact request-frame sizes (responses arrive in request
        // order, so results[i] answers reqs[i]).
        for (len, r) in request_lens.iter().zip(results.iter_mut()) {
            if let Ok(rt) = r {
                rt.meta.request_bytes = *len;
            }
        }
        results
    }
}

fn decode_reply(reply: &[u8], latency: SimDuration) -> Result<RoundTrip, TransportError> {
    let (body, _) = split_frame(reply)?;
    let response = RitmResponse::decode_body(body)?;
    Ok(RoundTrip {
        response,
        meta: TransportMeta {
            request_bytes: 0, // filled by the caller per request index
            response_bytes: reply.len() as u64,
            latency,
        },
    })
}

impl Transport for EventTransport {
    fn round_trip(&mut self, req: &RitmRequest) -> Result<RoundTrip, TransportError> {
        self.flight(std::slice::from_ref(req))
            .pop()
            .expect("one request yields one result")
    }

    fn round_trip_many(&mut self, reqs: &[RitmRequest]) -> Vec<Result<RoundTrip, TransportError>> {
        if reqs.is_empty() {
            return Vec::new();
        }
        self.flight(reqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtoError;
    use ritm_dictionary::CaId;

    struct Nope;

    impl Service for Nope {
        fn handle(&self, _req: RitmRequest) -> RitmResponse {
            RitmResponse::Error(ProtoError::NotFound)
        }
    }

    /// Echoes the manifest request's CA id back as an error (distinguishes
    /// responses, so ordering is observable).
    struct EchoCa;

    impl Service for EchoCa {
        fn handle(&self, req: RitmRequest) -> RitmResponse {
            match req {
                RitmRequest::GetManifest { ca } | RitmRequest::FetchDelta { ca } => {
                    RitmResponse::Error(ProtoError::UnknownCa(ca))
                }
                _ => RitmResponse::Error(ProtoError::Unsupported),
            }
        }
    }

    #[test]
    fn event_server_round_trips_and_shuts_down_cleanly() {
        let server = EventServer::spawn(Arc::new(Nope), 2).unwrap();
        assert!(server.thread_count() <= 2);
        let mut t = EventTransport::connect(server.addr()).unwrap();
        let req = RitmRequest::GetManifest {
            ca: CaId::from_name("EvCA"),
        };
        for _ in 0..3 {
            let rt = t.round_trip(&req).unwrap();
            assert_eq!(rt.response, RitmResponse::Error(ProtoError::NotFound));
            assert_eq!(rt.meta.request_bytes as usize, req.to_frame().len());
        }
        drop(t);
        assert_eq!(server.shutdown(), 3);
    }

    #[test]
    fn pipelined_flight_preserves_request_order() {
        let server = EventServer::spawn(Arc::new(EchoCa), 1).unwrap();
        let mut t = EventTransport::connect(server.addr()).unwrap();
        let cas: Vec<CaId> = (0..16)
            .map(|i| CaId::from_name(&format!("PipeCA{i}")))
            .collect();
        let reqs: Vec<RitmRequest> = cas
            .iter()
            .map(|&ca| RitmRequest::GetManifest { ca })
            .collect();
        let results = t.round_trip_many(&reqs);
        assert_eq!(results.len(), 16);
        for (i, r) in results.into_iter().enumerate() {
            let rt = r.expect("pipelined response");
            assert_eq!(
                rt.response,
                RitmResponse::Error(ProtoError::UnknownCa(cas[i])),
                "response {i} out of order"
            );
            assert_eq!(rt.meta.request_bytes as usize, reqs[i].to_frame().len());
        }
        drop(t);
        assert_eq!(server.shutdown(), 16);
    }

    #[test]
    fn shutdown_returns_despite_idle_clients() {
        let server = EventServer::spawn(Arc::new(Nope), 2).unwrap();
        // Idle clients that connect and send nothing: with thread-per-
        // connection these each pinned a worker; here they are parked
        // tasks, and shutdown still returns promptly.
        let idles: Vec<TcpStream> = (0..8)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(server.open_connections(), 8);
        assert_eq!(server.shutdown(), 0);
        drop(idles);
    }

    #[test]
    fn failed_flight_poisons_the_transport() {
        let server = EventServer::spawn(Arc::new(Nope), 1).unwrap();
        let addr = server.addr();
        let mut t = EventTransport::connect(addr).unwrap();
        let req = RitmRequest::FetchDelta {
            ca: CaId::from_name("GoneCA"),
        };
        // Tearing the server down mid-life makes the next flight fail...
        server.shutdown();
        assert!(t.round_trip(&req).is_err());
        assert!(t.is_broken());
        // ...and without request IDs a poisoned connection must never be
        // reused: later flights fail immediately instead of risking
        // misattributed late replies.
        let results = t.round_trip_many(std::slice::from_ref(&req));
        assert!(matches!(
            &results[0],
            Err(TransportError::Io(e)) if e.kind() == ErrorKind::NotConnected
        ));
    }

    /// Panics on `GetManifest`, serves everything else.
    struct Grenade;

    impl Service for Grenade {
        fn handle(&self, req: RitmRequest) -> RitmResponse {
            if matches!(req, RitmRequest::GetManifest { .. }) {
                panic!("boom");
            }
            RitmResponse::Error(ProtoError::NotFound)
        }
    }

    #[test]
    fn panicking_service_costs_only_its_connection() {
        let server = EventServer::spawn(Arc::new(Grenade), 2).unwrap();
        let ca = CaId::from_name("BoomCA");
        let mut t1 = EventTransport::connect(server.addr()).unwrap();
        assert!(t1.round_trip(&RitmRequest::GetManifest { ca }).is_err());
        // The runtime survives and keeps serving new connections.
        let mut t2 = EventTransport::connect(server.addr()).unwrap();
        let rt = t2.round_trip(&RitmRequest::FetchDelta { ca }).unwrap();
        assert_eq!(rt.response, RitmResponse::Error(ProtoError::NotFound));
        drop((t1, t2));
        server.shutdown();
    }
}
