//! Versioned, length-delimited request/response envelopes.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! frame    := u32 BE body length ‖ body
//! body(v1) := version=1 (u8) ‖ kind (u8) ‖ fields
//! body(v2) := version=2 (u8) ‖ request_id (u32 BE) ‖ kind (u8) ‖ fields
//! ```
//!
//! The version byte comes first so that a server can always answer a frame
//! from the future with a typed
//! [`ProtoError::UnsupportedVersion`] instead of
//! misparsing it; kinds below `0x80` are requests, kinds at or above it are
//! responses. All field counts are validated against the bytes actually
//! present (`check_count`) before sizing any allocation, so a forged count
//! can never balloon memory or panic the decoder.
//!
//! **v2** adds a 4-byte `request_id` right after the version byte; the
//! server echoes both back on the matching response. The id is opaque to
//! the server (no uniqueness requirement — correlation is the client's
//! problem), and it is what makes *out-of-order* completion safe: a
//! multiplexed client matches replies by id instead of arrival order, so
//! one slow request no longer head-of-line-blocks the rest of its
//! connection. v1 remains fully supported and byte-identical to before —
//! [`RitmRequest::to_frame`]/[`RitmResponse::to_frame`] still emit v1, and
//! v1 peers negotiate down transparently (see `EventTransport`).

use crate::error::{ProtoError, TransportError};
use crate::payload::StatusPayload;
use ritm_crypto::wire::{DecodeError, Reader, Writer};
use ritm_dictionary::{
    CaId, FreshnessStatement, RefreshMessage, RevocationIssuance, SerialNumber, SignedRoot,
};

/// The baseline protocol version: the id-less in-order envelope every
/// peer speaks. [`RitmRequest::to_frame`]/[`RitmResponse::to_frame`] emit
/// this version, byte-identical to every release since PR 4.
pub const PROTOCOL_VERSION: u8 = 1;

/// The multiplexed envelope: carries a per-frame `request_id` echoed on
/// the response, enabling out-of-order completion. Emitted by
/// [`RitmRequest::to_frame_v2`] / [`RitmResponse::to_frame_for`].
pub const PROTOCOL_V2: u8 = 2;

/// The oldest version this crate still accepts. Bump together with
/// [`MAX_SUPPORTED_VERSION`] only on a breaking wire change.
pub const MIN_SUPPORTED_VERSION: u8 = 1;

/// The newest version this crate accepts (and reports in
/// [`ProtoError::UnsupportedVersion`] as its ceiling).
pub const MAX_SUPPORTED_VERSION: u8 = PROTOCOL_V2;

/// Upper bound on one frame body. Generous enough for a full catch-up
/// bundle (a million 20-byte serials), small enough that a hostile length
/// prefix cannot drive an allocation into the gigabytes.
///
/// A response that would exceed this cap degrades to a typed
/// [`ProtoError::ResponseTooLarge`] (carrying the would-be size and this
/// cap) at the service choke point; an RA whose catch-up gap encodes past
/// it (≥ ~1.5M serials missed in one Δ) cannot converge through `CatchUp`
/// alone — chunked catch-up with historical roots is a recorded future
/// protocol extension (see ROADMAP), and this error is its observable
/// trigger.
pub const MAX_FRAME_LEN: usize = 1 << 25;

/// Upper bound servers clamp a paged catch-up `limit` to. Serials encode
/// to at most 21 bytes each, so a page of `MAX_PAGE_LIMIT` serials plus
/// the fixed `DeltaPage` overhead is guaranteed to fit [`MAX_FRAME_LEN`]
/// regardless of what limit the client asked for.
pub const MAX_PAGE_LIMIT: u32 = 1 << 20;

/// Upper bound on a `GetMultiStatus` chain. One below the status payload's
/// `0xFF` section marker, so even a fully-uncompressed response stays
/// encodable — the request decoder rejects longer chains as malformed
/// instead of letting response encoding panic.
pub const MAX_CHAIN_LEN: usize = 254;

/// Upper bound on the `(ca, signed_root)` entries one gossip exchange may
/// carry in either direction. Each entry is a fixed 136 bytes on the wire,
/// so a full vector stays well under [`MAX_FRAME_LEN`]; a fleet mirroring
/// more CAs than this gossips them across several exchanges.
pub const MAX_GOSSIP_ROOTS: usize = 4096;

/// Fixed wire size of one gossip entry: an 8-byte CA id followed by a
/// [`SignedRoot`] ([`ritm_dictionary::root::SIGNED_ROOT_LEN`] bytes).
const GOSSIP_ENTRY_LEN: usize = 8 + ritm_dictionary::root::SIGNED_ROOT_LEN;

fn encode_gossip_roots(w: &mut Writer, roots: &[(CaId, SignedRoot)]) {
    assert!(roots.len() <= MAX_GOSSIP_ROOTS, "gossip vector overflow");
    w.u16(roots.len() as u16);
    for (ca, root) in roots {
        encode_ca(w, ca);
        w.bytes(&root.to_bytes());
    }
}

fn decode_gossip_roots(r: &mut Reader<'_>) -> Result<Vec<(CaId, SignedRoot)>, DecodeError> {
    let len_pos = r.position();
    let n = r.u16("gossip root count")? as usize;
    if n > MAX_GOSSIP_ROOTS {
        return Err(DecodeError::new(
            "gossip root count exceeds MAX_GOSSIP_ROOTS",
            len_pos,
        ));
    }
    r.check_count(n, GOSSIP_ENTRY_LEN, "gossip root count exceeds buffer")?;
    let mut roots = Vec::with_capacity(n);
    for _ in 0..n {
        roots.push((decode_ca(r)?, SignedRoot::decode(r)?));
    }
    Ok(roots)
}

const REQ_FETCH_DELTA: u8 = 0x01;
const REQ_FETCH_FRESHNESS: u8 = 0x02;
const REQ_CATCH_UP: u8 = 0x03;
const REQ_GET_STATUS: u8 = 0x04;
const REQ_GET_MULTI_STATUS: u8 = 0x05;
const REQ_GET_SIGNED_ROOT: u8 = 0x06;
const REQ_GET_MANIFEST: u8 = 0x07;
const REQ_CATCH_UP_PAGED: u8 = 0x08;
const REQ_GOSSIP_ROOTS: u8 = 0x09;

const RESP_DELTA: u8 = 0x81;
const RESP_FRESHNESS: u8 = 0x82;
const RESP_STATUS: u8 = 0x84;
const RESP_SIGNED_ROOT: u8 = 0x86;
const RESP_MANIFEST: u8 = 0x87;
const RESP_DELTA_PAGE: u8 = 0x88;
const RESP_GOSSIP_ACK: u8 = 0x89;
const RESP_ERROR: u8 = 0xEE;

const REFRESH_TAG_FRESHNESS: u8 = 0;
const REFRESH_TAG_NEW_ROOT: u8 = 1;

/// One request an endpoint can serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RitmRequest {
    /// The latest issuance bundle for a CA (the RA's periodic Δ pull).
    FetchDelta {
        /// CA whose feed is pulled.
        ca: CaId,
    },
    /// The latest freshness statement (or rotated root) for a CA.
    FetchFreshness {
        /// CA whose statement is pulled.
        ca: CaId,
    },
    /// The §III catch-up request of a desynchronized RA holding `have`
    /// consecutive revocations.
    CatchUp {
        /// CA to catch up on.
        ca: CaId,
        /// Consecutive revocations the requester already holds.
        have: u64,
    },
    /// One certificate's full revocation status (proof + root + freshness).
    GetStatus {
        /// Issuing CA.
        ca: CaId,
        /// Certificate serial to prove.
        serial: SerialNumber,
    },
    /// Statuses for a whole certificate chain, optionally compressing
    /// same-CA runs into multiproofs.
    GetMultiStatus {
        /// `(issuer, serial)` per chain position, leaf first.
        chain: Vec<(CaId, SerialNumber)>,
        /// Whether same-CA runs may be compressed.
        compress: bool,
    },
    /// The CA's current signed root (consistency monitoring, bootstrap).
    GetSignedRoot {
        /// CA whose root is requested.
        ca: CaId,
    },
    /// The `/RITM.json` bootstrap manifest (§VIII).
    GetManifest {
        /// CA whose manifest is requested.
        ca: CaId,
    },
    /// The paged form of [`CatchUp`](RitmRequest::CatchUp): at most `limit`
    /// serials per reply, so any gap — even one whose full bundle would
    /// blow past [`MAX_FRAME_LEN`] — converges in bounded pages, each
    /// anchored to a historical signed root. Servers predating this kind
    /// answer `Malformed` ("unknown request kind"), which a client treats
    /// as "fall back to the unpaged form" — old servers keep answering the
    /// unpaged request byte-identically.
    CatchUpPaged {
        /// CA to catch up on.
        ca: CaId,
        /// Consecutive revocations the requester already holds.
        have: u64,
        /// Maximum serials the requester wants in this page (servers may
        /// clamp it further to honor [`MAX_FRAME_LEN`]).
        limit: u32,
    },
    /// RA↔RA fleet gossip: the sender's current signed roots, one per
    /// mirrored CA. The receiver verifies each against its pinned CA keys,
    /// folds them into its fleet view (flagging stale peers and split
    /// views), and answers [`GossipAck`](RitmResponse::GossipAck) with its
    /// own roots — a symmetric push–pull exchange. Servers predating this
    /// kind answer `Malformed` ("unknown request kind"), which a gossiping
    /// node records as "peer does not gossip" rather than an outage.
    GossipRoots {
        /// The sender's `(ca, signed_root)` pairs, at most
        /// [`MAX_GOSSIP_ROOTS`].
        roots: Vec<(CaId, SignedRoot)>,
    },
}

/// One response. Kind `0xEE` carries the typed error taxonomy; everything
/// else is the success payload for the matching request.
#[derive(Debug, Clone, PartialEq)]
pub enum RitmResponse {
    /// An issuance bundle (answers `FetchDelta` and `CatchUp`).
    Delta(RevocationIssuance),
    /// A freshness statement or rotated root (answers `FetchFreshness`).
    Freshness(RefreshMessage),
    /// A status payload (answers `GetStatus` and `GetMultiStatus`).
    Status(StatusPayload),
    /// A signed root (answers `GetSignedRoot`).
    SignedRoot(SignedRoot),
    /// Opaque manifest bytes (answers `GetManifest`).
    Manifest(Vec<u8>),
    /// One page of a paged catch-up (answers `CatchUpPaged`): an issuance
    /// bundle ending at a (possibly historical) signed root, plus how many
    /// serials remain beyond it. `remaining == 0` means the requester is
    /// caught up once this page is applied.
    DeltaPage {
        /// The page's issuance bundle; its signed root covers exactly the
        /// dictionary prefix the requester holds after applying it.
        issuance: RevocationIssuance,
        /// Serials still missing after this page.
        remaining: u64,
    },
    /// The receiver's half of a gossip exchange (answers
    /// [`GossipRoots`](RitmRequest::GossipRoots)): its own current signed
    /// roots, so one round trip synchronizes both directions.
    GossipAck {
        /// The receiver's `(ca, signed_root)` pairs, at most
        /// [`MAX_GOSSIP_ROOTS`].
        roots: Vec<(CaId, SignedRoot)>,
    },
    /// The request failed; see [`ProtoError`].
    Error(ProtoError),
}

fn encode_ca(w: &mut Writer, ca: &CaId) {
    w.bytes(&ca.0);
}

fn decode_ca(r: &mut Reader<'_>) -> Result<CaId, DecodeError> {
    Ok(CaId(r.array("ca id")?))
}

fn encode_serial(w: &mut Writer, s: &SerialNumber) {
    w.vec8(s.as_bytes());
}

fn decode_serial(r: &mut Reader<'_>) -> Result<SerialNumber, DecodeError> {
    let pos = r.position();
    let raw = r.vec8("serial bytes")?;
    SerialNumber::new(raw).map_err(|_| DecodeError::new("invalid serial", pos))
}

impl RitmRequest {
    /// Short name of the request kind (for logs and metrics).
    pub fn kind_name(&self) -> &'static str {
        match self {
            RitmRequest::FetchDelta { .. } => "fetch_delta",
            RitmRequest::FetchFreshness { .. } => "fetch_freshness",
            RitmRequest::CatchUp { .. } => "catch_up",
            RitmRequest::GetStatus { .. } => "get_status",
            RitmRequest::GetMultiStatus { .. } => "get_multi_status",
            RitmRequest::GetSignedRoot { .. } => "get_signed_root",
            RitmRequest::GetManifest { .. } => "get_manifest",
            RitmRequest::CatchUpPaged { .. } => "catch_up_paged",
            RitmRequest::GossipRoots { .. } => "gossip_roots",
        }
    }

    /// Exact encoded body length (version + kind + fields), computed
    /// without serializing.
    pub fn encoded_len(&self) -> usize {
        2 + match self {
            RitmRequest::FetchDelta { .. }
            | RitmRequest::FetchFreshness { .. }
            | RitmRequest::GetSignedRoot { .. }
            | RitmRequest::GetManifest { .. } => 8,
            RitmRequest::CatchUp { .. } => 16,
            RitmRequest::CatchUpPaged { .. } => 20,
            RitmRequest::GetStatus { serial, .. } => 8 + 1 + serial.len(),
            RitmRequest::GetMultiStatus { chain, .. } => {
                1 + chain.iter().map(|(_, s)| 8 + 1 + s.len()).sum::<usize>() + 1
            }
            RitmRequest::GossipRoots { roots } => 2 + roots.len() * GOSSIP_ENTRY_LEN,
        }
    }

    fn encode_body(&self, w: &mut Writer, version: u8, request_id: u32) {
        w.u8(version);
        if version >= PROTOCOL_V2 {
            w.u32(request_id);
        }
        self.encode_fields(w);
    }

    /// The version-independent tail of the body: `kind ‖ fields`.
    fn encode_fields(&self, w: &mut Writer) {
        match self {
            RitmRequest::FetchDelta { ca } => {
                w.u8(REQ_FETCH_DELTA);
                encode_ca(w, ca);
            }
            RitmRequest::FetchFreshness { ca } => {
                w.u8(REQ_FETCH_FRESHNESS);
                encode_ca(w, ca);
            }
            RitmRequest::CatchUp { ca, have } => {
                w.u8(REQ_CATCH_UP);
                encode_ca(w, ca);
                w.u64(*have);
            }
            RitmRequest::GetStatus { ca, serial } => {
                w.u8(REQ_GET_STATUS);
                encode_ca(w, ca);
                encode_serial(w, serial);
            }
            RitmRequest::GetMultiStatus { chain, compress } => {
                w.u8(REQ_GET_MULTI_STATUS);
                assert!(chain.len() <= MAX_CHAIN_LEN, "chain length overflow");
                w.u8(chain.len() as u8);
                for (ca, serial) in chain {
                    encode_ca(w, ca);
                    encode_serial(w, serial);
                }
                w.u8(u8::from(*compress));
            }
            RitmRequest::GetSignedRoot { ca } => {
                w.u8(REQ_GET_SIGNED_ROOT);
                encode_ca(w, ca);
            }
            RitmRequest::GetManifest { ca } => {
                w.u8(REQ_GET_MANIFEST);
                encode_ca(w, ca);
            }
            RitmRequest::CatchUpPaged { ca, have, limit } => {
                w.u8(REQ_CATCH_UP_PAGED);
                encode_ca(w, ca);
                w.u64(*have);
                w.u32(*limit);
            }
            RitmRequest::GossipRoots { roots } => {
                w.u8(REQ_GOSSIP_ROOTS);
                encode_gossip_roots(w, roots);
            }
        }
    }

    /// Encodes the baseline v1 frame (`u32` length prefix + versioned
    /// body), pre-sized to [`RitmRequest::encoded_len`] plus the prefix.
    /// Byte-identical to every pre-v2 release.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.encoded_len());
        self.to_frame_into(&mut out);
        out
    }

    /// Appends the v1 frame to `out` — how a whole flight of requests is
    /// encoded into one reusable scratch buffer with no per-request
    /// allocation. Byte-identical to [`RitmRequest::to_frame`].
    pub fn to_frame_into(&self, out: &mut Vec<u8>) {
        let body_len = self.encoded_len();
        let before = out.len();
        out.reserve(4 + body_len);
        let mut w = Writer::from_vec(std::mem::take(out));
        w.u32(body_len as u32);
        self.encode_body(&mut w, PROTOCOL_VERSION, 0);
        *out = w.into_bytes();
        debug_assert_eq!(out.len() - before, 4 + body_len);
    }

    /// Encodes the multiplexed v2 frame, tagging the body with
    /// `request_id` (echoed back on the matching response).
    pub fn to_frame_v2(&self, request_id: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 4 + self.encoded_len());
        self.to_frame_v2_into(request_id, &mut out);
        out
    }

    /// Appends the v2 frame to `out`; byte-identical to
    /// [`RitmRequest::to_frame_v2`].
    pub fn to_frame_v2_into(&self, request_id: u32, out: &mut Vec<u8>) {
        let body_len = 4 + self.encoded_len();
        let before = out.len();
        out.reserve(4 + body_len);
        let mut w = Writer::from_vec(std::mem::take(out));
        w.u32(body_len as u32);
        self.encode_body(&mut w, PROTOCOL_V2, request_id);
        *out = w.into_bytes();
        debug_assert_eq!(out.len() - before, 4 + body_len);
    }

    /// Decodes a request frame *body* (without the length prefix), applying
    /// version negotiation. Accepts both envelope versions; a v2 body's
    /// request id is skipped — use [`RequestEnvelope::decode`] to keep it.
    ///
    /// # Errors
    ///
    /// [`ProtoError::UnsupportedVersion`] when the version byte is outside
    /// `[MIN_SUPPORTED_VERSION, MAX_SUPPORTED_VERSION]`;
    /// [`ProtoError::Malformed`] on any decode failure (never panics).
    pub fn decode_body(body: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(body);
        let version = r.u8("request version").map_err(|e| ProtoError::Malformed {
            offset: e.offset as u32,
        })?;
        if !(MIN_SUPPORTED_VERSION..=MAX_SUPPORTED_VERSION).contains(&version) {
            return Err(ProtoError::UnsupportedVersion {
                requested: version,
                supported: MAX_SUPPORTED_VERSION,
            });
        }
        if version >= PROTOCOL_V2 {
            r.u32("request id").map_err(|e| ProtoError::Malformed {
                offset: e.offset as u32,
            })?;
        }
        Self::decode_fields(&mut r).map_err(|e| ProtoError::Malformed {
            offset: e.offset as u32,
        })
    }

    fn decode_fields(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let pos = r.position();
        let req = match r.u8("request kind")? {
            REQ_FETCH_DELTA => RitmRequest::FetchDelta { ca: decode_ca(r)? },
            REQ_FETCH_FRESHNESS => RitmRequest::FetchFreshness { ca: decode_ca(r)? },
            REQ_CATCH_UP => RitmRequest::CatchUp {
                ca: decode_ca(r)?,
                have: r.u64("catch-up have")?,
            },
            REQ_GET_STATUS => RitmRequest::GetStatus {
                ca: decode_ca(r)?,
                serial: decode_serial(r)?,
            },
            REQ_GET_MULTI_STATUS => {
                let len_pos = r.position();
                let n = r.u8("chain length")? as usize;
                if n > MAX_CHAIN_LEN {
                    // An uncompressed response for a longer chain could not
                    // be encoded (payload counts cap below the 0xFF section
                    // marker): refuse at the request boundary.
                    return Err(DecodeError::new(
                        "chain length exceeds MAX_CHAIN_LEN",
                        len_pos,
                    ));
                }
                // Each entry needs ≥ 8 (CA) + 1 (len) + 1 (serial) bytes.
                r.check_count(n, 10, "chain length exceeds buffer")?;
                let mut chain = Vec::with_capacity(n);
                for _ in 0..n {
                    chain.push((decode_ca(r)?, decode_serial(r)?));
                }
                let compress = r.u8("compress flag")? != 0;
                RitmRequest::GetMultiStatus { chain, compress }
            }
            REQ_GET_SIGNED_ROOT => RitmRequest::GetSignedRoot { ca: decode_ca(r)? },
            REQ_GET_MANIFEST => RitmRequest::GetManifest { ca: decode_ca(r)? },
            REQ_CATCH_UP_PAGED => RitmRequest::CatchUpPaged {
                ca: decode_ca(r)?,
                have: r.u64("catch-up have")?,
                limit: r.u32("catch-up page limit")?,
            },
            REQ_GOSSIP_ROOTS => RitmRequest::GossipRoots {
                roots: decode_gossip_roots(r)?,
            },
            _ => return Err(DecodeError::new("unknown request kind", pos)),
        };
        r.finish("request trailing bytes")?;
        Ok(req)
    }
}

/// Best-effort peek at a request body's envelope header, for *tagging
/// replies* — including error replies to bodies that do not decode.
/// Returns the version the reply should be encoded in and the request id
/// to echo (0 when the body carries none or is too short to tell). An
/// unsupported future version maps to a v1 reply, exactly what a peer
/// probing upward can always parse.
pub fn peek_request_envelope(body: &[u8]) -> (u8, u32) {
    match body.first() {
        Some(&PROTOCOL_V2) if body.len() >= 5 => (
            PROTOCOL_V2,
            u32::from_be_bytes(body[1..5].try_into().expect("4 bytes")),
        ),
        _ => (PROTOCOL_VERSION, 0),
    }
}

/// One decoded request envelope: the version to answer in, the request id
/// to echo, and the decode outcome (a typed error, never a panic). This is
/// what an out-of-order server spawns a handler task around — the reply
/// tag survives even when the body is garbage.
#[derive(Debug)]
pub struct RequestEnvelope {
    /// Version the reply must be encoded in (the request's own version,
    /// or v1 when the request's version is unsupported).
    pub reply_version: u8,
    /// Request id to echo (0 for v1 bodies).
    pub request_id: u32,
    /// The decoded request, or the typed error to answer with.
    pub request: Result<RitmRequest, ProtoError>,
}

impl RequestEnvelope {
    /// Decodes a request frame *body* (without the length prefix),
    /// keeping the reply tag. Never fails: an undecodable body yields an
    /// envelope whose `request` is the typed error to send back.
    pub fn decode(body: &[u8]) -> Self {
        let (reply_version, request_id) = peek_request_envelope(body);
        RequestEnvelope {
            reply_version,
            request_id,
            request: RitmRequest::decode_body(body),
        }
    }
}

impl RitmResponse {
    /// Short name of the response kind (for logs and metrics).
    pub fn kind_name(&self) -> &'static str {
        match self {
            RitmResponse::Delta(_) => "delta",
            RitmResponse::Freshness(_) => "freshness",
            RitmResponse::Status(_) => "status",
            RitmResponse::SignedRoot(_) => "signed_root",
            RitmResponse::Manifest(_) => "manifest",
            RitmResponse::DeltaPage { .. } => "delta_page",
            RitmResponse::GossipAck { .. } => "gossip_ack",
            RitmResponse::Error(_) => "error",
        }
    }

    /// Exact encoded body length (version + kind + fields), computed
    /// without serializing. Embedded payloads carry a `u32` length so a
    /// full catch-up bundle (tens of MB) encodes without any 24-bit cap —
    /// [`MAX_FRAME_LEN`] is the only size bound, enforced as a typed error
    /// at the framing layer, never as a panic.
    pub fn encoded_len(&self) -> usize {
        2 + match self {
            RitmResponse::Delta(iss) => 4 + iss.encoded_len(),
            RitmResponse::Freshness(RefreshMessage::Freshness(_)) => 1 + 20,
            RitmResponse::Freshness(RefreshMessage::NewRoot(_)) => {
                1 + ritm_dictionary::root::SIGNED_ROOT_LEN
            }
            RitmResponse::Status(p) => 4 + p.encoded_len(),
            RitmResponse::SignedRoot(_) => ritm_dictionary::root::SIGNED_ROOT_LEN,
            RitmResponse::Manifest(m) => 4 + m.len(),
            RitmResponse::DeltaPage { issuance, .. } => 4 + issuance.encoded_len() + 8,
            RitmResponse::GossipAck { roots } => 2 + roots.len() * GOSSIP_ENTRY_LEN,
            RitmResponse::Error(e) => e.encoded_len(),
        }
    }

    fn encode_body(&self, w: &mut Writer, version: u8, request_id: u32) {
        w.u8(version);
        if version >= PROTOCOL_V2 {
            w.u32(request_id);
        }
        self.encode_fields(w);
    }

    /// The version-independent tail of the body: `kind ‖ fields`.
    fn encode_fields(&self, w: &mut Writer) {
        match self {
            RitmResponse::Delta(iss) => {
                w.u8(RESP_DELTA);
                w.u32(iss.encoded_len() as u32);
                iss.encode_into(w);
            }
            RitmResponse::Freshness(RefreshMessage::Freshness(f)) => {
                w.u8(RESP_FRESHNESS);
                w.u8(REFRESH_TAG_FRESHNESS);
                w.bytes(&f.to_bytes());
            }
            RitmResponse::Freshness(RefreshMessage::NewRoot(sr)) => {
                w.u8(RESP_FRESHNESS);
                w.u8(REFRESH_TAG_NEW_ROOT);
                w.bytes(&sr.to_bytes());
            }
            RitmResponse::Status(p) => {
                w.u8(RESP_STATUS);
                w.u32(p.encoded_len() as u32);
                p.encode_into(w);
            }
            RitmResponse::SignedRoot(sr) => {
                w.u8(RESP_SIGNED_ROOT);
                w.bytes(&sr.to_bytes());
            }
            RitmResponse::Manifest(m) => {
                w.u8(RESP_MANIFEST);
                w.u32(m.len() as u32);
                w.bytes(m);
            }
            RitmResponse::DeltaPage {
                issuance,
                remaining,
            } => {
                w.u8(RESP_DELTA_PAGE);
                w.u32(issuance.encoded_len() as u32);
                issuance.encode_into(w);
                w.u64(*remaining);
            }
            RitmResponse::GossipAck { roots } => {
                w.u8(RESP_GOSSIP_ACK);
                encode_gossip_roots(w, roots);
            }
            RitmResponse::Error(e) => {
                w.u8(RESP_ERROR);
                e.encode(w);
            }
        }
    }

    /// Encodes the baseline v1 frame (`u32` length prefix + versioned
    /// body), pre-sized to [`RitmResponse::encoded_len`] plus the prefix.
    /// Byte-identical to every pre-v2 release.
    pub fn to_frame(&self) -> Vec<u8> {
        self.to_frame_for(PROTOCOL_VERSION, 0)
    }

    /// Encodes the frame in the given envelope `version` — the reply tag a
    /// server got from [`RequestEnvelope`] — echoing `request_id` when the
    /// version carries one.
    pub fn to_frame_for(&self, version: u8, request_id: u32) -> Vec<u8> {
        let body_len = self.encoded_len() + if version >= PROTOCOL_V2 { 4 } else { 0 };
        let mut out = Vec::with_capacity(4 + body_len);
        self.to_frame_for_into(version, request_id, &mut out);
        out
    }

    /// Appends the frame in the given envelope `version` to `out`;
    /// byte-identical to [`RitmResponse::to_frame_for`].
    pub fn to_frame_for_into(&self, version: u8, request_id: u32, out: &mut Vec<u8>) {
        let body_len = self.encoded_len() + if version >= PROTOCOL_V2 { 4 } else { 0 };
        let before = out.len();
        out.reserve(4 + body_len);
        let mut w = Writer::from_vec(std::mem::take(out));
        w.u32(body_len as u32);
        self.encode_body(&mut w, version, request_id);
        *out = w.into_bytes();
        debug_assert_eq!(out.len() - before, 4 + body_len);
    }

    /// Encodes the version-independent portion of the body — `kind ‖
    /// fields`, everything after the version byte and optional request id
    /// — as shared bytes. This is the part of a reply that is identical
    /// for every connection and both envelope versions, so one encoding
    /// can be cached and served to all of them; [`crate::Frame::shared`]
    /// stamps the per-connection header (length, version, id) in front
    /// without copying the body.
    pub fn to_shared_body(&self) -> std::sync::Arc<[u8]> {
        // encoded_len counts version + kind + fields; the shared portion
        // drops the 1-byte version.
        let mut w = Writer::with_capacity(self.encoded_len() - 1);
        self.encode_fields(&mut w);
        std::sync::Arc::from(w.into_bytes())
    }

    /// Decodes a response frame *body* (without the length prefix).
    /// Accepts both envelope versions; a v2 body's echoed request id is
    /// skipped — use [`RitmResponse::decode_envelope`] to correlate.
    ///
    /// # Errors
    ///
    /// [`TransportError::VersionMismatch`] when the server answered in a
    /// version this client cannot parse; [`TransportError::BadResponse`] on
    /// any decode failure (never panics).
    pub fn decode_body(body: &[u8]) -> Result<Self, TransportError> {
        Self::decode_envelope(body).map(|(_, _, resp)| resp)
    }

    /// Decodes a response frame *body*, returning the envelope version,
    /// the echoed request id (0 for v1), and the response — what a
    /// multiplexed client needs to route replies arriving out of order.
    ///
    /// # Errors
    ///
    /// Same contract as [`RitmResponse::decode_body`].
    pub fn decode_envelope(body: &[u8]) -> Result<(u8, u32, Self), TransportError> {
        let mut r = Reader::new(body);
        let version = r.u8("response version")?;
        if !(MIN_SUPPORTED_VERSION..=MAX_SUPPORTED_VERSION).contains(&version) {
            return Err(TransportError::VersionMismatch { got: version });
        }
        let request_id = if version >= PROTOCOL_V2 {
            r.u32("echoed request id")?
        } else {
            0
        };
        Ok((version, request_id, Self::decode_fields(&mut r)?))
    }

    fn decode_fields(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let pos = r.position();
        let resp = match r.u8("response kind")? {
            RESP_DELTA => {
                let raw = read_embedded(r, "issuance bytes")?;
                RitmResponse::Delta(RevocationIssuance::from_bytes(raw)?)
            }
            RESP_FRESHNESS => {
                let tag_pos = r.position();
                match r.u8("refresh tag")? {
                    REFRESH_TAG_FRESHNESS => RitmResponse::Freshness(RefreshMessage::Freshness(
                        FreshnessStatement::decode(r)?,
                    )),
                    REFRESH_TAG_NEW_ROOT => {
                        RitmResponse::Freshness(RefreshMessage::NewRoot(SignedRoot::decode(r)?))
                    }
                    _ => return Err(DecodeError::new("unknown refresh tag", tag_pos)),
                }
            }
            RESP_STATUS => {
                let raw = read_embedded(r, "status payload bytes")?;
                RitmResponse::Status(StatusPayload::from_bytes(raw)?)
            }
            RESP_SIGNED_ROOT => RitmResponse::SignedRoot(SignedRoot::decode(r)?),
            RESP_MANIFEST => RitmResponse::Manifest(read_embedded(r, "manifest bytes")?.to_vec()),
            RESP_DELTA_PAGE => {
                let raw = read_embedded(r, "page issuance bytes")?;
                RitmResponse::DeltaPage {
                    issuance: RevocationIssuance::from_bytes(raw)?,
                    remaining: r.u64("page remaining")?,
                }
            }
            RESP_GOSSIP_ACK => RitmResponse::GossipAck {
                roots: decode_gossip_roots(r)?,
            },
            RESP_ERROR => RitmResponse::Error(ProtoError::decode(r)?),
            _ => return Err(DecodeError::new("unknown response kind", pos)),
        };
        r.finish("response trailing bytes")?;
        Ok(resp)
    }
}

/// Reads a `u32`-length-prefixed embedded payload. The length is bounded
/// by the bytes actually present (the frame layer already capped the body
/// at [`MAX_FRAME_LEN`]), so a forged length cannot oversize anything.
fn read_embedded<'a>(r: &mut Reader<'a>, context: &'static str) -> Result<&'a [u8], DecodeError> {
    let len = r.u32(context)? as usize;
    r.slice(len, context)
}

/// Splits one frame off the front of `bytes`, returning `(body, rest)`.
/// Rejects bodies longer than [`MAX_FRAME_LEN`] *before* any allocation.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation or an oversized length prefix.
pub fn split_frame(bytes: &[u8]) -> Result<(&[u8], &[u8]), DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::new("frame length prefix truncated", 0));
    }
    let len = u32::from_be_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(DecodeError::new("frame exceeds MAX_FRAME_LEN", 0));
    }
    if bytes.len() < 4 + len {
        return Err(DecodeError::new("frame body truncated", 4));
    }
    Ok((&bytes[4..4 + len], &bytes[4 + len..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frame_is_exactly_presized() {
        let req = RitmRequest::GetStatus {
            ca: CaId::from_name("FrameCA"),
            serial: SerialNumber::from_u24(77),
        };
        let frame = req.to_frame();
        assert_eq!(frame.len(), 4 + req.encoded_len());
        assert_eq!(frame.capacity(), frame.len(), "pre-sized, no realloc");
        let (body, rest) = split_frame(&frame).unwrap();
        assert!(rest.is_empty());
        assert_eq!(RitmRequest::decode_body(body).unwrap(), req);
    }

    #[test]
    fn future_version_is_negotiated_not_panicked() {
        let req = RitmRequest::FetchDelta {
            ca: CaId::from_name("VerCA"),
        };
        let mut frame = req.to_frame();
        frame[4] = 9; // version byte sits right after the length prefix
        let (body, _) = split_frame(&frame).unwrap();
        assert_eq!(
            RitmRequest::decode_body(body),
            Err(ProtoError::UnsupportedVersion {
                requested: 9,
                supported: MAX_SUPPORTED_VERSION,
            })
        );
        // The reply tag for an unsupported version falls back to v1/id 0 —
        // the one envelope any probing peer can parse.
        assert_eq!(peek_request_envelope(body), (PROTOCOL_VERSION, 0));
    }

    #[test]
    fn v2_frames_carry_and_echo_the_request_id() {
        let req = RitmRequest::GetStatus {
            ca: CaId::from_name("IdCA"),
            serial: SerialNumber::from_u24(3),
        };
        let frame = req.to_frame_v2(0xDEAD_BEEF);
        assert_eq!(frame.len(), 4 + 4 + req.encoded_len(), "v2 adds 4 bytes");
        let (body, _) = split_frame(&frame).unwrap();
        assert_eq!(peek_request_envelope(body), (PROTOCOL_V2, 0xDEAD_BEEF));
        let env = RequestEnvelope::decode(body);
        assert_eq!(env.reply_version, PROTOCOL_V2);
        assert_eq!(env.request_id, 0xDEAD_BEEF);
        assert_eq!(env.request, Ok(req));

        let resp = RitmResponse::Error(ProtoError::NotFound);
        let reply = resp.to_frame_for(PROTOCOL_V2, 0xDEAD_BEEF);
        let (rbody, _) = split_frame(&reply).unwrap();
        assert_eq!(
            RitmResponse::decode_envelope(rbody).unwrap(),
            (PROTOCOL_V2, 0xDEAD_BEEF, resp.clone())
        );
        // The id-skipping decoder still accepts the same bytes.
        assert_eq!(RitmResponse::decode_body(rbody).unwrap(), resp);
        // And the v1 framing of the same response is byte-identical to the
        // id-less encoder — negotiation down costs nothing.
        assert_eq!(resp.to_frame_for(PROTOCOL_VERSION, 77), resp.to_frame());
    }

    #[test]
    fn truncated_v2_header_is_malformed_with_a_v1_reply_tag() {
        // Version byte says v2 but the id is cut short: decodable only as
        // an error, and the reply tag must fall back to v1/id 0 (there is
        // no id to echo).
        let body = [PROTOCOL_V2, 0x01, 0x02];
        assert_eq!(peek_request_envelope(&body), (PROTOCOL_VERSION, 0));
        let env = RequestEnvelope::decode(&body);
        assert_eq!(env.reply_version, PROTOCOL_VERSION);
        assert!(matches!(env.request, Err(ProtoError::Malformed { .. })));
    }

    fn gossip_roots(n: u32) -> Vec<(CaId, SignedRoot)> {
        let key = ritm_crypto::ed25519::SigningKey::from_seed([7u8; 32]);
        (0..n)
            .map(|i| {
                let ca = CaId::from_name(&format!("GossipCA{i}"));
                let digest = ritm_crypto::digest::Digest20::hash(i.to_be_bytes());
                let anchor = ritm_crypto::digest::Digest20::hash([i as u8, 0xAA]);
                (
                    ca,
                    SignedRoot::create(
                        &key,
                        ca,
                        digest,
                        u64::from(i),
                        anchor,
                        1_000 + u64::from(i),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn gossip_frames_round_trip_exactly_presized() {
        let req = RitmRequest::GossipRoots {
            roots: gossip_roots(5),
        };
        let frame = req.to_frame();
        assert_eq!(frame.len(), 4 + req.encoded_len());
        assert_eq!(frame.capacity(), frame.len(), "pre-sized, no realloc");
        let (body, rest) = split_frame(&frame).unwrap();
        assert!(rest.is_empty());
        assert_eq!(RitmRequest::decode_body(body).unwrap(), req);

        let resp = RitmResponse::GossipAck {
            roots: gossip_roots(3),
        };
        let frame = resp.to_frame();
        assert_eq!(frame.len(), 4 + resp.encoded_len());
        let (body, _) = split_frame(&frame).unwrap();
        assert_eq!(RitmResponse::decode_body(body).unwrap(), resp);

        // Empty vectors are legal in both directions (a node mirroring
        // nothing yet can still join the gossip mesh).
        let empty = RitmRequest::GossipRoots { roots: Vec::new() };
        let frame = empty.to_frame();
        let (body, _) = split_frame(&frame).unwrap();
        assert_eq!(RitmRequest::decode_body(body).unwrap(), empty);
    }

    #[test]
    fn forged_gossip_count_is_malformed_not_an_allocation() {
        // A count claiming more entries than the buffer could possibly
        // hold must die in check_count before any Vec::with_capacity.
        let mut w = Writer::new();
        w.u8(PROTOCOL_VERSION);
        w.u8(0x09); // GossipRoots
        w.u16(4000); // claims 4000 entries, carries none
        let err = RitmRequest::decode_body(w.as_bytes()).unwrap_err();
        assert!(matches!(err, ProtoError::Malformed { .. }));

        // Past the absolute cap: rejected even if the bytes were there.
        let mut w = Writer::new();
        w.u8(PROTOCOL_VERSION);
        w.u8(0x09);
        w.u16(MAX_GOSSIP_ROOTS as u16 + 1);
        let err = RitmRequest::decode_body(w.as_bytes()).unwrap_err();
        assert!(matches!(err, ProtoError::Malformed { .. }));

        // Trailing bytes after a well-formed vector are rejected too.
        let req = RitmRequest::GossipRoots {
            roots: gossip_roots(1),
        };
        let mut frame = req.to_frame();
        frame.push(0);
        let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) + 1;
        frame[..4].copy_from_slice(&len.to_be_bytes());
        let (body, _) = split_frame(&frame).unwrap();
        assert!(RitmRequest::decode_body(body).is_err());
    }

    #[test]
    fn chain_past_max_len_is_malformed_not_a_panic() {
        // 255 structurally-valid entries: accepted lengths stop at 254 so
        // even an uncompressed response stays encodable.
        let mut w = Writer::new();
        w.u8(PROTOCOL_VERSION);
        w.u8(0x05); // GetMultiStatus
        w.u8(255);
        for i in 0..255u32 {
            w.bytes(&CaId::from_name("ChainCA").0);
            w.vec8(SerialNumber::from_u24(i).as_bytes());
        }
        w.u8(0); // compress = false
        let err = RitmRequest::decode_body(w.as_bytes()).unwrap_err();
        assert!(matches!(err, ProtoError::Malformed { .. }));

        // The boundary itself is fine.
        let chain: Vec<(CaId, SerialNumber)> = (0..super::MAX_CHAIN_LEN as u32)
            .map(|i| (CaId::from_name("ChainCA"), SerialNumber::from_u24(i)))
            .collect();
        let req = RitmRequest::GetMultiStatus {
            chain,
            compress: false,
        };
        let frame = req.to_frame();
        let (body, _) = split_frame(&frame).unwrap();
        assert_eq!(RitmRequest::decode_body(body).unwrap(), req);
    }

    #[test]
    fn forged_chain_count_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u8(PROTOCOL_VERSION);
        w.u8(0x05); // GetMultiStatus
        w.u8(250); // claims 250 entries, but nothing follows
        let err = RitmRequest::decode_body(w.as_bytes()).unwrap_err();
        assert!(matches!(err, ProtoError::Malformed { .. }));
    }

    #[test]
    fn paged_catch_up_roundtrips_and_unpaged_frame_is_unchanged() {
        let req = RitmRequest::CatchUpPaged {
            ca: CaId::from_name("PageCA"),
            have: 123_456,
            limit: 65_536,
        };
        let frame = req.to_frame();
        assert_eq!(frame.len(), 4 + req.encoded_len());
        let (body, _) = split_frame(&frame).unwrap();
        assert_eq!(RitmRequest::decode_body(body).unwrap(), req);

        // The unpaged request an old server answers must remain
        // byte-identical: version ‖ kind=0x03 ‖ ca ‖ have.
        let unpaged = RitmRequest::CatchUp {
            ca: CaId::from_name("PageCA"),
            have: 123_456,
        };
        let uframe = unpaged.to_frame();
        let (ubody, _) = split_frame(&uframe).unwrap();
        assert_eq!(ubody[1], 0x03);
        assert_eq!(ubody.len(), 18);
    }

    #[test]
    fn into_encoders_append_byte_identically() {
        let req = RitmRequest::GetMultiStatus {
            chain: vec![
                (CaId::from_name("IntoCA"), SerialNumber::from_u24(1)),
                (CaId::from_name("IntoCA"), SerialNumber::from_u24(2)),
            ],
            compress: true,
        };
        // Appending after existing scratch contents leaves them intact and
        // produces the exact to_frame bytes after them.
        let mut scratch = b"prefix".to_vec();
        req.to_frame_into(&mut scratch);
        req.to_frame_v2_into(42, &mut scratch);
        let mut expected = b"prefix".to_vec();
        expected.extend_from_slice(&req.to_frame());
        expected.extend_from_slice(&req.to_frame_v2(42));
        assert_eq!(scratch, expected);

        let resp = RitmResponse::SignedRoot(gossip_roots(1)[0].1);
        let mut scratch = Vec::new();
        resp.to_frame_for_into(PROTOCOL_VERSION, 0, &mut scratch);
        resp.to_frame_for_into(PROTOCOL_V2, 7, &mut scratch);
        let mut expected = resp.to_frame();
        expected.extend_from_slice(&resp.to_frame_for(PROTOCOL_V2, 7));
        assert_eq!(scratch, expected);
    }

    #[test]
    fn shared_body_is_the_version_independent_frame_tail() {
        let resp = RitmResponse::Error(ProtoError::NotFound);
        let body = resp.to_shared_body();
        assert_eq!(body.len(), resp.encoded_len() - 1);
        // v1 frame = len ‖ version ‖ shared body.
        let v1 = resp.to_frame();
        assert_eq!(&v1[5..], &body[..]);
        // v2 frame = len ‖ version ‖ id ‖ shared body.
        let v2 = resp.to_frame_for(PROTOCOL_V2, 0xAB);
        assert_eq!(&v2[9..], &body[..]);
    }

    #[test]
    fn oversized_frame_prefix_rejected() {
        let mut bytes = vec![0xFF; 8];
        bytes[0..4].copy_from_slice(&(u32::MAX).to_be_bytes());
        assert!(split_frame(&bytes).is_err());
    }
}
