//! # ritm-proto — the versioned RITM wire protocol
//!
//! The paper's deployment story (§III Dissemination, §VI) is a distributed
//! protocol: RAs pull dictionary deltas and freshness statements from CDN
//! edges, clients receive revocation statuses, and every endpoint speaks a
//! small request/response vocabulary. This crate is that vocabulary as a
//! real wire API:
//!
//! * [`RitmRequest`] / [`RitmResponse`] — versioned, length-delimited
//!   envelopes (v1: `u32 length ‖ version ‖ kind ‖ fields`; v2 adds a
//!   per-frame `request_id` echoed on the response, enabling out-of-order
//!   completion) with a typed [`ProtoError`] taxonomy and explicit version
//!   negotiation. Decoding is `check_count`-hardened: forged counts and
//!   truncated frames yield errors, never panics or oversized allocations.
//! * [`Service`] — the transport-agnostic endpoint trait
//!   (`fn handle(&self, RitmRequest) -> RitmResponse` from `&self`),
//!   implemented by the CDN edge (`ritm-cdn`), the RA read path
//!   (`ritm-agent`, over its lock-free `StatusServer`), and the CA
//!   manifest endpoint (`ritm-ca`).
//! * [`Transport`] — the client half, with four interchangeable
//!   implementations: in-process [`Loopback`], the [`sim::SimTransport`]
//!   adapter carrying frames in `ritm-net` `TcpSegment` payloads, the
//!   blocking [`tcp::TcpTransport`] / [`tcp::TcpServer`] pair over real
//!   `std::net` sockets with a bounded acceptor pool, and the non-blocking
//!   [`event::EventTransport`] / [`event::EventServer`] pair that
//!   multiplexes every connection onto a ≤2-thread `ritm-rt` runtime
//!   (shareable across several servers), keeps request batches in flight
//!   at once ([`Transport::round_trip_many`]), and — on envelope v2 —
//!   completes them out of order, correlated by request id.
//!
//! Byte accounting is exact and transport-invariant: a round trip reports
//! the encoded frame sizes ([`TransportMeta`]), so the Fig. 7 download
//! volumes measure actual protocol bytes whichever transport carried them.

pub mod error;
pub mod event;
pub mod fault;
pub mod frame;
pub mod message;
pub mod payload;
pub mod service;
pub mod sim;
pub mod tcp;
pub mod transport;

pub use error::{ProtoError, TransportError};
pub use event::{EventServer, EventServerConfig, EventTransport};
pub use fault::{FaultPlan, FaultStats, FaultTransport};
pub use frame::{Body, Frame, FRAME_HEADER_MAX};
pub use message::{
    peek_request_envelope, split_frame, RequestEnvelope, RitmRequest, RitmResponse, MAX_CHAIN_LEN,
    MAX_FRAME_LEN, MAX_GOSSIP_ROOTS, MAX_PAGE_LIMIT, MAX_SUPPORTED_VERSION, MIN_SUPPORTED_VERSION,
    PROTOCOL_V2, PROTOCOL_VERSION,
};
pub use payload::StatusPayload;
pub use service::Service;
pub use transport::{Loopback, RoundTrip, Transport, TransportMeta};
