//! Deterministic fault injection over any [`Transport`].
//!
//! [`FaultTransport`] wraps a real transport and, on a seeded schedule,
//! drops requests, drops responses, duplicates deliveries, inflates
//! latency, or truncates response frames — the client-observable failure
//! modes of a lossy network. Every decision comes from a private
//! [`StdRng`] stream, so a failing run replays bit-identically from its
//! seed; the wrapped transport is only ever driven through its public
//! interface, so the same wrapper exercises loopback, simulated, TCP, and
//! event-driven transports alike.
//!
//! The semantics are honest to where each fault strikes: a dropped
//! *request* never reaches the service, a dropped *response* was fully
//! served (state changed server-side!) but the client never hears, a
//! duplicate delivers the same request twice, and a truncation yields the
//! undecodable-response error a cut-off frame produces.

use crate::error::TransportError;
use crate::message::RitmRequest;
use crate::transport::{RoundTrip, Transport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ritm_crypto::wire::DecodeError;
use ritm_net::time::SimDuration;

/// Per-round-trip fault probabilities. Sampled in declaration order from
/// one uniform draw, so the probabilities must sum to at most 1; the
/// remainder is a clean pass-through.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Probability the request vanishes before reaching the service.
    pub drop_request: f64,
    /// Probability the service handles the request but the response
    /// vanishes.
    pub drop_response: f64,
    /// Probability the request is delivered twice (the second response is
    /// returned).
    pub duplicate: f64,
    /// Probability the round trip is delayed by [`FaultPlan::delay_by`].
    pub delay: f64,
    /// Added latency for delayed round trips.
    pub delay_by: SimDuration,
    /// Probability the response frame arrives truncated (undecodable).
    pub truncate: f64,
}

impl FaultPlan {
    /// No faults at all (pass-through wrapper).
    pub fn none() -> Self {
        FaultPlan {
            drop_request: 0.0,
            drop_response: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            delay_by: SimDuration::ZERO,
            truncate: 0.0,
        }
    }

    /// A lossy-but-livable mix: `p` spread evenly across request drops,
    /// response drops, duplicates, and truncations. With bounded retry on
    /// top, syncs converge for any `p < 1`.
    pub fn lossy(p: f64) -> Self {
        FaultPlan {
            drop_request: p / 4.0,
            drop_response: p / 4.0,
            duplicate: p / 4.0,
            delay: 0.0,
            delay_by: SimDuration::ZERO,
            truncate: p / 4.0,
        }
    }
}

/// Counters for what the wrapper actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests that never reached the service.
    pub dropped_requests: u64,
    /// Served requests whose response was discarded.
    pub dropped_responses: u64,
    /// Requests delivered twice.
    pub duplicated: u64,
    /// Round trips with injected latency.
    pub delayed: u64,
    /// Responses truncated into undecodability.
    pub truncated: u64,
    /// Untouched round trips.
    pub clean: u64,
}

impl FaultStats {
    /// Total round trips that suffered any injected fault.
    pub fn injected(&self) -> u64 {
        self.dropped_requests
            + self.dropped_responses
            + self.duplicated
            + self.delayed
            + self.truncated
    }
}

/// A [`Transport`] wrapper injecting faults on a deterministic seeded
/// schedule. See the module docs for semantics.
#[derive(Debug)]
pub struct FaultTransport<T> {
    inner: T,
    plan: FaultPlan,
    rng: StdRng,
    stats: FaultStats,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner`; every fault decision derives from `seed`.
    pub fn new(inner: T, plan: FaultPlan, seed: u64) -> Self {
        FaultTransport {
            inner,
            plan,
            rng: StdRng::seed_from_u64(seed),
            stats: FaultStats::default(),
        }
    }

    /// What was injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The wrapped transport (e.g. to reconnect it after a kill).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps back into the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn round_trip(&mut self, req: &RitmRequest) -> Result<RoundTrip, TransportError> {
        let draw: f64 = self.rng.gen();
        let p = &self.plan;
        if draw < p.drop_request {
            self.stats.dropped_requests += 1;
            return Err(TransportError::NoResponse);
        }
        if draw < p.drop_request + p.drop_response {
            self.stats.dropped_responses += 1;
            // The service *did* serve this — only the reply is lost.
            let _ = self.inner.round_trip(req)?;
            return Err(TransportError::NoResponse);
        }
        if draw < p.drop_request + p.drop_response + p.duplicate {
            self.stats.duplicated += 1;
            let _ = self.inner.round_trip(req)?;
            return self.inner.round_trip(req);
        }
        if draw < p.drop_request + p.drop_response + p.duplicate + p.delay {
            self.stats.delayed += 1;
            let mut rt = self.inner.round_trip(req)?;
            rt.meta.latency = rt.meta.latency + p.delay_by;
            return Ok(rt);
        }
        if draw < p.drop_request + p.drop_response + p.duplicate + p.delay + p.truncate {
            self.stats.truncated += 1;
            let _ = self.inner.round_trip(req)?;
            return Err(TransportError::BadResponse(DecodeError::new(
                "injected response truncation",
                0,
            )));
        }
        self.stats.clean += 1;
        self.inner.round_trip(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::RitmResponse;
    use crate::service::Service;
    use crate::transport::Loopback;
    use crate::ProtoError;
    use ritm_dictionary::CaId;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Counts how many requests actually reach it.
    #[derive(Default)]
    struct Counting {
        served: AtomicU64,
    }

    impl Service for &Counting {
        fn handle(&self, _req: RitmRequest) -> RitmResponse {
            self.served.fetch_add(1, Ordering::SeqCst);
            RitmResponse::Error(ProtoError::NotFound)
        }
    }

    fn req() -> RitmRequest {
        RitmRequest::GetSignedRoot {
            ca: CaId::from_name("FaultCA"),
        }
    }

    #[test]
    fn same_seed_replays_identically() {
        let svc = Counting::default();
        let run = |seed: u64| {
            let mut t = FaultTransport::new(Loopback::new(&svc), FaultPlan::lossy(0.5), seed);
            let outcomes: Vec<bool> = (0..200).map(|_| t.round_trip(&req()).is_ok()).collect();
            (outcomes, t.stats())
        };
        let (a, sa) = run(42);
        let (b, sb) = run(42);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = run(43);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn dropped_requests_never_reach_the_service_but_dropped_responses_do() {
        let svc = Counting::default();
        let mut plan = FaultPlan::none();
        plan.drop_request = 1.0;
        let mut t = FaultTransport::new(Loopback::new(&svc), plan, 1);
        assert!(matches!(
            t.round_trip(&req()),
            Err(TransportError::NoResponse)
        ));
        assert_eq!(svc.served.load(Ordering::SeqCst), 0);

        let mut plan = FaultPlan::none();
        plan.drop_response = 1.0;
        let mut t = FaultTransport::new(Loopback::new(&svc), plan, 1);
        assert!(matches!(
            t.round_trip(&req()),
            Err(TransportError::NoResponse)
        ));
        assert_eq!(svc.served.load(Ordering::SeqCst), 1, "served, reply lost");
    }

    #[test]
    fn duplicates_hit_the_service_twice_and_truncation_is_undecodable() {
        let svc = Counting::default();
        let mut plan = FaultPlan::none();
        plan.duplicate = 1.0;
        let mut t = FaultTransport::new(Loopback::new(&svc), plan, 1);
        assert!(t.round_trip(&req()).is_ok());
        assert_eq!(svc.served.load(Ordering::SeqCst), 2);

        let mut plan = FaultPlan::none();
        plan.truncate = 1.0;
        let mut t = FaultTransport::new(Loopback::new(&svc), plan, 1);
        assert!(matches!(
            t.round_trip(&req()),
            Err(TransportError::BadResponse(_))
        ));
        assert_eq!(t.stats().truncated, 1);
    }

    #[test]
    fn delay_inflates_latency_and_none_is_transparent() {
        let svc = Counting::default();
        let mut plan = FaultPlan::none();
        plan.delay = 1.0;
        plan.delay_by = SimDuration::from_millis(250);
        let mut t = FaultTransport::new(Loopback::new(&svc), plan, 1);
        let rt = t.round_trip(&req()).unwrap();
        assert!(rt.meta.latency >= SimDuration::from_millis(250));

        let mut t = FaultTransport::new(Loopback::new(&svc), FaultPlan::none(), 1);
        for _ in 0..50 {
            assert!(t.round_trip(&req()).is_ok());
        }
        assert_eq!(t.stats().clean, 50);
        assert_eq!(t.stats().injected(), 0);
    }
}
