//! Response frames whose bodies may be shared rather than owned.
//!
//! The hot serving path answers thousands of identical `GetStatus`
//! requests per publish. Encoding each reply into its own `Vec<u8>` (the
//! [`Service::handle_frame`](crate::Service::handle_frame) contract)
//! costs an allocation and a full copy per request even when the bytes
//! are identical. A [`Frame`] separates the reply into:
//!
//! * a tiny per-connection **header** — `u32 len ‖ version ‖ [u32 id]`,
//!   at most 9 bytes, stored inline — which differs per request only in
//!   the envelope version and echoed request id, and
//! * the **body** tail (`kind ‖ fields`), which is identical for every
//!   requester and can therefore be one cached `Arc<[u8]>` shared across
//!   all connections and both envelope versions ([`Body::Shared`]).
//!
//! Lifetime rule for shared bodies: the `Arc` keeps the encoding alive
//! until the last writer drains it, so a cache may drop or replace its
//! entry at any time — connections mid-write are unaffected, and nobody
//! ever mutates the shared bytes (the per-connection differences live
//! entirely in the header). `ritm-rt`'s `FrameWriter::queue_shared`
//! writes header + body with one vectored syscall, no coalescing copy.

use crate::message::{PROTOCOL_V2, PROTOCOL_VERSION};
use ritm_rt::FrameWriter;
use std::sync::Arc;

/// Longest frame header: `u32 len ‖ version ‖ u32 request-id`.
pub const FRAME_HEADER_MAX: usize = 9;

/// The payload bytes of a [`Frame`]: owned when freshly encoded, shared
/// when served from the encoded-response cache.
#[derive(Debug, Clone)]
pub enum Body {
    /// A complete frame owned by this reply alone (header included — the
    /// ordinary `to_frame_for` encoding).
    Owned(Vec<u8>),
    /// The version-independent body tail (`kind ‖ fields`), shared with
    /// the cache and every other connection serving the same reply.
    Shared(Arc<[u8]>),
}

/// One encoded reply frame, cheap to hand around: either a plain owned
/// frame, or an inline header over a shared body.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Meaningful only for [`Body::Shared`]; empty for owned frames
    /// (their header is part of the owned bytes).
    header: [u8; FRAME_HEADER_MAX],
    header_len: u8,
    body: Body,
}

impl Frame {
    /// Wraps a fully encoded frame (length prefix included) — the path
    /// for replies that are built per-request anyway.
    pub fn from_bytes(frame: Vec<u8>) -> Self {
        Frame {
            header: [0; FRAME_HEADER_MAX],
            header_len: 0,
            body: Body::Owned(frame),
        }
    }

    /// Builds a frame over a cached shared body (`kind ‖ fields`, from
    /// [`RitmResponse::to_shared_body`]), stamping the per-connection
    /// header: length prefix, envelope `version`, and — for v2 — the
    /// echoed `request_id`. The body bytes are never copied.
    ///
    /// [`RitmResponse::to_shared_body`]: crate::RitmResponse::to_shared_body
    pub fn shared(version: u8, request_id: u32, body: Arc<[u8]>) -> Self {
        debug_assert!(version == PROTOCOL_VERSION || version == PROTOCOL_V2);
        let id_len = if version >= PROTOCOL_V2 { 4 } else { 0 };
        // Body length on the wire counts the version byte and optional id.
        let body_len = 1 + id_len + body.len();
        let mut header = [0u8; FRAME_HEADER_MAX];
        header[..4].copy_from_slice(&(body_len as u32).to_be_bytes());
        header[4] = version;
        if id_len == 4 {
            header[5..9].copy_from_slice(&request_id.to_be_bytes());
        }
        Frame {
            header,
            header_len: (5 + id_len) as u8,
            body: Body::Shared(body),
        }
    }

    /// The inline header (empty for owned frames).
    pub fn header(&self) -> &[u8] {
        &self.header[..self.header_len as usize]
    }

    /// The frame's body storage.
    pub fn body(&self) -> &Body {
        &self.body
    }

    /// Total wire length of the frame (header + body).
    pub fn len(&self) -> usize {
        self.header_len as usize
            + match &self.body {
                Body::Owned(v) => v.len(),
                Body::Shared(b) => b.len(),
            }
    }

    /// Whether the frame carries no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coalesces into one contiguous byte vector — byte-identical to what
    /// `to_frame_for` would have produced. For tests and the blocking
    /// transports; the event path writes the parts without joining them.
    pub fn to_vec(&self) -> Vec<u8> {
        match &self.body {
            Body::Owned(v) if self.header_len == 0 => v.clone(),
            body => {
                let mut out = Vec::with_capacity(self.len());
                out.extend_from_slice(self.header());
                match body {
                    Body::Owned(v) => out.extend_from_slice(v),
                    Body::Shared(b) => out.extend_from_slice(b),
                }
                out
            }
        }
    }

    /// Queues the frame onto `writer`: owned frames as one owned segment,
    /// shared frames as inline header + shared body (the body bytes go
    /// out by reference, never copied into the writer).
    pub fn queue_onto(self, writer: &mut FrameWriter) {
        match self.body {
            Body::Owned(mut v) => {
                if self.header_len > 0 {
                    // Owned body behind a stamped header (not produced
                    // today, but the type permits it): coalesce.
                    let mut whole = Vec::with_capacity(self.header_len as usize + v.len());
                    whole.extend_from_slice(&self.header[..self.header_len as usize]);
                    whole.append(&mut v);
                    writer.queue(whole);
                } else {
                    writer.queue(v);
                }
            }
            Body::Shared(b) => {
                writer.queue_shared(&self.header[..self.header_len as usize], b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ProtoError;
    use crate::message::RitmResponse;

    #[test]
    fn shared_frames_match_the_plain_encoders_for_both_versions() {
        let resp = RitmResponse::Error(ProtoError::NotFound);
        let body = resp.to_shared_body();
        let v1 = Frame::shared(PROTOCOL_VERSION, 0, Arc::clone(&body));
        assert_eq!(v1.to_vec(), resp.to_frame());
        assert_eq!(v1.len(), resp.to_frame().len());
        let v2 = Frame::shared(PROTOCOL_V2, 0xDEAD_BEEF, Arc::clone(&body));
        assert_eq!(v2.to_vec(), resp.to_frame_for(PROTOCOL_V2, 0xDEAD_BEEF));
        // One shared body, any number of stamped headers: +4 bytes for v2,
        // exactly the request id.
        assert_eq!(v2.len(), v1.len() + 4);
    }

    #[test]
    fn queue_onto_writes_shared_and_owned_frames_byte_identically() {
        let resp = RitmResponse::Error(ProtoError::NotFound);
        let shared = Frame::shared(PROTOCOL_V2, 7, resp.to_shared_body());
        let owned = Frame::from_bytes(resp.to_frame());
        let mut writer = FrameWriter::new();
        let expected_len = shared.len() + owned.len();
        shared.queue_onto(&mut writer);
        owned.queue_onto(&mut writer);
        assert_eq!(writer.buffered_bytes(), expected_len);
        let mut wire = Vec::new();
        loop {
            match writer.poll_write(&mut wire) {
                ritm_rt::FrameWrite::Done => break,
                ritm_rt::FrameWrite::WouldBlock => continue,
                ritm_rt::FrameWrite::Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let mut expected = resp.to_frame_for(PROTOCOL_V2, 7);
        expected.extend_from_slice(&resp.to_frame());
        assert_eq!(wire, expected);
    }
}
