//! The client half: a [`Transport`] carries one encoded request frame to a
//! service and brings the encoded response frame back.
//!
//! Three interchangeable implementations ship with this crate:
//!
//! * [`Loopback`] (here) — a direct in-process call, zero copies beyond the
//!   frames themselves. The reference for byte accounting: every other
//!   transport must move exactly these bytes.
//! * [`crate::sim::SimTransport`] — frames ride in `TcpSegment` payloads
//!   across a deterministic `ritm-net` simulation, so latency/middlebox
//!   experiments run unchanged over the real protocol.
//! * [`crate::tcp::TcpTransport`] — frames cross a real `std::net` socket
//!   to a [`crate::tcp::TcpServer`].

use crate::error::TransportError;
use crate::message::{split_frame, RitmRequest, RitmResponse};
use crate::service::Service;
use ritm_net::time::SimDuration;

/// Byte-accurate accounting for one round trip. `request_bytes` and
/// `response_bytes` count whole encoded frames (length prefix included) —
/// the Fig. 7 y-axis under the wire protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportMeta {
    /// Encoded request frame size.
    pub request_bytes: u64,
    /// Encoded response frame size.
    pub response_bytes: u64,
    /// Round-trip latency as the transport observed it (zero + service
    /// latency for loopback, simulated time for `SimTransport`, wall clock
    /// for real TCP).
    pub latency: SimDuration,
}

/// One completed round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTrip {
    /// The decoded response (which may be a typed
    /// [`crate::ProtoError`] from the server).
    pub response: RitmResponse,
    /// Byte/latency accounting.
    pub meta: TransportMeta,
}

/// Carries requests to one service endpoint.
pub trait Transport {
    /// Sends `req` and blocks until the response frame is back.
    ///
    /// # Errors
    ///
    /// [`TransportError`] when no decodable response arrived. Server-side
    /// failures are *not* errors at this level: they come back as
    /// `Ok` with [`RitmResponse::Error`].
    fn round_trip(&mut self, req: &RitmRequest) -> Result<RoundTrip, TransportError>;

    /// Sends a batch of independent requests and returns one result per
    /// request, in request order.
    ///
    /// The default runs them sequentially — correct everywhere, and
    /// byte-identical to the pipelined path. Transports that can keep
    /// multiple requests in flight (the event-driven
    /// [`crate::event::EventTransport`]) override this so a batch costs
    /// ~1 RTT instead of N; callers that batch (`RevocationAgent::
    /// sync_via`, `ritm_client::fetch_and_validate_many`) get the speedup
    /// wherever the transport offers it, with no behavioural difference
    /// elsewhere.
    fn round_trip_many(&mut self, reqs: &[RitmRequest]) -> Vec<Result<RoundTrip, TransportError>> {
        reqs.iter().map(|req| self.round_trip(req)).collect()
    }
}

/// The in-process transport: encodes the request, hands the frame straight
/// to the service, decodes the response. What a co-located RA↔CDN
/// deployment (or a unit test) uses.
#[derive(Debug)]
pub struct Loopback<S> {
    service: S,
}

impl<S: Service> Loopback<S> {
    /// Wraps a service (commonly a `&S` or `Arc<S>` handle).
    pub fn new(service: S) -> Self {
        Loopback { service }
    }

    /// The wrapped service.
    pub fn service(&self) -> &S {
        &self.service
    }
}

impl<S: Service> Transport for Loopback<S> {
    fn round_trip(&mut self, req: &RitmRequest) -> Result<RoundTrip, TransportError> {
        let frame = req.to_frame();
        let resp_frame = self.service.handle_frame(&frame);
        let (body, _) = split_frame(&resp_frame)?;
        let response = RitmResponse::decode_body(body)?;
        Ok(RoundTrip {
            response,
            meta: TransportMeta {
                request_bytes: frame.len() as u64,
                response_bytes: resp_frame.len() as u64,
                latency: self.service.take_latency(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtoError;
    use ritm_dictionary::CaId;

    struct Echoes;

    impl Service for Echoes {
        fn handle(&self, req: RitmRequest) -> RitmResponse {
            match req {
                RitmRequest::GetSignedRoot { ca } => RitmResponse::Error(ProtoError::UnknownCa(ca)),
                _ => RitmResponse::Error(ProtoError::Unsupported),
            }
        }

        fn take_latency(&self) -> SimDuration {
            SimDuration::from_millis(3)
        }
    }

    #[test]
    fn loopback_round_trip_accounts_exact_frame_bytes() {
        let ca = CaId::from_name("LoopCA");
        let req = RitmRequest::GetSignedRoot { ca };
        let mut t = Loopback::new(Echoes);
        let rt = t.round_trip(&req).unwrap();
        assert_eq!(rt.response, RitmResponse::Error(ProtoError::UnknownCa(ca)));
        assert_eq!(rt.meta.request_bytes as usize, req.to_frame().len());
        assert_eq!(
            rt.meta.response_bytes as usize,
            RitmResponse::Error(ProtoError::UnknownCa(ca))
                .to_frame()
                .len()
        );
        assert_eq!(rt.meta.latency, SimDuration::from_millis(3));
    }
}
