//! The RITM status payload — the body of one `RitmStatus` TLS record and of
//! the protocol's status responses.
//!
//! Moved here from `ritm-agent` (which re-exports it) when the wire protocol
//! grew its own crate: the payload is a wire format shared by the RA that
//! injects it, the protocol endpoints that serve it, and the client that
//! validates it.

use ritm_crypto::wire::{DecodeError, Reader, Writer};
use ritm_dictionary::{MultiRevocationStatus, RevocationStatus, SignedRoot};

/// Marker byte separating individual statuses from the compressed section
/// in an encoded [`StatusPayload`]. Individual-status counts are capped
/// below it, so legacy single-status payloads decode unchanged.
const MULTI_SECTION_MARKER: u8 = 0xFF;

/// The payload of one `RitmStatus` record: statuses for each certificate of
/// the chain, leaf first (one entry unless the RA proves the full chain).
/// Same-CA chain runs may instead be carried as compressed
/// [`MultiRevocationStatus`] entries in [`StatusPayload::multi`]; the
/// individual statuses cover the chain positions not covered by a
/// compressed entry, in chain order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatusPayload {
    /// Individual revocation statuses, aligned with the (uncompressed)
    /// certificate-chain positions.
    pub statuses: Vec<RevocationStatus>,
    /// Compressed same-CA chain segments (empty unless the RA compresses
    /// multi-certificate chains).
    pub multi: Vec<MultiRevocationStatus>,
}

impl StatusPayload {
    /// A payload of individual statuses only (the classic form).
    pub fn single(statuses: Vec<RevocationStatus>) -> Self {
        StatusPayload {
            statuses,
            multi: Vec::new(),
        }
    }

    /// Total certificates covered (individual + compressed).
    pub fn covered(&self) -> usize {
        self.statuses.len() + self.multi.iter().map(|m| m.serials.len()).sum::<usize>()
    }

    /// `true` when the payload proves nothing.
    pub fn is_empty(&self) -> bool {
        self.statuses.is_empty() && self.multi.is_empty()
    }

    /// The signed root of the payload's first entry — what the multi-RA
    /// freshness comparison (§VIII) keys on.
    pub fn primary_root(&self) -> Option<&SignedRoot> {
        self.statuses
            .first()
            .map(|s| &s.signed_root)
            .or_else(|| self.multi.first().map(|m| &m.signed_root))
    }

    /// Exact encoded size in bytes, computed without serializing.
    pub fn encoded_len(&self) -> usize {
        1 + self
            .statuses
            .iter()
            .map(|s| 3 + s.encoded_len())
            .sum::<usize>()
            + if self.multi.is_empty() {
                0
            } else {
                2 + self
                    .multi
                    .iter()
                    .map(|m| 3 + m.encoded_len())
                    .sum::<usize>()
            }
    }

    /// Encodes the payload (pre-sized; never reallocates). Payloads without
    /// compressed entries encode byte-identically to the legacy format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_len());
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Appends the encoding to an existing writer (protocol envelopes
    /// embed payloads without an intermediate buffer).
    ///
    /// # Panics
    ///
    /// Panics when the payload holds ≥255 individual or >255 compressed
    /// entries (chains are single digits in practice).
    pub fn encode_into(&self, w: &mut Writer) {
        // Hard asserts (not debug): a silent `as u8` truncation would emit
        // an undecodable payload; chains are single digits in practice.
        assert!(
            self.statuses.len() < MULTI_SECTION_MARKER as usize,
            "status count overflow"
        );
        w.u8(self.statuses.len() as u8);
        for s in &self.statuses {
            w.vec24(&s.to_bytes());
        }
        if !self.multi.is_empty() {
            assert!(self.multi.len() <= u8::MAX as usize, "multi count overflow");
            w.u8(MULTI_SECTION_MARKER);
            w.u8(self.multi.len() as u8);
            for m in &self.multi {
                w.vec24(&m.to_bytes());
            }
        }
    }

    /// Decodes a payload. (Envelopes embed the payload length-prefixed, so
    /// the whole input is always exactly one payload; trailing bytes are
    /// rejected because the multi section is recognized by non-emptiness.)
    ///
    /// # Errors
    ///
    /// Returns a wire [`DecodeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let n = r.u8("status count")? as usize;
        if n >= MULTI_SECTION_MARKER as usize {
            return Err(DecodeError::new("status count reserved", 0));
        }
        // Each status needs at least its 3-byte length prefix.
        r.check_count(n, 3, "status count exceeds buffer")?;
        let mut statuses = Vec::with_capacity(n);
        for _ in 0..n {
            let raw = r.vec24("status entry")?;
            statuses.push(RevocationStatus::from_bytes(raw)?);
        }
        let mut multi = Vec::new();
        if !r.is_done() {
            let marker = r.u8("multi section marker")?;
            if marker != MULTI_SECTION_MARKER {
                return Err(DecodeError::new("bad multi section marker", r.position()));
            }
            let m = r.u8("multi status count")? as usize;
            r.check_count(m, 3, "multi status count exceeds buffer")?;
            for _ in 0..m {
                let raw = r.vec24("multi status entry")?;
                multi.push(MultiRevocationStatus::from_bytes(raw)?);
            }
        }
        r.finish("status payload trailing")?;
        Ok(StatusPayload { statuses, multi })
    }
}
