//! The transport-agnostic service surface.
//!
//! A [`Service`] is one RITM endpoint — a CDN edge, an RA's status server,
//! a CA's manifest endpoint — expressed as a pure request→response
//! function from `&self`. Implementations are `Send + Sync` so one service
//! instance can sit behind any transport: called in-process, placed on a
//! `ritm-net` simulated path, or served from a real TCP acceptor pool, all
//! without caring which.

use crate::frame::Frame;
use crate::message::{split_frame, RequestEnvelope, RitmRequest, RitmResponse, PROTOCOL_V2};
use crate::ProtoError;
use ritm_net::time::SimDuration;

/// One RITM endpoint. `handle` must be callable from any number of threads
/// concurrently — interior mutability is the implementation's business.
pub trait Service: Send + Sync {
    /// Serves one decoded request.
    fn handle(&self, req: RitmRequest) -> RitmResponse;

    /// Simulated service-side latency attributable to the *last* request
    /// this thread of execution handled (e.g. a CDN edge's sampled
    /// origin-fetch time). Transports that measure their own timing (real
    /// TCP) ignore it; the loopback and simulator transports charge it.
    /// Implementations should drain the value (return-and-reset) so two
    /// transports sharing a service never double-charge. The default
    /// reports zero.
    fn take_latency(&self) -> SimDuration {
        SimDuration::ZERO
    }

    /// Serves one encoded frame (length prefix included), producing the
    /// encoded response frame. This is the single choke point every
    /// transport funnels through, so version negotiation and malformed
    /// input are handled identically everywhere: an unsupported version or
    /// undecodable body yields a typed [`RitmResponse::Error`] frame —
    /// never a panic, never a silent drop. The reply is framed in the
    /// request's own envelope version (v2 requests get their id echoed);
    /// an unframeable input answers in v1, which every peer parses.
    fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        match split_frame(frame) {
            Ok((body, _)) => self.handle_envelope(RequestEnvelope::decode(body)),
            Err(e) => RitmResponse::Error(ProtoError::Malformed {
                offset: e.offset as u32,
            })
            .to_frame(),
        }
    }

    /// Serves one already-split envelope, producing the encoded response
    /// frame tagged with the envelope's reply version and request id —
    /// the unit an out-of-order server spawns per-request handler tasks
    /// around ([`handle_frame`](Service::handle_frame) funnels here).
    fn handle_envelope(&self, env: RequestEnvelope) -> Vec<u8> {
        let resp = match env.request {
            Ok(req) => self.handle(req),
            Err(e) => RitmResponse::Error(e),
        };
        // A response the framing layer could never deliver (e.g. a
        // catch-up bundle past MAX_FRAME_LEN) must degrade to a typed
        // error, not an unparseable frame on the peer's side. The error
        // names both sizes so the client can tell "shrink your ask"
        // (chunked catch-up) apart from a generic server fault.
        let overhead = if env.reply_version >= PROTOCOL_V2 {
            4
        } else {
            0
        };
        let encoded = resp.encoded_len() + overhead;
        if encoded > crate::message::MAX_FRAME_LEN {
            return RitmResponse::Error(ProtoError::ResponseTooLarge {
                len: encoded as u64,
                max: crate::message::MAX_FRAME_LEN as u64,
            })
            .to_frame_for(env.reply_version, env.request_id);
        }
        resp.to_frame_for(env.reply_version, env.request_id)
    }

    /// Serves one encoded frame as a [`Frame`] — the zero-copy variant of
    /// [`handle_frame`](Service::handle_frame), byte-identical on the
    /// wire. The default wraps `handle_frame`'s owned bytes; services
    /// with an encoded-response cache override
    /// [`serve_envelope`](Service::serve_envelope) to answer hot requests
    /// with a [`Body::Shared`](crate::Body::Shared) body instead.
    fn serve_frame(&self, frame: &[u8]) -> Frame {
        match split_frame(frame) {
            Ok((body, _)) => self.serve_envelope(RequestEnvelope::decode(body)),
            Err(e) => Frame::from_bytes(
                RitmResponse::Error(ProtoError::Malformed {
                    offset: e.offset as u32,
                })
                .to_frame(),
            ),
        }
    }

    /// Serves one already-split envelope as a [`Frame`]; the zero-copy
    /// analogue of [`handle_envelope`](Service::handle_envelope) and the
    /// override point for cached encoded responses.
    fn serve_envelope(&self, env: RequestEnvelope) -> Frame {
        Frame::from_bytes(self.handle_envelope(env))
    }
}

// The blanket impls must forward *every* defaulted method, not just the
// required ones: a service's `serve_envelope` override would otherwise be
// silently lost behind `Arc<dyn Service>` (the default would recompute
// from `handle` instead of hitting the cache).
impl<S: Service + ?Sized> Service for std::sync::Arc<S> {
    fn handle(&self, req: RitmRequest) -> RitmResponse {
        (**self).handle(req)
    }

    fn take_latency(&self) -> SimDuration {
        (**self).take_latency()
    }

    fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        (**self).handle_frame(frame)
    }

    fn handle_envelope(&self, env: RequestEnvelope) -> Vec<u8> {
        (**self).handle_envelope(env)
    }

    fn serve_frame(&self, frame: &[u8]) -> Frame {
        (**self).serve_frame(frame)
    }

    fn serve_envelope(&self, env: RequestEnvelope) -> Frame {
        (**self).serve_envelope(env)
    }
}

impl<S: Service + ?Sized> Service for &S {
    fn handle(&self, req: RitmRequest) -> RitmResponse {
        (**self).handle(req)
    }

    fn take_latency(&self) -> SimDuration {
        (**self).take_latency()
    }

    fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        (**self).handle_frame(frame)
    }

    fn handle_envelope(&self, env: RequestEnvelope) -> Vec<u8> {
        (**self).handle_envelope(env)
    }

    fn serve_frame(&self, frame: &[u8]) -> Frame {
        (**self).serve_frame(frame)
    }

    fn serve_envelope(&self, env: RequestEnvelope) -> Frame {
        (**self).serve_envelope(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ritm_dictionary::CaId;

    /// Answers every request with `Unsupported` (enough to exercise the
    /// framing choke point).
    struct Stub;

    impl Service for Stub {
        fn handle(&self, _req: RitmRequest) -> RitmResponse {
            RitmResponse::Error(ProtoError::Unsupported)
        }
    }

    #[test]
    fn well_formed_frame_reaches_handle() {
        let frame = RitmRequest::FetchDelta {
            ca: CaId::from_name("SvcCA"),
        }
        .to_frame();
        let resp_frame = Stub.handle_frame(&frame);
        let (body, _) = split_frame(&resp_frame).unwrap();
        assert_eq!(
            RitmResponse::decode_body(body).unwrap(),
            RitmResponse::Error(ProtoError::Unsupported)
        );
    }

    /// Answers with a payload the framing layer could never carry.
    struct Oversized;

    impl Service for Oversized {
        fn handle(&self, _req: RitmRequest) -> RitmResponse {
            RitmResponse::Manifest(vec![0u8; crate::message::MAX_FRAME_LEN + 1])
        }
    }

    #[test]
    fn oversized_response_degrades_to_typed_too_large_error() {
        let frame = RitmRequest::GetManifest {
            ca: CaId::from_name("BigCA"),
        }
        .to_frame();
        let resp_frame = Oversized.handle_frame(&frame);
        let (body, _) = split_frame(&resp_frame).unwrap();
        // version + kind + u32 payload length + the payload itself.
        let expected_len = 2 + 4 + (crate::message::MAX_FRAME_LEN + 1) as u64;
        assert_eq!(
            RitmResponse::decode_body(body).unwrap(),
            RitmResponse::Error(ProtoError::ResponseTooLarge {
                len: expected_len,
                max: crate::message::MAX_FRAME_LEN as u64,
            })
        );
    }

    #[test]
    fn v2_frame_reply_echoes_version_and_request_id() {
        let frame = RitmRequest::FetchDelta {
            ca: CaId::from_name("SvcCA"),
        }
        .to_frame_v2(42);
        let resp_frame = Stub.handle_frame(&frame);
        let (body, _) = split_frame(&resp_frame).unwrap();
        assert_eq!(
            RitmResponse::decode_envelope(body).unwrap(),
            (
                PROTOCOL_V2,
                42,
                RitmResponse::Error(ProtoError::Unsupported)
            )
        );
    }

    #[test]
    fn garbage_frame_yields_typed_error_not_panic() {
        for garbage in [&[][..], &[1, 2, 3][..], &[0, 0, 0, 99, 7][..]] {
            let resp_frame = Stub.handle_frame(garbage);
            let (body, _) = split_frame(&resp_frame).unwrap();
            match RitmResponse::decode_body(body).unwrap() {
                RitmResponse::Error(ProtoError::Malformed { .. }) => {}
                other => panic!("expected Malformed, got {other:?}"),
            }
        }
    }
}
