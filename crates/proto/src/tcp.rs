//! Serving the protocol over real OS sockets (`std::net`, blocking I/O).
//!
//! [`TcpServer`] is a thread-per-connection server behind a **bounded
//! acceptor pool**: one acceptor thread hands sockets to `pool_size` worker
//! threads over a bounded channel, so a connection flood queues at the
//! accept backlog instead of spawning unbounded threads. Each worker loops
//! `read frame → Service::handle_frame → write frame` until its client
//! closes. [`TcpTransport`] is the matching blocking client. Frames on the
//! socket are byte-identical to the loopback and simulator transports —
//! the same `u32 length ‖ version ‖ kind ‖ fields` envelopes. This
//! blocking pair stays on the v1 baseline deliberately: one request in
//! flight per connection needs no request ids, and keeping it id-less
//! preserves the reference byte counts the v2 event stack is measured
//! against (and negotiates down to).

use crate::error::TransportError;
use crate::message::{split_frame, RitmRequest, RitmResponse, MAX_FRAME_LEN};
use crate::service::Service;
use crate::transport::{RoundTrip, Transport, TransportMeta};
use ritm_net::time::SimDuration;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Reads one full frame (`u32` length prefix + body) from a blocking
/// stream. Returns `None` on a clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match stream.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_LEN",
        ));
    }
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&prefix);
    frame.resize(4 + len, 0);
    stream.read_exact(&mut frame[4..])?;
    Ok(Some(frame))
}

fn serve_connection(mut stream: TcpStream, service: &Arc<dyn Service>, served: &AtomicU64) {
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        let resp = service.handle_frame(&frame);
        if stream.write_all(&resp).is_err() {
            break;
        }
        served.fetch_add(1, Ordering::Relaxed);
    }
}

/// A blocking TCP server for one [`Service`].
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    served: Arc<AtomicU64>,
    /// Clones of every live connection (keyed per worker slot), so
    /// shutdown can unblock workers parked in a blocking read on an idle
    /// client. Entries are removed when the connection ends — a lingering
    /// clone would hold the peer's socket open past its death.
    live_conns: Arc<std::sync::Mutex<std::collections::HashMap<u64, TcpStream>>>,
}

impl TcpServer {
    /// Binds `127.0.0.1:0` (ephemeral port) and starts serving `service`
    /// with `pool_size` connection workers.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn spawn(service: Arc<dyn Service>, pool_size: usize) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        // Bounded hand-off: at most `pool_size` connections queue beyond
        // the ones already being served.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(pool_size.max(1));
        let rx = Arc::new(std::sync::Mutex::new(rx));
        let live_conns = Arc::new(std::sync::Mutex::new(std::collections::HashMap::<
            u64,
            TcpStream,
        >::new()));

        let mut workers = Vec::with_capacity(pool_size.max(1));
        for slot in 0..pool_size.max(1) as u64 {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&service);
            let served = Arc::clone(&served);
            let live_conns = Arc::clone(&live_conns);
            workers.push(std::thread::spawn(move || loop {
                // Scope the lock to the receive: workers serve concurrently.
                let conn = match rx.lock().expect("worker queue lock").recv() {
                    Ok(c) => c,
                    Err(_) => return, // acceptor gone: drain and exit
                };
                // Register a handle so shutdown can force-close the socket
                // out from under a blocking read (an idle client would
                // otherwise pin this worker forever). One connection per
                // worker at a time, so the slot index is a unique key.
                if let Ok(clone) = conn.try_clone() {
                    live_conns
                        .lock()
                        .expect("live conns lock")
                        .insert(slot, clone);
                }
                // A panicking service request must cost only its own
                // connection, not a pool slot: catch the unwind and move
                // on to the next socket. The `&AtomicU64` is unwind-safe
                // (atomic), and `Arc<dyn Service>` implementations own
                // their locking; a poisoned std mutex inside one would
                // keep panicking per request but the pool stays alive.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    serve_connection(conn, &service, &served);
                }));
                // Deregister (and thereby fully close) the finished
                // connection, whether it ended cleanly or by unwinding —
                // a lingering clone would keep the peer's read half open.
                live_conns.lock().expect("live conns lock").remove(&slot);
            }));
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(conn) = conn else { continue };
                    // Blocks when every worker is busy and the queue is
                    // full — the "bounded" in bounded acceptor pool.
                    if tx.send(conn).is_err() {
                        return;
                    }
                }
            })
        };

        Ok(TcpServer {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            served,
            live_conns,
        })
    }

    /// The bound address to hand to [`TcpTransport::connect`].
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far, across all connections.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stops accepting, force-closes every live connection (a worker
    /// parked in a blocking read on an idle client wakes with an I/O
    /// error), waits for the acceptor and all workers, and returns the
    /// total requests served. In-flight requests finish writing first
    /// only if they complete before the socket teardown races them —
    /// shutdown is for ending an experiment, not draining one.
    pub fn shutdown(mut self) -> u64 {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the blocking accept so the flag is observed.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // The acceptor is gone (channel closed); unblock any worker still
        // reading from a client that never hung up.
        for (_, conn) in self.live_conns.lock().expect("live conns lock").drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.served.load(Ordering::Relaxed)
    }
}

/// A blocking TCP client transport: one connection, sequential round trips.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects to a [`TcpServer`].
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn round_trip(&mut self, req: &RitmRequest) -> Result<RoundTrip, TransportError> {
        let frame = req.to_frame();
        let start = Instant::now();
        self.stream.write_all(&frame)?;
        let reply = read_frame(&mut self.stream)?.ok_or(TransportError::NoResponse)?;
        let latency = SimDuration::from_micros(start.elapsed().as_micros() as u64);
        let (body, _) = split_frame(&reply)?;
        let response = RitmResponse::decode_body(body)?;
        Ok(RoundTrip {
            response,
            meta: TransportMeta {
                request_bytes: frame.len() as u64,
                response_bytes: reply.len() as u64,
                latency,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtoError;
    use ritm_dictionary::CaId;

    struct Nope;

    impl Service for Nope {
        fn handle(&self, _req: RitmRequest) -> RitmResponse {
            RitmResponse::Error(ProtoError::NotFound)
        }
    }

    /// Panics on `GetManifest`, serves everything else.
    struct Grenade;

    impl Service for Grenade {
        fn handle(&self, req: RitmRequest) -> RitmResponse {
            if matches!(req, RitmRequest::GetManifest { .. }) {
                panic!("boom");
            }
            RitmResponse::Error(ProtoError::NotFound)
        }
    }

    #[test]
    fn worker_survives_a_panicking_service() {
        let server = TcpServer::spawn(Arc::new(Grenade), 1).unwrap();
        let ca = CaId::from_name("BoomCA");
        // This request panics the (single!) worker mid-connection...
        let mut t1 = TcpTransport::connect(server.addr()).unwrap();
        assert!(t1.round_trip(&RitmRequest::GetManifest { ca }).is_err());
        // ...but the pool slot survives and keeps serving new connections.
        let mut t2 = TcpTransport::connect(server.addr()).unwrap();
        let rt = t2.round_trip(&RitmRequest::FetchDelta { ca }).unwrap();
        assert_eq!(rt.response, RitmResponse::Error(ProtoError::NotFound));
        drop((t1, t2));
        server.shutdown();
    }

    #[test]
    fn shutdown_returns_despite_an_idle_client() {
        let server = TcpServer::spawn(Arc::new(Nope), 1).unwrap();
        // An idle client that connects and sends nothing pins the single
        // worker in a blocking read; shutdown must still return.
        let idle = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(server.shutdown(), 0);
        drop(idle);
    }

    #[test]
    fn server_round_trips_and_shuts_down_cleanly() {
        let server = TcpServer::spawn(Arc::new(Nope), 2).unwrap();
        let mut t = TcpTransport::connect(server.addr()).unwrap();
        let req = RitmRequest::GetManifest {
            ca: CaId::from_name("TcpCA"),
        };
        for _ in 0..3 {
            let rt = t.round_trip(&req).unwrap();
            assert_eq!(rt.response, RitmResponse::Error(ProtoError::NotFound));
            assert_eq!(rt.meta.request_bytes as usize, req.to_frame().len());
        }
        drop(t);
        assert_eq!(server.shutdown(), 3);
    }
}
