//! Shared envelope generators for the protocol integration tests: one
//! request and one response per wire kind, rng-varied, over a real
//! dictionary world (so responses carry structurally-valid signed roots,
//! proofs, and freshness statements). Used by both the codec round-trip
//! suite (`roundtrip.rs`) and the resumable-framing suite (`framing.rs`).
#![allow(dead_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use ritm_crypto::digest::Digest20;
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{
    CaDictionary, CaId, MirrorDictionary, RefreshMessage, RevocationIssuance, SerialNumber,
    SignedRoot,
};
use ritm_proto::{ProtoError, RitmRequest, RitmResponse, StatusPayload};

pub const T0: u64 = 1_000_000;

pub fn arbitrary_serial(rng: &mut StdRng) -> SerialNumber {
    let len = rng.gen_range(1usize..21);
    let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
    SerialNumber::new(&bytes).expect("1..=20 bytes is valid")
}

pub fn arbitrary_ca(rng: &mut StdRng) -> CaId {
    let mut b = [0u8; 8];
    rng.fill_bytes(&mut b);
    CaId(b)
}

/// An rng-varied `(ca, signed_root)` gossip vector (validly signed, so the
/// shapes match what a fleet node actually puts on the wire).
pub fn arbitrary_gossip_roots(rng: &mut StdRng) -> Vec<(CaId, SignedRoot)> {
    let mut seed = [0u8; 32];
    rng.fill_bytes(&mut seed);
    let key = SigningKey::from_seed(seed);
    (0..rng.gen_range(0usize..12))
        .map(|_| {
            let ca = arbitrary_ca(rng);
            let mut digest = [0u8; 20];
            rng.fill_bytes(&mut digest);
            let mut anchor = [0u8; 20];
            rng.fill_bytes(&mut anchor);
            let root = SignedRoot::create(
                &key,
                ca,
                Digest20::from_bytes(digest),
                rng.gen(),
                Digest20::from_bytes(anchor),
                rng.gen(),
            );
            (ca, root)
        })
        .collect()
}

/// One request per wire kind, with rng-varied fields.
pub fn requests(rng: &mut StdRng) -> Vec<RitmRequest> {
    let chain_len = rng.gen_range(0usize..8);
    let chain: Vec<(CaId, SerialNumber)> = (0..chain_len)
        .map(|_| (arbitrary_ca(rng), arbitrary_serial(rng)))
        .collect();
    vec![
        RitmRequest::FetchDelta {
            ca: arbitrary_ca(rng),
        },
        RitmRequest::FetchFreshness {
            ca: arbitrary_ca(rng),
        },
        RitmRequest::CatchUp {
            ca: arbitrary_ca(rng),
            have: rng.gen(),
        },
        RitmRequest::CatchUpPaged {
            ca: arbitrary_ca(rng),
            have: rng.gen(),
            limit: rng.gen(),
        },
        RitmRequest::GetStatus {
            ca: arbitrary_ca(rng),
            serial: arbitrary_serial(rng),
        },
        RitmRequest::GetMultiStatus {
            chain,
            compress: rng.gen(),
        },
        RitmRequest::GetSignedRoot {
            ca: arbitrary_ca(rng),
        },
        RitmRequest::GetManifest {
            ca: arbitrary_ca(rng),
        },
        RitmRequest::GossipRoots {
            roots: arbitrary_gossip_roots(rng),
        },
    ]
}

/// A real dictionary world, so responses carry structurally-valid signed
/// roots, proofs, and freshness statements (round-tripping is still purely
/// syntactic, but realistic shapes exercise the embedded codecs).
pub fn world(seed: u64, n: u32) -> (CaDictionary, MirrorDictionary) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ca = CaDictionary::new(
        CaId::from_name("PropProtoCA"),
        SigningKey::from_seed([1u8; 32]),
        10,
        128,
        &mut rng,
        T0,
    );
    let mut m = MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root()).unwrap();
    m.set_delta(10);
    if n > 0 {
        let serials: Vec<SerialNumber> = (0..n).map(|i| SerialNumber::from_u24(i * 3)).collect();
        let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
        m.apply_issuance(&iss, T0 + 1).unwrap();
    }
    (ca, m)
}

/// One response per wire kind (both refresh tags, single and compressed
/// status payloads, every error variant), with rng-varied content.
pub fn responses(rng: &mut StdRng) -> Vec<RitmResponse> {
    let n = rng.gen_range(0u32..40);
    let (mut ca, mirror) = world(rng.gen(), n);
    let mut inner = StdRng::seed_from_u64(rng.gen());

    let iss_serials: Vec<SerialNumber> = (0..rng.gen_range(0u32..30))
        .map(|_| arbitrary_serial(rng))
        .collect();
    let issuance = RevocationIssuance {
        first_number: rng.gen(),
        serials: iss_serials,
        signed_root: *mirror.signed_root(),
    };

    let single = mirror.prove(&arbitrary_serial(rng));
    let multi_serials: Vec<SerialNumber> = (0..rng.gen_range(1u32..5))
        .map(|i| SerialNumber::from_u24(i * 7 + 1))
        .collect();
    let multi = mirror.prove_multi(&multi_serials);
    let payload = StatusPayload {
        statuses: vec![single],
        multi: vec![multi],
    };

    let refresh = ca.refresh(&mut inner, T0 + 11);

    let page_serials: Vec<SerialNumber> = (0..rng.gen_range(0u32..30))
        .map(|_| arbitrary_serial(rng))
        .collect();
    let page = RevocationIssuance {
        first_number: rng.gen(),
        serials: page_serials,
        signed_root: *mirror.signed_root(),
    };

    let mut out = vec![
        RitmResponse::Delta(issuance),
        RitmResponse::DeltaPage {
            issuance: page,
            remaining: rng.gen(),
        },
        RitmResponse::Freshness(refresh),
        RitmResponse::Freshness(RefreshMessage::NewRoot(*mirror.signed_root())),
        RitmResponse::Status(payload),
        RitmResponse::Status(StatusPayload::default()),
        RitmResponse::SignedRoot(*mirror.signed_root()),
        RitmResponse::Manifest((0..rng.gen_range(0usize..200)).map(|_| rng.gen()).collect()),
        RitmResponse::GossipAck {
            roots: arbitrary_gossip_roots(rng),
        },
    ];
    out.extend(
        [
            ProtoError::UnsupportedVersion {
                requested: rng.gen(),
                supported: rng.gen(),
            },
            ProtoError::Malformed { offset: rng.gen() },
            ProtoError::UnknownCa(arbitrary_ca(rng)),
            ProtoError::NotFound,
            ProtoError::Unsupported,
            ProtoError::Busy,
            ProtoError::Internal,
            ProtoError::ResponseTooLarge {
                len: rng.gen(),
                max: rng.gen(),
            },
            ProtoError::IdleTimeout {
                after_ms: rng.gen(),
            },
        ]
        .map(RitmResponse::Error),
    );
    out
}
