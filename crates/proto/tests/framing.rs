//! Resumable framing (the `ritm-rt` satellite): every envelope the
//! round-trip proptests generate is fed to [`FrameReader`] one byte at a
//! time, under randomized `WouldBlock` interleavings, and across
//! frame-spanning chunk splits — and the reassembled frame must be
//! byte-identical to the one-shot encoding, decoding to the same value.
//! The write side mirrors it: [`FrameWriter`] under short writes and
//! `WouldBlock` must put exactly the one-shot bytes on the wire.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ritm_proto::{RitmRequest, RitmResponse, MAX_FRAME_LEN};
use ritm_rt::{FrameRead, FrameReader, FrameWrite, FrameWriter};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};

mod common;
use common::{requests, responses};

/// A reader serving a script of byte chunks interleaved with `WouldBlock`
/// signals (`None` entries), then EOF.
struct Scripted {
    script: VecDeque<Option<Vec<u8>>>,
}

impl Read for Scripted {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.script.pop_front() {
            Some(Some(bytes)) => {
                // The reader never asks for less than one byte; if it asks
                // for fewer than the chunk holds, split the chunk.
                if bytes.len() > buf.len() {
                    let (now, later) = bytes.split_at(buf.len());
                    buf.copy_from_slice(now);
                    self.script.push_front(Some(later.to_vec()));
                    Ok(now.len())
                } else {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
            }
            Some(None) => Err(ErrorKind::WouldBlock.into()),
            None => Ok(0),
        }
    }
}

/// Drives `reader` over `io` to completion, counting `WouldBlock` stalls.
fn drain(reader: &mut FrameReader, io: &mut Scripted) -> (Vec<Vec<u8>>, u64) {
    let mut frames = Vec::new();
    let mut stalls = 0u64;
    loop {
        match reader.poll_frame(io) {
            FrameRead::Frame(f) => frames.push(f),
            FrameRead::WouldBlock => stalls += 1,
            FrameRead::Eof => return (frames, stalls),
            FrameRead::Err(e) => panic!("unexpected stream error: {e}"),
        }
    }
}

/// Every generated envelope, encoded one-shot.
fn all_frames(rng: &mut StdRng) -> Vec<Vec<u8>> {
    requests(rng)
        .iter()
        .map(RitmRequest::to_frame)
        .chain(responses(rng).iter().map(RitmResponse::to_frame))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One byte per read, a coin-flip `WouldBlock` before each: the
    /// incremental decode must reproduce the one-shot frames bit-exactly,
    /// including across frame boundaries in one contiguous stream.
    #[test]
    fn byte_at_a_time_with_random_wouldblock_is_identical(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames = all_frames(&mut rng);
        let stream: Vec<u8> = frames.concat();
        let mut script: VecDeque<Option<Vec<u8>>> = VecDeque::new();
        for &b in &stream {
            while rng.gen_bool(0.3) {
                script.push_back(None); // a not-ready signal, possibly several
            }
            script.push_back(Some(vec![b]));
        }
        let mut io = Scripted { script };
        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        let (got, stalls) = drain(&mut reader, &mut io);
        prop_assert_eq!(&got, &frames, "incremental decode diverged");
        prop_assert!(stalls > 0 || stream.is_empty(), "interleaving exercised");
        // And the decoded values match the one-shot decode path.
        for (g, f) in got.iter().zip(&frames) {
            prop_assert_eq!(g, f);
            let (body, rest) = ritm_proto::split_frame(g).expect("self-framed");
            prop_assert!(rest.is_empty());
            // A frame is either a request or a response; one of the two
            // decoders must accept it exactly as the one-shot path does.
            let (one_body, _) = ritm_proto::split_frame(f).expect("self-framed");
            match (RitmRequest::decode_body(body), RitmRequest::decode_body(one_body)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {
                    let a = RitmResponse::decode_body(body).expect("response decodes");
                    let b = RitmResponse::decode_body(one_body).expect("response decodes");
                    prop_assert_eq!(a, b);
                }
                _ => prop_assert!(false, "incremental and one-shot decode disagree"),
            }
        }
    }

    /// Random chunk sizes (1..=7 bytes, spanning frame boundaries) under
    /// random stalls: same result as byte-at-a-time.
    #[test]
    fn random_chunking_across_frame_boundaries(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames = all_frames(&mut rng);
        let stream: Vec<u8> = frames.concat();
        let mut script: VecDeque<Option<Vec<u8>>> = VecDeque::new();
        let mut pos = 0;
        while pos < stream.len() {
            if rng.gen_bool(0.25) {
                script.push_back(None);
            }
            let take = rng.gen_range(1usize..8).min(stream.len() - pos);
            script.push_back(Some(stream[pos..pos + take].to_vec()));
            pos += take;
        }
        let mut io = Scripted { script };
        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        let (got, _) = drain(&mut reader, &mut io);
        prop_assert_eq!(got, frames);
    }

    /// The writer under short writes and random stalls emits exactly the
    /// concatenated one-shot frames.
    #[test]
    fn short_writes_with_random_wouldblock_are_identical(seed in any::<u64>()) {
        struct Dribble {
            accepted: Vec<u8>,
            rng: StdRng,
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.rng.gen_bool(0.3) {
                    return Err(ErrorKind::WouldBlock.into());
                }
                let n = self.rng.gen_range(1usize..64).min(buf.len());
                self.accepted.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let frames = all_frames(&mut rng);
        let mut writer = FrameWriter::new();
        for f in &frames {
            writer.queue(f.clone());
        }
        let mut io = Dribble { accepted: Vec::new(), rng };
        loop {
            match writer.poll_write(&mut io) {
                FrameWrite::Done => break,
                FrameWrite::WouldBlock => continue,
                FrameWrite::Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
        }
        prop_assert_eq!(io.accepted, frames.concat());
        prop_assert!(!writer.pending());
    }
}
