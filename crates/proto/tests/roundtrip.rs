//! Property tests for the wire envelopes: every request/response variant
//! survives `decode(encode(x)) == x` bit-exactly, and no truncation or
//! byte corruption of a frame can panic the decoder — the same
//! `check_count` discipline the dictionary wire formats follow.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ritm_proto::{split_frame, ProtoError, RitmRequest, RitmResponse, TransportError};

mod common;
use common::{requests, responses};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// decode(encode(x)) == x for every request variant.
    #[test]
    fn request_round_trips_every_variant(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for req in requests(&mut rng) {
            let frame = req.to_frame();
            prop_assert_eq!(frame.len(), 4 + req.encoded_len());
            let (body, rest) = split_frame(&frame).expect("self-framed");
            prop_assert!(rest.is_empty());
            let back = RitmRequest::decode_body(body).expect("round trip");
            prop_assert_eq!(back, req);
        }
    }

    /// decode(encode(x)) == x for every response variant (including every
    /// error-taxonomy variant).
    #[test]
    fn response_round_trips_every_variant(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for resp in responses(&mut rng) {
            let frame = resp.to_frame();
            prop_assert_eq!(frame.len(), 4 + resp.encoded_len());
            let (body, rest) = split_frame(&frame).expect("self-framed");
            prop_assert!(rest.is_empty());
            let back = RitmResponse::decode_body(body).expect("round trip");
            prop_assert_eq!(back, resp);
        }
    }

    /// Every strict truncation of a request frame fails to decode as a
    /// typed error — never a panic, never a silent success.
    #[test]
    fn truncated_request_frames_always_error(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for req in requests(&mut rng) {
            let frame = req.to_frame();
            for cut in 0..frame.len() {
                let t = &frame[..cut];
                match split_frame(t) {
                    Err(_) => {} // frame layer caught it
                    Ok((body, _)) => {
                        prop_assert!(
                            RitmRequest::decode_body(body).is_err(),
                            "truncation to {} decoded", cut
                        );
                    }
                }
            }
        }
    }

    /// Every strict truncation of a response frame fails to decode.
    #[test]
    fn truncated_response_frames_always_error(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for resp in responses(&mut rng) {
            let frame = resp.to_frame();
            // Sample cuts (responses can be large; every cut would be slow).
            for _ in 0..32 {
                let cut = rng.gen_range(0usize..frame.len());
                match split_frame(&frame[..cut]) {
                    Err(_) => {}
                    Ok((body, _)) => {
                        prop_assert!(
                            RitmResponse::decode_body(body).is_err(),
                            "truncation to {} decoded", cut
                        );
                    }
                }
            }
        }
    }

    /// Arbitrary byte corruption never panics the decoders: the result is
    /// either a clean decode (the flip hit a don't-care position) or a
    /// typed `DecodeError`/`ProtoError`/`TransportError`.
    #[test]
    fn corrupted_frames_never_panic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reqs = requests(&mut rng);
        let resps = responses(&mut rng);
        let frames: Vec<Vec<u8>> = reqs
            .iter()
            .map(RitmRequest::to_frame)
            .chain(resps.iter().map(RitmResponse::to_frame))
            .collect();
        for frame in frames {
            for _ in 0..16 {
                let mut corrupt = frame.clone();
                let flips = rng.gen_range(1usize..4);
                for _ in 0..flips {
                    let pos = rng.gen_range(0usize..corrupt.len());
                    corrupt[pos] ^= rng.gen_range(1u8..=255);
                }
                if let Ok((body, _)) = split_frame(&corrupt) {
                    // Both decoders must return, not panic; a version flip
                    // must surface as the typed negotiation error.
                    match RitmRequest::decode_body(body) {
                        Ok(_) | Err(ProtoError::Malformed { .. }) => {}
                        Err(ProtoError::UnsupportedVersion { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                    match RitmResponse::decode_body(body) {
                        Ok(_)
                        | Err(TransportError::BadResponse(_))
                        | Err(TransportError::VersionMismatch { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
            }
        }
    }

    /// Pure garbage (not even a frame) is rejected at the framing layer or
    /// decodes to an error.
    #[test]
    fn random_bytes_never_panic(len in 0usize..256, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        if let Ok((body, _)) = split_frame(&bytes) {
            let _ = RitmRequest::decode_body(body);
            let _ = RitmResponse::decode_body(body);
        }
    }
}
