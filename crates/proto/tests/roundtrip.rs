//! Property tests for the wire envelopes: every request/response variant
//! survives `decode(encode(x)) == x` bit-exactly — in the v1 envelope and
//! in the request-id-carrying v2 envelope — and no truncation or byte
//! corruption of a frame can panic the decoder (or the best-effort
//! `peek_request_envelope` reply tagger) — the same `check_count`
//! discipline the dictionary wire formats follow.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ritm_proto::{
    peek_request_envelope, split_frame, ProtoError, RequestEnvelope, RitmRequest, RitmResponse,
    TransportError, PROTOCOL_V2,
};

mod common;
use common::{requests, responses};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// decode(encode(x)) == x for every request variant.
    #[test]
    fn request_round_trips_every_variant(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for req in requests(&mut rng) {
            let frame = req.to_frame();
            prop_assert_eq!(frame.len(), 4 + req.encoded_len());
            let (body, rest) = split_frame(&frame).expect("self-framed");
            prop_assert!(rest.is_empty());
            let back = RitmRequest::decode_body(body).expect("round trip");
            prop_assert_eq!(back, req);
        }
    }

    /// decode(encode(x)) == x for every response variant (including every
    /// error-taxonomy variant).
    #[test]
    fn response_round_trips_every_variant(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for resp in responses(&mut rng) {
            let frame = resp.to_frame();
            prop_assert_eq!(frame.len(), 4 + resp.encoded_len());
            let (body, rest) = split_frame(&frame).expect("self-framed");
            prop_assert!(rest.is_empty());
            let back = RitmResponse::decode_body(body).expect("round trip");
            prop_assert_eq!(back, resp);
        }
    }

    /// decode(encode(x)) == x for every variant in the v2 envelope, with
    /// the request id carried and echoed bit-exactly — and a v2 frame is
    /// its v1 twin plus exactly the 4 id bytes, nothing else.
    #[test]
    fn v2_envelope_round_trips_with_request_id(seed in any::<u64>(), id in any::<u32>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for req in requests(&mut rng) {
            let frame = req.to_frame_v2(id);
            prop_assert_eq!(frame.len(), req.to_frame().len() + 4);
            let (body, rest) = split_frame(&frame).expect("self-framed");
            prop_assert!(rest.is_empty());
            prop_assert_eq!(peek_request_envelope(body), (PROTOCOL_V2, id));
            let env = RequestEnvelope::decode(body);
            prop_assert_eq!(env.reply_version, PROTOCOL_V2);
            prop_assert_eq!(env.request_id, id);
            prop_assert_eq!(env.request.expect("round trip"), req);
        }
        for resp in responses(&mut rng) {
            let frame = resp.to_frame_for(PROTOCOL_V2, id);
            prop_assert_eq!(frame.len(), resp.to_frame().len() + 4);
            let (body, rest) = split_frame(&frame).expect("self-framed");
            prop_assert!(rest.is_empty());
            let (version, back_id, back) =
                RitmResponse::decode_envelope(body).expect("round trip");
            prop_assert_eq!(version, PROTOCOL_V2);
            prop_assert_eq!(back_id, id);
            prop_assert_eq!(back, resp);
        }
    }

    /// Every strict truncation of a v2 request frame fails to decode as a
    /// typed error — and the reply tagger never panics on the stump,
    /// degrading to a v1 tag whenever the id bytes are gone.
    #[test]
    fn truncated_v2_frames_always_error_and_tag_safely(seed in any::<u64>(), id in any::<u32>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for req in requests(&mut rng) {
            let frame = req.to_frame_v2(id);
            for cut in 0..frame.len() {
                let t = &frame[..cut];
                if let Ok((body, _)) = split_frame(t) {
                    // The tagger is total: a stump too short for an id
                    // gets the v1 tag every peer can parse.
                    let (version, _) = peek_request_envelope(body);
                    if body.len() >= 5 && body[0] == PROTOCOL_V2 {
                        prop_assert_eq!(version, PROTOCOL_V2);
                    }
                    let env = RequestEnvelope::decode(body);
                    prop_assert!(
                        env.request.is_err(),
                        "v2 truncation to {} decoded", cut
                    );
                }
            }
        }
    }

    /// Arbitrary corruption of v2 frames never panics the envelope
    /// decoders or the reply tagger.
    #[test]
    fn corrupted_v2_frames_never_panic(seed in any::<u64>(), id in any::<u32>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reqs = requests(&mut rng);
        let resps = responses(&mut rng);
        let frames: Vec<Vec<u8>> = reqs
            .iter()
            .map(|r| r.to_frame_v2(id))
            .chain(resps.iter().map(|r| r.to_frame_for(PROTOCOL_V2, id)))
            .collect();
        for frame in frames {
            for _ in 0..16 {
                let mut corrupt = frame.clone();
                let flips = rng.gen_range(1usize..4);
                for _ in 0..flips {
                    let pos = rng.gen_range(0usize..corrupt.len());
                    corrupt[pos] ^= rng.gen_range(1u8..=255);
                }
                if let Ok((body, _)) = split_frame(&corrupt) {
                    let _ = peek_request_envelope(body);
                    let env = RequestEnvelope::decode(body);
                    match env.request {
                        Ok(_) | Err(ProtoError::Malformed { .. }) => {}
                        Err(ProtoError::UnsupportedVersion { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                    match RitmResponse::decode_envelope(body) {
                        Ok(_)
                        | Err(TransportError::BadResponse(_))
                        | Err(TransportError::VersionMismatch { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
            }
        }
    }

    /// Every strict truncation of a request frame fails to decode as a
    /// typed error — never a panic, never a silent success.
    #[test]
    fn truncated_request_frames_always_error(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for req in requests(&mut rng) {
            let frame = req.to_frame();
            for cut in 0..frame.len() {
                let t = &frame[..cut];
                match split_frame(t) {
                    Err(_) => {} // frame layer caught it
                    Ok((body, _)) => {
                        prop_assert!(
                            RitmRequest::decode_body(body).is_err(),
                            "truncation to {} decoded", cut
                        );
                    }
                }
            }
        }
    }

    /// Every strict truncation of a response frame fails to decode.
    #[test]
    fn truncated_response_frames_always_error(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for resp in responses(&mut rng) {
            let frame = resp.to_frame();
            // Sample cuts (responses can be large; every cut would be slow).
            for _ in 0..32 {
                let cut = rng.gen_range(0usize..frame.len());
                match split_frame(&frame[..cut]) {
                    Err(_) => {}
                    Ok((body, _)) => {
                        prop_assert!(
                            RitmResponse::decode_body(body).is_err(),
                            "truncation to {} decoded", cut
                        );
                    }
                }
            }
        }
    }

    /// Arbitrary byte corruption never panics the decoders: the result is
    /// either a clean decode (the flip hit a don't-care position) or a
    /// typed `DecodeError`/`ProtoError`/`TransportError`.
    #[test]
    fn corrupted_frames_never_panic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reqs = requests(&mut rng);
        let resps = responses(&mut rng);
        let frames: Vec<Vec<u8>> = reqs
            .iter()
            .map(RitmRequest::to_frame)
            .chain(resps.iter().map(RitmResponse::to_frame))
            .collect();
        for frame in frames {
            for _ in 0..16 {
                let mut corrupt = frame.clone();
                let flips = rng.gen_range(1usize..4);
                for _ in 0..flips {
                    let pos = rng.gen_range(0usize..corrupt.len());
                    corrupt[pos] ^= rng.gen_range(1u8..=255);
                }
                if let Ok((body, _)) = split_frame(&corrupt) {
                    // Both decoders must return, not panic; a version flip
                    // must surface as the typed negotiation error.
                    match RitmRequest::decode_body(body) {
                        Ok(_) | Err(ProtoError::Malformed { .. }) => {}
                        Err(ProtoError::UnsupportedVersion { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                    match RitmResponse::decode_body(body) {
                        Ok(_)
                        | Err(TransportError::BadResponse(_))
                        | Err(TransportError::VersionMismatch { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
            }
        }
    }

    /// Pure garbage (not even a frame) is rejected at the framing layer or
    /// decodes to an error.
    #[test]
    fn random_bytes_never_panic(len in 0usize..256, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        if let Ok((body, _)) = split_frame(&bytes) {
            let _ = RitmRequest::decode_body(body);
            let _ = RitmResponse::decode_body(body);
        }
    }

    /// The CA issuance-log scanner recovers the longest clean prefix from
    /// any truncation of a valid log image: cutting inside record `k`
    /// yields exactly records `0..k` and never panics. (The scanner shares
    /// this suite because its payloads are the same `RevocationIssuance`
    /// wire objects the envelopes carry.)
    #[test]
    fn issuance_log_truncation_recovers_longest_prefix(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (records, image, offsets) = log_image(&mut rng);
        for _ in 0..48 {
            let cut = rng.gen_range(0usize..=image.len());
            let scan = ritm_ca::wal::decode_records(&image[..cut]);
            // The clean prefix is the last record boundary at or before
            // the cut.
            let k = offsets.iter().filter(|&&end| end <= cut).count();
            prop_assert_eq!(scan.records.len(), k, "cut at {}", cut);
            prop_assert_eq!(&scan.records[..], &records[..k]);
            let boundary = if k == 0 { 0 } else { offsets[k - 1] };
            prop_assert_eq!(scan.good_len as usize, boundary);
            if cut == boundary {
                prop_assert_eq!(scan.tail, ritm_ca::TailState::Clean);
            } else {
                prop_assert_eq!(scan.tail, ritm_ca::TailState::Torn);
            }
        }
    }

    /// Arbitrary byte corruption of a log image never panics the scanner,
    /// and the records it does return are a prefix of the originals — a
    /// flipped byte can only shorten recovery, never fabricate or reorder
    /// history.
    #[test]
    fn issuance_log_corruption_never_panics_or_forges(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (records, image, _) = log_image(&mut rng);
        for _ in 0..24 {
            let mut corrupt = image.clone();
            let flips = rng.gen_range(1usize..4);
            for _ in 0..flips {
                let pos = rng.gen_range(0usize..corrupt.len());
                corrupt[pos] ^= rng.gen_range(1u8..=255);
            }
            let scan = ritm_ca::wal::decode_records(&corrupt);
            prop_assert!(scan.records.len() <= records.len());
            prop_assert_eq!(&scan.records[..], &records[..scan.records.len()]);
            prop_assert!(scan.good_len as usize <= corrupt.len());
        }
    }
}

/// A small valid log image: the records, the concatenated frame bytes,
/// and each record's end offset within the image.
fn log_image(
    rng: &mut StdRng,
) -> (
    Vec<ritm_dictionary::RevocationIssuance>,
    Vec<u8>,
    Vec<usize>,
) {
    let n = rng.gen_range(1u32..5);
    let mut ca = ritm_dictionary::CaDictionary::new(
        ritm_dictionary::CaId::from_name("PropWalCA"),
        ritm_crypto::ed25519::SigningKey::from_seed([4u8; 32]),
        10,
        64,
        rng,
        common::T0,
    );
    let mut records = Vec::new();
    let mut image = Vec::new();
    let mut offsets = Vec::new();
    for b in 0..n {
        let batch = rng.gen_range(1u32..6);
        let serials: Vec<ritm_dictionary::SerialNumber> = (0..batch)
            .map(|i| ritm_dictionary::SerialNumber::from_u24(b * 100 + i))
            .collect();
        let iss = ca.insert(&serials, rng, common::T0 + 1 + b as u64).unwrap();
        image.extend_from_slice(&ritm_ca::wal::encode_record(&iss));
        offsets.push(image.len());
        records.push(iss);
    }
    (records, image, offsets)
}
