//! Acceptance for the v2 multiplexed event stack: the negotiation matrix
//! (v2↔v2 multiplexes; v2↔v1 falls back — transparently and
//! byte-identically — to in-order v1 pipelining), out-of-order completion
//! (a slow `CatchUp` no longer head-of-line blocks the `GetStatus`
//! requests behind it), connection-count backpressure (the acceptor
//! pauses at the cap and resumes as connections close), the keepalive
//! reaper (idle connections are dropped with a typed goodbye; connections
//! with work in flight are not), and the shared multi-endpoint runtime
//! (RA + CA + edge servers on one ≤2-thread reactor/executor pair, torn
//! down independently).

use ritm_dictionary::{CaId, SerialNumber};
use ritm_proto::event::{EventServer, EventServerConfig, EventTransport};
use ritm_proto::{
    ProtoError, RitmRequest, RitmResponse, Service, Transport, MAX_SUPPORTED_VERSION,
    PROTOCOL_VERSION,
};
use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Answers everything with `NotFound` (enough to count round trips).
struct Nope;

impl Service for Nope {
    fn handle(&self, _req: RitmRequest) -> RitmResponse {
        RitmResponse::Error(ProtoError::NotFound)
    }
}

/// Echoes the request's CA id back, so replies are distinguishable and
/// misrouting (a reply landing in the wrong slot) is observable.
struct EchoCa;

impl Service for EchoCa {
    fn handle(&self, req: RitmRequest) -> RitmResponse {
        match req {
            RitmRequest::GetManifest { ca }
            | RitmRequest::FetchDelta { ca }
            | RitmRequest::GetStatus { ca, .. } => RitmResponse::Error(ProtoError::UnknownCa(ca)),
            _ => RitmResponse::Error(ProtoError::Unsupported),
        }
    }
}

fn v1_pinned_config() -> EventServerConfig {
    EventServerConfig {
        max_version: PROTOCOL_VERSION,
        ..EventServerConfig::default()
    }
}

#[test]
fn negotiation_matrix_v2_multiplexes_and_v1_falls_back_byte_identically() {
    let reqs: Vec<RitmRequest> = (0..3)
        .map(|i| RitmRequest::GetManifest {
            ca: CaId::from_name(&format!("NegCA{i}")),
        })
        .collect();
    let v1_lens: Vec<usize> = reqs.iter().map(|r| r.to_frame().len()).collect();

    // v2 client ↔ v2 server: the first flight pins v2 and every request
    // frame carries the 4-byte id.
    let server = EventServer::spawn(Arc::new(EchoCa), 2).unwrap();
    let mut t = EventTransport::connect(server.addr()).unwrap();
    assert_eq!(t.negotiated_version(), None);
    for (i, r) in t.round_trip_many(&reqs).into_iter().enumerate() {
        let rt = r.expect("v2 flight");
        assert_eq!(rt.meta.request_bytes as usize, v1_lens[i] + 4);
    }
    assert_eq!(t.negotiated_version(), Some(MAX_SUPPORTED_VERSION));
    drop(t);
    server.shutdown();

    // v2 client ↔ v1-pinned server: the probe flight is rejected with
    // typed `UnsupportedVersion` replies, the client drains them, pins
    // v1, and transparently re-sends — the caller sees only v1-priced
    // successes. Every later flight is byte-identical in-order v1.
    let server = EventServer::spawn_with(Arc::new(EchoCa), 2, v1_pinned_config()).unwrap();
    let mut t = EventTransport::connect(server.addr()).unwrap();
    for (i, r) in t.round_trip_many(&reqs).into_iter().enumerate() {
        let rt = r.expect("fallback flight succeeds");
        assert_eq!(
            rt.response,
            RitmResponse::Error(ProtoError::UnknownCa(CaId::from_name(&format!("NegCA{i}"))))
        );
        assert_eq!(
            rt.meta.request_bytes as usize, v1_lens[i],
            "post-fallback frames must be the id-less v1 encoding"
        );
    }
    assert_eq!(t.negotiated_version(), Some(PROTOCOL_VERSION));
    let rt = t.round_trip(&reqs[0]).expect("pinned-v1 steady state");
    assert_eq!(rt.meta.request_bytes as usize, v1_lens[0]);
    drop(t);
    // The server answered 3 probe rejections + 3 re-sent + 1 follow-up.
    assert_eq!(server.shutdown(), 7);

    // v1-pinned client ↔ v2 server: no probe, v1 frames from the start.
    let server = EventServer::spawn(Arc::new(EchoCa), 2).unwrap();
    let mut t = EventTransport::connect_pinned_v1(server.addr()).unwrap();
    assert_eq!(t.negotiated_version(), Some(PROTOCOL_VERSION));
    let rt = t.round_trip(&reqs[0]).unwrap();
    assert_eq!(rt.meta.request_bytes as usize, v1_lens[0]);
    drop(t);
    assert_eq!(server.shutdown(), 1);
}

const FAST_REQUESTS: u64 = 8;

/// `CatchUp` stalls until every `GetStatus` behind it has been served —
/// which can only happen if the server completes requests out of order.
struct GatedCatchUp {
    fast_served: AtomicU64,
}

impl Service for GatedCatchUp {
    fn handle(&self, req: RitmRequest) -> RitmResponse {
        match req {
            RitmRequest::CatchUp { .. } => {
                let start = Instant::now();
                while self.fast_served.load(Ordering::SeqCst) < FAST_REQUESTS {
                    if start.elapsed() > Duration::from_secs(10) {
                        // In-order serving would deadlock here; surface it
                        // as a distinguishable reply instead of hanging.
                        return RitmResponse::Error(ProtoError::Busy);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                RitmResponse::Error(ProtoError::NotFound)
            }
            _ => {
                self.fast_served.fetch_add(1, Ordering::SeqCst);
                RitmResponse::Error(ProtoError::Unsupported)
            }
        }
    }
}

#[test]
fn slow_catch_up_does_not_head_of_line_block_statuses() {
    let service = Arc::new(GatedCatchUp {
        fast_served: AtomicU64::new(0),
    });
    let server = EventServer::spawn(Arc::clone(&service) as Arc<dyn Service>, 2).unwrap();
    let mut t = EventTransport::connect(server.addr()).unwrap();
    let ca = CaId::from_name("HolCA");
    // The slow request goes FIRST on the wire; the fast ones ride behind
    // it on the same connection.
    let mut reqs = vec![RitmRequest::CatchUp { ca, have: 0 }];
    reqs.extend((0..FAST_REQUESTS).map(|i| RitmRequest::GetStatus {
        ca,
        serial: SerialNumber::from_u24(i as u32),
    }));
    let results = t.round_trip_many(&reqs);
    assert_eq!(results.len(), reqs.len());
    // The gate opened: the statuses were all served while CatchUp waited,
    // which is exactly out-of-order completion (in-order serving would
    // have answered Busy after the 10s deadline).
    assert_eq!(
        results[0].as_ref().expect("catch-up completes").response,
        RitmResponse::Error(ProtoError::NotFound),
        "CatchUp must observe every status served before it finished"
    );
    for r in &results[1..] {
        assert_eq!(
            r.as_ref().expect("status completes").response,
            RitmResponse::Error(ProtoError::Unsupported)
        );
    }
    drop(t);
    server.shutdown();
}

#[test]
fn acceptor_pauses_at_the_connection_cap_and_resumes_on_close() {
    let config = EventServerConfig {
        max_connections: 2,
        ..EventServerConfig::default()
    };
    let server = EventServer::spawn_with(Arc::new(Nope), 2, config).unwrap();
    let req = RitmRequest::GetManifest {
        ca: CaId::from_name("CapCA"),
    };

    // Two connections fill the cap (a round trip each proves both live).
    let mut t1 = EventTransport::connect(server.addr()).unwrap();
    let mut t2 = EventTransport::connect(server.addr()).unwrap();
    t1.round_trip(&req).unwrap();
    t2.round_trip(&req).unwrap();

    // A third TCP connect lands in the kernel backlog — the server never
    // accepts it while at the cap, so its request gets no reply.
    let mut third = std::net::TcpStream::connect(server.addr()).unwrap();
    {
        use std::io::Write;
        third.write_all(&req.to_frame()).unwrap();
    }
    third
        .set_read_timeout(Some(Duration::from_millis(400)))
        .unwrap();
    let mut buf = [0u8; 4];
    let err = third
        .read_exact(&mut buf)
        .expect_err("no reply while over cap");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "expected a read timeout, got {err:?}"
    );
    assert_eq!(server.open_connections(), 2);
    assert!(
        server.accept_deferrals() > 0,
        "the acceptor must have observed the cap"
    );

    // Closing one connection frees a slot: the backlogged third is
    // accepted and its already-buffered request answered.
    drop(t1);
    third
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    third
        .read_exact(&mut buf)
        .expect("accepted after a slot freed");
    let len = u32::from_be_bytes(buf) as usize;
    let mut body = vec![0u8; len];
    third.read_exact(&mut body).unwrap();
    assert_eq!(
        RitmResponse::decode_body(&body).unwrap(),
        RitmResponse::Error(ProtoError::NotFound)
    );
    drop((t2, third));
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_with_a_typed_goodbye() {
    let config = EventServerConfig {
        keepalive: Some(Duration::from_millis(100)),
        ..EventServerConfig::default()
    };
    let server = EventServer::spawn_with(Arc::new(Nope), 2, config).unwrap();

    // A client that connects and never sends: dropped once the window
    // passes, with a best-effort IdleTimeout goodbye before the close.
    let mut idle = std::net::TcpStream::connect(server.addr()).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut prefix = [0u8; 4];
    idle.read_exact(&mut prefix).expect("goodbye frame");
    let len = u32::from_be_bytes(prefix) as usize;
    let mut body = vec![0u8; len];
    idle.read_exact(&mut body).unwrap();
    assert_eq!(
        RitmResponse::decode_body(&body).unwrap(),
        RitmResponse::Error(ProtoError::IdleTimeout { after_ms: 100 })
    );
    // ...and then EOF: the connection really is gone.
    assert_eq!(idle.read(&mut prefix).unwrap(), 0);
    assert_eq!(server.keepalive_drops(), 1);

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.open_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.open_connections(), 0);
    server.shutdown();
}

/// Sleeps past the keepalive window before answering.
struct Slow;

impl Service for Slow {
    fn handle(&self, _req: RitmRequest) -> RitmResponse {
        std::thread::sleep(Duration::from_millis(300));
        RitmResponse::Error(ProtoError::NotFound)
    }
}

#[test]
fn keepalive_never_fires_while_work_is_in_flight() {
    let config = EventServerConfig {
        keepalive: Some(Duration::from_millis(100)),
        ..EventServerConfig::default()
    };
    let server = EventServer::spawn_with(Arc::new(Slow), 2, config).unwrap();
    let mut t = EventTransport::connect(server.addr()).unwrap();
    // The handler takes 3× the keepalive window; the connection must
    // survive because its request is in flight the whole time.
    let rt = t
        .round_trip(&RitmRequest::GetManifest {
            ca: CaId::from_name("SlowCA"),
        })
        .expect("slow reply still arrives");
    assert_eq!(rt.response, RitmResponse::Error(ProtoError::NotFound));
    assert_eq!(server.keepalive_drops(), 0);
    drop(t);
    server.shutdown();
}

#[test]
fn three_endpoints_share_one_two_thread_runtime() {
    // The deployment shape: an RA status endpoint, a CA manifest endpoint,
    // and a CDN edge all multiplexed onto ONE reactor/executor pair — the
    // whole process stays within the 2-thread budget.
    let runtime = ritm_rt::Runtime::new(2);
    let handle = runtime.handle();
    let config = EventServerConfig::default();
    let ra = EventServer::spawn_on(Arc::new(Nope), &handle, config).unwrap();
    let ca = EventServer::spawn_on(Arc::new(EchoCa), &handle, config).unwrap();
    let edge = EventServer::spawn_on(Arc::new(EchoCa), &handle, config).unwrap();
    assert_eq!(ra.thread_count(), 2);
    assert_eq!(ca.thread_count(), 2);
    assert_eq!(edge.thread_count(), 2);

    let ca_id = CaId::from_name("SharedCA");
    let req = RitmRequest::GetManifest { ca: ca_id };
    let mut tr = EventTransport::connect(ra.addr()).unwrap();
    let mut tc = EventTransport::connect(ca.addr()).unwrap();
    let mut te = EventTransport::connect(edge.addr()).unwrap();
    assert_eq!(
        tr.round_trip(&req).unwrap().response,
        RitmResponse::Error(ProtoError::NotFound)
    );
    assert_eq!(
        tc.round_trip(&req).unwrap().response,
        RitmResponse::Error(ProtoError::UnknownCa(ca_id))
    );
    assert_eq!(
        te.round_trip(&req).unwrap().response,
        RitmResponse::Error(ProtoError::UnknownCa(ca_id))
    );

    // Shutting one endpoint down drains only ITS tasks; the runtime and
    // its sibling servers keep serving.
    drop(tr);
    assert_eq!(ra.shutdown(), 1);
    assert_eq!(
        tc.round_trip(&req).unwrap().response,
        RitmResponse::Error(ProtoError::UnknownCa(ca_id)),
        "sibling server must survive a peer's shutdown"
    );

    // And the runtime accepts new servers afterwards.
    let late = EventServer::spawn_on(Arc::new(Nope), &handle, config).unwrap();
    let mut tl = EventTransport::connect(late.addr()).unwrap();
    assert_eq!(
        tl.round_trip(&req).unwrap().response,
        RitmResponse::Error(ProtoError::NotFound)
    );
    drop((tc, te, tl));
    assert_eq!(ca.shutdown(), 2);
    assert_eq!(edge.shutdown(), 1);
    assert_eq!(late.shutdown(), 1);
    runtime.shutdown();
}
