//! Event-driven smoke test (the CI `event-smoke` step): one `EventServer`
//! on ≤2 OS threads serves ≥64 *simultaneously connected* OS-socket
//! clients — 8× the blocking `proto-smoke` scenario, which needs a thread
//! per connection — with every response validating cryptographically,
//! pipelined flights preserving order, and zero transport failures. Plus
//! the idle-cost half of the story: 1k+ concurrent connections parked on
//! one shared runtime decay the reactor tick to its 50ms ceiling (no
//! sub-millisecond sweeps while nothing is ready), and a live request
//! snaps the tick back.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::{RaConfig, RevocationAgent, StatusService};
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, SerialNumber};
use ritm_proto::event::{EventServer, EventTransport};
use ritm_proto::{RitmRequest, RitmResponse, Service, Transport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

const T0: u64 = 1_000_000;
const CLIENTS: u32 = 64;
const FLIGHTS_PER_CLIENT: u32 = 3;
const FLIGHT_SIZE: u32 = 4;

#[test]
fn sixty_four_concurrent_clients_on_two_threads() {
    // CA with 200 revocations, mirrored by an RA.
    let mut rng = StdRng::seed_from_u64(2025);
    let mut ca = CaDictionary::new(
        CaId::from_name("EvSmokeCA"),
        SigningKey::from_seed([5u8; 32]),
        10,
        1 << 10,
        &mut rng,
        T0,
    );
    let mut ra = RevocationAgent::new(RaConfig::default());
    ra.follow_ca(ca.ca(), ca.verifying_key(), *ca.signed_root())
        .unwrap();
    let serials: Vec<SerialNumber> = (0..200u32).map(|i| SerialNumber::from_u24(i * 2)).collect();
    let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
    ra.mirror_mut(&ca.ca())
        .unwrap()
        .apply_issuance(&iss, T0 + 1)
        .unwrap();

    let service = Arc::new(StatusService::new(ra.status_server()));
    let server = EventServer::spawn(Arc::clone(&service) as Arc<dyn Service>, 2).unwrap();
    assert!(server.thread_count() <= 2, "the whole point of the server");
    let addr = server.addr();
    let ca_id = ca.ca();
    let key = ca.verifying_key();

    // Every client connects before any client sends: the server holds all
    // 64 connections open at once on its ≤2 threads.
    let gate = Barrier::new(CLIENTS as usize);
    let transport_failures = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let gate = &gate;
            let transport_failures = &transport_failures;
            s.spawn(move || {
                let mut transport = EventTransport::connect(addr).expect("connect");
                gate.wait();
                for flight in 0..FLIGHTS_PER_CLIENT {
                    // One pipelined flight of FLIGHT_SIZE statuses, mixing
                    // revoked (even) and absent (odd) serials.
                    let queries: Vec<SerialNumber> = (0..FLIGHT_SIZE)
                        .map(|i| SerialNumber::from_u24((t * 131 + flight * 17 + i * 7) % 400))
                        .collect();
                    let reqs: Vec<RitmRequest> = queries
                        .iter()
                        .map(|&serial| RitmRequest::GetStatus { ca: ca_id, serial })
                        .collect();
                    for (q, result) in queries.iter().zip(transport.round_trip_many(&reqs)) {
                        let Ok(rt) = result else {
                            transport_failures.fetch_add(1, Ordering::Relaxed);
                            continue;
                        };
                        let RitmResponse::Status(payload) = rt.response else {
                            panic!("expected status for {q}");
                        };
                        let outcome = payload.statuses[0]
                            .validate(q, &key, 10, T0 + 2)
                            .expect("status validates over the event stack");
                        let expect_revoked = q.as_bytes().last().unwrap().is_multiple_of(2);
                        assert_eq!(outcome.is_revoked(), expect_revoked, "serial {q}");
                        assert!(rt.meta.response_bytes > 0);
                    }
                }
            });
        }
    });

    // The acceptance criterion: all clients were connected at once, served
    // from ≤2 threads, with zero transport failures.
    assert_eq!(transport_failures.load(Ordering::Relaxed), 0);
    assert!(
        server.peak_connections() >= CLIENTS as u64,
        "peak {} connections, expected ≥{CLIENTS}",
        server.peak_connections()
    );

    // The writer side stayed usable while clients hammered the socket.
    let more = ca
        .insert(&[SerialNumber::from_u24(9_999)], &mut rng, T0 + 5)
        .unwrap();
    ra.mirror_mut(&ca.ca())
        .unwrap()
        .apply_issuance(&more, T0 + 5)
        .unwrap();

    let served = server.shutdown();
    assert_eq!(served, (CLIENTS * FLIGHTS_PER_CLIENT * FLIGHT_SIZE) as u64);

    // Every request went through the encoded-response cache (hot serials
    // repeat, so some were served without touching the proof layer)...
    let encoded = service.server().encoded_cache_stats();
    assert_eq!(encoded.hits + encoded.misses, served);
    assert!(
        encoded.hits > 0,
        "hot serials must hit the encoded cache: {encoded:?}"
    );
    // ...and the proof cache underneath only ever sees encoded misses.
    let stats = service.server().cache_stats();
    assert_eq!(stats.hits + stats.misses, encoded.misses);
}

#[test]
fn big_frames_do_not_pin_reader_buffers() {
    use ritm_dictionary::CaId;
    use ritm_rt::codec::DEFAULT_RETAIN_CAPACITY;

    /// Answers every request with a ~1 MiB manifest blob.
    struct Big;
    impl Service for Big {
        fn handle(&self, _req: RitmRequest) -> RitmResponse {
            RitmResponse::Manifest(vec![0xAB; 1 << 20])
        }
    }

    let server = EventServer::spawn(Arc::new(Big), 2).unwrap();
    let addr = server.addr();
    // 64 live connections, each of which has read one megabyte-scale
    // frame. Pre-shrink-policy, every one of these kept its megabyte
    // read buffer resident for the life of the (idle) connection.
    let mut transports: Vec<EventTransport> = (0..64)
        .map(|_| EventTransport::connect(addr).expect("connect"))
        .collect();
    for t in transports.iter_mut() {
        let rt = t
            .round_trip(&RitmRequest::GetManifest {
                ca: CaId::from_name("BigCA"),
            })
            .expect("big manifest round trip");
        match rt.response {
            RitmResponse::Manifest(b) => assert_eq!(b.len(), 1 << 20),
            other => panic!("expected manifest, got {other:?}"),
        }
    }
    // Steady state: large completed frames are handed off whole (shed),
    // so no idle connection pins more than the retain cap.
    let mut total = 0usize;
    for t in &transports {
        let resident = t.reader_resident_capacity();
        assert!(
            resident <= DEFAULT_RETAIN_CAPACITY,
            "a reader kept {resident} bytes resident after a 1MiB frame"
        );
        total += resident;
    }
    assert!(
        total <= 64 * DEFAULT_RETAIN_CAPACITY,
        "fleet keeps {total} bytes of read scratch resident"
    );
    drop(transports);
    server.shutdown();
}

const IDLE_CLIENTS: usize = 1024;

#[test]
fn a_thousand_idle_connections_cost_no_busy_ticks() {
    use ritm_dictionary::CaId;
    use ritm_proto::event::EventServerConfig;
    use ritm_proto::ProtoError;

    struct Nope;
    impl Service for Nope {
        fn handle(&self, _req: RitmRequest) -> RitmResponse {
            RitmResponse::Error(ProtoError::NotFound)
        }
    }

    // One SHARED runtime; the server rides on it, so the runtime's
    // reactor stats describe exactly this workload.
    let runtime = ritm_rt::Runtime::new(2);
    let handle = runtime.handle();
    let server =
        EventServer::spawn_on(Arc::new(Nope), &handle, EventServerConfig::default()).unwrap();
    let addr = server.addr();

    // 1k+ OS-socket clients connect and then say nothing: every one is a
    // parked task, not a thread. Connects are throttled to the kernel
    // accept backlog so none stalls in SYN retransmission.
    let mut conns = Vec::with_capacity(IDLE_CLIENTS);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    for i in 0..IDLE_CLIENTS {
        conns.push(std::net::TcpStream::connect(addr).expect("connect idle client"));
        if i % 64 == 0 {
            while (server.open_connections() as usize) + 96 < i {
                assert!(
                    std::time::Instant::now() < deadline,
                    "accept stalled at {i}"
                );
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    }
    while (server.open_connections() as usize) < IDLE_CLIENTS {
        assert!(
            std::time::Instant::now() < deadline,
            "only {} of {IDLE_CLIENTS} accepted",
            server.open_connections()
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // Let the idle streak decay the tick to its ceiling (500µs doubling
    // to 50ms takes ~7 sweeps ≈ 120ms; give it a comfortable margin).
    std::thread::sleep(std::time::Duration::from_millis(400));
    let reactor = handle.reactor();
    let before = reactor.stats();
    assert!(
        before.parked >= 64,
        "expected ≥64 parked connection tasks, saw {}",
        before.parked
    );
    std::thread::sleep(std::time::Duration::from_secs(1));
    let after = reactor.stats();

    let sweeps = after.sweeps - before.sweeps;
    let backoff = after.backoff_sweeps - before.backoff_sweeps;
    // At the 50ms ceiling, two phase-aligned workers perform ≲ 2 sweeps
    // per period — call it ≤120/s with scheduling jitter. The old fixed
    // 500µs tick did ~4000/s: this is the idle-CPU win.
    assert!(
        sweeps <= 120,
        "idle runtime swept {sweeps}× in 1s — backoff did not engage"
    );
    assert!(backoff > 0, "no sweep ever reached the backoff ceiling");
    // Every sweep in the window ran at the ceiling: none was sub-ms.
    assert_eq!(
        sweeps, backoff,
        "a fully idle runtime must only sweep at the decayed interval"
    );
    assert!(
        after.last_interval_micros >= 10_000,
        "last sweep interval {}µs is not decayed",
        after.last_interval_micros
    );

    // Snap-back: one live request on a fresh connection is answered
    // promptly (the ready task marks activity and the tick recovers).
    let mut t = EventTransport::connect(addr).unwrap();
    let started = std::time::Instant::now();
    let rt = t
        .round_trip(&RitmRequest::GetManifest {
            ca: CaId::from_name("IdleCA"),
        })
        .expect("idle runtime still serves");
    assert_eq!(rt.response, RitmResponse::Error(ProtoError::NotFound));
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "snap-back took {:?}",
        started.elapsed()
    );
    let awake = reactor.stats();
    assert!(
        awake.activity_marks > after.activity_marks,
        "serving a request must mark reactor activity"
    );

    drop(t);
    drop(conns);
    server.shutdown();
    runtime.shutdown();
}
