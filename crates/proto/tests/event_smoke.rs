//! Event-driven smoke test (the CI `event-smoke` step): one `EventServer`
//! on ≤2 OS threads serves ≥64 *simultaneously connected* OS-socket
//! clients — 8× the blocking `proto-smoke` scenario, which needs a thread
//! per connection — with every response validating cryptographically,
//! pipelined flights preserving order, and zero transport failures.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::{RaConfig, RevocationAgent, StatusService};
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, SerialNumber};
use ritm_proto::event::{EventServer, EventTransport};
use ritm_proto::{RitmRequest, RitmResponse, Service, Transport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

const T0: u64 = 1_000_000;
const CLIENTS: u32 = 64;
const FLIGHTS_PER_CLIENT: u32 = 3;
const FLIGHT_SIZE: u32 = 4;

#[test]
fn sixty_four_concurrent_clients_on_two_threads() {
    // CA with 200 revocations, mirrored by an RA.
    let mut rng = StdRng::seed_from_u64(2025);
    let mut ca = CaDictionary::new(
        CaId::from_name("EvSmokeCA"),
        SigningKey::from_seed([5u8; 32]),
        10,
        1 << 10,
        &mut rng,
        T0,
    );
    let mut ra = RevocationAgent::new(RaConfig::default());
    ra.follow_ca(ca.ca(), ca.verifying_key(), *ca.signed_root())
        .unwrap();
    let serials: Vec<SerialNumber> = (0..200u32).map(|i| SerialNumber::from_u24(i * 2)).collect();
    let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
    ra.mirror_mut(&ca.ca())
        .unwrap()
        .apply_issuance(&iss, T0 + 1)
        .unwrap();

    let service = Arc::new(StatusService::new(ra.status_server()));
    let server = EventServer::spawn(Arc::clone(&service) as Arc<dyn Service>, 2).unwrap();
    assert!(server.thread_count() <= 2, "the whole point of the server");
    let addr = server.addr();
    let ca_id = ca.ca();
    let key = ca.verifying_key();

    // Every client connects before any client sends: the server holds all
    // 64 connections open at once on its ≤2 threads.
    let gate = Barrier::new(CLIENTS as usize);
    let transport_failures = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let gate = &gate;
            let transport_failures = &transport_failures;
            s.spawn(move || {
                let mut transport = EventTransport::connect(addr).expect("connect");
                gate.wait();
                for flight in 0..FLIGHTS_PER_CLIENT {
                    // One pipelined flight of FLIGHT_SIZE statuses, mixing
                    // revoked (even) and absent (odd) serials.
                    let queries: Vec<SerialNumber> = (0..FLIGHT_SIZE)
                        .map(|i| SerialNumber::from_u24((t * 131 + flight * 17 + i * 7) % 400))
                        .collect();
                    let reqs: Vec<RitmRequest> = queries
                        .iter()
                        .map(|&serial| RitmRequest::GetStatus { ca: ca_id, serial })
                        .collect();
                    for (q, result) in queries.iter().zip(transport.round_trip_many(&reqs)) {
                        let Ok(rt) = result else {
                            transport_failures.fetch_add(1, Ordering::Relaxed);
                            continue;
                        };
                        let RitmResponse::Status(payload) = rt.response else {
                            panic!("expected status for {q}");
                        };
                        let outcome = payload.statuses[0]
                            .validate(q, &key, 10, T0 + 2)
                            .expect("status validates over the event stack");
                        let expect_revoked = q.as_bytes().last().unwrap().is_multiple_of(2);
                        assert_eq!(outcome.is_revoked(), expect_revoked, "serial {q}");
                        assert!(rt.meta.response_bytes > 0);
                    }
                }
            });
        }
    });

    // The acceptance criterion: all clients were connected at once, served
    // from ≤2 threads, with zero transport failures.
    assert_eq!(transport_failures.load(Ordering::Relaxed), 0);
    assert!(
        server.peak_connections() >= CLIENTS as u64,
        "peak {} connections, expected ≥{CLIENTS}",
        server.peak_connections()
    );

    // The writer side stayed usable while clients hammered the socket.
    let more = ca
        .insert(&[SerialNumber::from_u24(9_999)], &mut rng, T0 + 5)
        .unwrap();
    ra.mirror_mut(&ca.ca())
        .unwrap()
        .apply_issuance(&more, T0 + 5)
        .unwrap();

    let served = server.shutdown();
    assert_eq!(served, (CLIENTS * FLIGHTS_PER_CLIENT * FLIGHT_SIZE) as u64);

    // The epoch-keyed cache saw real traffic (hot serials repeat).
    let stats = service.server().cache_stats();
    assert_eq!(stats.hits + stats.misses, served);
    assert!(stats.hits > 0, "hot serials must hit the cache: {stats:?}");
}
