//! Acceptance: the full CA → CDN edge → RA sync → client status fetch
//! pipeline runs entirely through `Service`/`Transport` over (a) the
//! in-process loopback, (b) the `ritm-net` simulator, (c) a real
//! `std::net` TCP socket served thread-per-connection, and (d) the
//! event-driven `EventServer`/`EventTransport` pair (non-blocking sockets,
//! ≤2 server threads, pipelined flights) — and all four transports move
//! byte-identical envelopes: same signed roots, same revocation verdicts,
//! same request and response byte counts. The event lane runs twice: once
//! negotiating envelope v2 (multiplexed, request-id tagged — every frame
//! exactly 4 bytes larger in each direction, nothing else different) and
//! once pinned to v1, which must be byte-identical to the baseline
//! including every count. Plus version negotiation: an unknown-version
//! request yields a typed `ProtoError::UnsupportedVersion` response, never
//! a panic or a silent drop.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::{RaConfig, RevocationAgent, StatusService, SyncReport};
use ritm_ca::{CertificationAuthority, Manifest};
use ritm_cdn::network::Cdn;
use ritm_cdn::regions::Region;
use ritm_cdn::service::EdgeService;
use ritm_client::validator::{RootTracker, Verdict};
use ritm_dictionary::{SerialNumber, SignedRoot};
use ritm_net::time::{SimDuration, SimTime};
use ritm_proto::event::{EventServer, EventTransport};
use ritm_proto::sim::SimTransport;
use ritm_proto::tcp::{TcpServer, TcpTransport};
use ritm_proto::{
    split_frame, Loopback, ProtoError, RitmRequest, RitmResponse, Service, Transport,
    MAX_SUPPORTED_VERSION,
};
use std::collections::HashMap;
use std::sync::Arc;

const T0: u64 = 1_397_000_000;
const DELTA: u64 = 10;
const REVOKED: u32 = 17; // issuance order → serial 17 is revoked
const VALID: u32 = 40;

/// Everything one pipeline run produced, for cross-transport comparison.
#[derive(Debug, PartialEq)]
struct PipelineOutcome {
    sync: SyncReport,
    mirrored_root: SignedRoot,
    manifest_delta: u64,
    status_meta_bytes: (u64, u64),
    payload_bytes: Vec<u8>,
    revoked_verdict: Verdict,
    valid_verdict: Verdict,
}

/// Builds the identical world every transport serves: a CA that issued 60
/// certificates, revoked 30 of them, and published a freshness refresh.
/// Also returns the genesis root RAs bootstrap from.
fn build_world() -> (CertificationAuthority, Cdn, SignedRoot) {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut cdn = Cdn::new(SimDuration::from_secs(DELTA));
    let mut ca = CertificationAuthority::new(
        "TransportCA",
        ritm_crypto::ed25519::SigningKey::from_seed([7u8; 32]),
        DELTA,
        1 << 12,
        &mut cdn,
        &mut rng,
        T0,
    );
    let genesis = *ca.dictionary().signed_root();
    let key = ritm_crypto::ed25519::SigningKey::from_seed([8u8; 32]).verifying_key();
    let serials: Vec<SerialNumber> = (0..60)
        .map(|i| {
            ca.issue_certificate(&format!("host{i}.example"), key, 0, u64::MAX)
                .serial
        })
        .collect();
    let to_revoke: Vec<SerialNumber> = serials.iter().step_by(2).copied().collect();
    ca.revoke(&to_revoke, &mut cdn, &mut rng, T0 + 1).unwrap();
    ca.refresh(&mut cdn, &mut rng, T0 + 2).unwrap();
    (ca, cdn, genesis)
}

/// Runs RA sync + client fetches against arbitrary transports built from
/// the two services by `make_edge_transport` / `make_status_transport`.
fn run_pipeline<TE, TS>(
    ca: &CertificationAuthority,
    genesis: SignedRoot,
    mut edge_transport: TE,
    make_status_transport: impl FnOnce(StatusService) -> TS,
) -> PipelineOutcome
where
    TE: Transport,
    TS: Transport,
{
    // RA bootstrap + sync, entirely through the transport.
    let mut ra = RevocationAgent::new(RaConfig {
        delta: DELTA,
        ..Default::default()
    });
    ra.follow_ca(ca.id(), ca.verifying_key(), genesis).unwrap();
    let sync = ra.sync_via(&mut edge_transport, SimTime::from_secs(T0 + 2));
    assert_eq!(sync.issuances_applied, 1);
    assert_eq!(sync.revocations_applied, 30);
    assert_eq!(sync.freshness_applied, 1);
    assert_eq!(sync.transport_failures, 0);
    let mirrored_root = *ra.mirror(&ca.id()).unwrap().signed_root();

    // Client bootstrap: the manifest over the same edge transport.
    let manifest = match edge_transport
        .round_trip(&RitmRequest::GetManifest { ca: ca.id() })
        .unwrap()
        .response
    {
        RitmResponse::Manifest(bytes) => {
            Manifest::from_json_signed(std::str::from_utf8(&bytes).unwrap(), &ca.verifying_key())
                .expect("manifest verifies")
        }
        other => panic!("expected manifest, got {other:?}"),
    };

    // Client status fetches against the RA's read path.
    let mut status_transport = make_status_transport(StatusService::new(ra.status_server()));
    let mut keys = HashMap::new();
    keys.insert(ca.id(), ca.verifying_key());
    let mut tracker = RootTracker::new();
    let revoked_chain = [(ca.id(), SerialNumber::from_u24(REVOKED))];
    let fetched = ritm_client::fetch_and_validate(
        &mut status_transport,
        &revoked_chain,
        &keys,
        DELTA,
        T0 + 3,
        &mut tracker,
    )
    .expect("revoked fetch validates");
    let valid_chain = [(ca.id(), SerialNumber::from_u24(VALID))];
    let valid = ritm_client::fetch_and_validate(
        &mut status_transport,
        &valid_chain,
        &keys,
        DELTA,
        T0 + 3,
        &mut tracker,
    )
    .expect("valid fetch validates");

    PipelineOutcome {
        sync,
        mirrored_root,
        manifest_delta: manifest.delta,
        status_meta_bytes: (fetched.meta.request_bytes, fetched.meta.response_bytes),
        payload_bytes: fetched.payload.to_bytes(),
        revoked_verdict: fetched.verdict,
        valid_verdict: valid.verdict,
    }
}

/// Strips the transport-dependent latency so the remaining outcome must be
/// bit-identical across transports.
fn normalized(mut o: PipelineOutcome) -> PipelineOutcome {
    o.sync.latency = SimDuration::ZERO;
    o
}

fn run_loopback() -> PipelineOutcome {
    let (ca, cdn, genesis) = build_world();
    let edge = EdgeService::new(cdn, Region::Europe, 99);
    edge.set_now(SimTime::from_secs(T0 + 2));
    run_pipeline(&ca, genesis, Loopback::new(edge), Loopback::new)
}

fn run_simulated() -> PipelineOutcome {
    let (ca, cdn, genesis) = build_world();
    let edge = EdgeService::new(cdn, Region::Europe, 99);
    edge.set_now(SimTime::from_secs(T0 + 2));
    run_pipeline(
        &ca,
        genesis,
        SimTransport::new(edge, SimDuration::from_millis(15)),
        |status| SimTransport::new(status, SimDuration::from_millis(3)),
    )
}

fn run_tcp() -> (PipelineOutcome, u64) {
    let (ca, cdn, genesis) = build_world();
    let edge = Arc::new(EdgeService::new(cdn, Region::Europe, 99));
    edge.set_now(SimTime::from_secs(T0 + 2));
    let edge_server = TcpServer::spawn(Arc::clone(&edge) as Arc<dyn Service>, 2).unwrap();
    let edge_transport = TcpTransport::connect(edge_server.addr()).unwrap();

    let mut status_server_slot = None;
    let outcome = run_pipeline(&ca, genesis, edge_transport, |status| {
        let server = TcpServer::spawn(Arc::new(status) as Arc<dyn Service>, 2).unwrap();
        let t = TcpTransport::connect(server.addr()).unwrap();
        status_server_slot = Some(server);
        t
    });
    let served = edge_server.shutdown() + status_server_slot.unwrap().shutdown();
    (outcome, served)
}

fn run_event(pin_v1: bool) -> (PipelineOutcome, u64, usize) {
    let connect = |addr| {
        if pin_v1 {
            EventTransport::connect_pinned_v1(addr)
        } else {
            EventTransport::connect(addr)
        }
    };
    let (ca, cdn, genesis) = build_world();
    let edge = Arc::new(EdgeService::new(cdn, Region::Europe, 99));
    edge.set_now(SimTime::from_secs(T0 + 2));
    let edge_server = EventServer::spawn(Arc::clone(&edge) as Arc<dyn Service>, 2).unwrap();
    let threads = edge_server.thread_count();
    let edge_transport = connect(edge_server.addr()).unwrap();

    let mut status_server_slot = None;
    let outcome = run_pipeline(&ca, genesis, edge_transport, |status| {
        let server = EventServer::spawn(Arc::new(status) as Arc<dyn Service>, 2).unwrap();
        let t = connect(server.addr()).unwrap();
        status_server_slot = Some(server);
        t
    });
    let served = edge_server.shutdown() + status_server_slot.unwrap().shutdown();
    (outcome, served, threads)
}

#[test]
fn pipeline_is_transport_invariant() {
    let loopback = normalized(run_loopback());
    let simulated = normalized(run_simulated());
    let (tcp, tcp_served) = run_tcp();
    let tcp = normalized(tcp);
    let (event, event_served, event_threads) = run_event(false);
    let mut event = normalized(event);
    let (event_v1, event_v1_served, _) = run_event(true);
    let event_v1 = normalized(event_v1);

    // Identical signed roots, verdicts, payload bytes, and byte counts.
    assert_eq!(loopback, simulated);
    assert_eq!(loopback, tcp);

    // The v1-pinned event lane is byte-identical to the baseline — the
    // v2 envelope changed nothing for v1 peers, down to the last count.
    assert_eq!(loopback, event_v1);
    assert_eq!(event_v1_served, 5);

    // The v2 event lane moved the exact same protocol bytes plus the
    // 4-byte request id per frame, each direction: sync is two frames up
    // and two down (+8/+8), a status fetch one each (+4/+4). Nothing but
    // the envelope overhead may differ.
    assert_eq!(
        event.sync.bytes_uploaded,
        loopback.sync.bytes_uploaded + 8,
        "v2 sync upload must cost exactly one id per request frame"
    );
    assert_eq!(
        event.sync.bytes_downloaded,
        loopback.sync.bytes_downloaded + 8,
        "v2 sync download must cost exactly one id per response frame"
    );
    assert_eq!(event.status_meta_bytes.0, loopback.status_meta_bytes.0 + 4);
    assert_eq!(event.status_meta_bytes.1, loopback.status_meta_bytes.1 + 4);
    event.sync.bytes_uploaded -= 8;
    event.sync.bytes_downloaded -= 8;
    event.status_meta_bytes.0 -= 4;
    event.status_meta_bytes.1 -= 4;
    assert_eq!(loopback, event);
    assert_eq!(loopback.mirrored_root.size, 30);
    assert!(
        matches!(loopback.revoked_verdict, Verdict::Revoked { serial, .. }
        if serial == SerialNumber::from_u24(REVOKED))
    );
    assert_eq!(loopback.valid_verdict, Verdict::AllValid);
    assert_eq!(loopback.manifest_delta, DELTA);
    assert!(loopback.sync.bytes_downloaded > 0 && loopback.sync.bytes_uploaded > 0);
    // TCP really served every round trip: sync (2) + manifest (1) on the
    // edge server, two status fetches on the status server.
    assert_eq!(tcp_served, 5);
    // The event-driven lane served the same five, from ≤2 OS threads per
    // server instead of a thread per connection.
    assert_eq!(event_served, 5);
    assert!(event_threads <= 2, "event server must stay on ≤2 threads");
}

#[test]
fn flight_scratch_encoding_is_byte_identical_to_per_frame_encoding() {
    // The event transport now encodes a whole flight into one pooled
    // scratch buffer (`to_frame_into` / `to_frame_v2_into`) written as a
    // single segment. The wire must not be able to tell: the scratch
    // bytes are exactly the concatenation of the per-request frames, and
    // the recorded per-request lengths match the individual encodings.
    let ca = ritm_dictionary::CaId::from_name("FlightCA");
    let reqs: Vec<RitmRequest> = (0..7u32)
        .map(|i| RitmRequest::GetStatus {
            ca,
            serial: SerialNumber::from_u24(i * 3),
        })
        .chain(std::iter::once(RitmRequest::GetSignedRoot { ca }))
        .collect();

    // v2 (multiplexed) flight with consecutive ids.
    let base = 41u32;
    let mut scratch = Vec::new();
    let mut lens = Vec::new();
    for (i, req) in reqs.iter().enumerate() {
        let before = scratch.len();
        req.to_frame_v2_into(base.wrapping_add(i as u32), &mut scratch);
        lens.push(scratch.len() - before);
    }
    let mut expected = Vec::new();
    for (i, req) in reqs.iter().enumerate() {
        let frame = req.to_frame_v2(base.wrapping_add(i as u32));
        assert_eq!(lens[i], frame.len(), "request {i} length mismatch");
        expected.extend_from_slice(&frame);
    }
    assert_eq!(scratch, expected, "v2 flight scratch differs from frames");

    // v1 (in-order) flight.
    let mut scratch = Vec::new();
    let mut expected = Vec::new();
    for req in &reqs {
        req.to_frame_into(&mut scratch);
        expected.extend_from_slice(&req.to_frame());
    }
    assert_eq!(scratch, expected, "v1 flight scratch differs from frames");
}

#[test]
fn unknown_version_yields_typed_error_on_every_transport() {
    let (ca, cdn, _) = build_world();
    let edge = Arc::new(EdgeService::new(cdn, Region::Europe, 99));
    edge.set_now(SimTime::from_secs(T0 + 2));

    // Craft a FetchDelta frame claiming protocol version 42.
    let mut frame = RitmRequest::FetchDelta { ca: ca.id() }.to_frame();
    frame[4] = 42;

    // In-process: straight through the service choke point.
    let resp_frame = edge.handle_frame(&frame);
    let (body, _) = split_frame(&resp_frame).unwrap();
    assert_eq!(
        RitmResponse::decode_body(body).unwrap(),
        RitmResponse::Error(ProtoError::UnsupportedVersion {
            requested: 42,
            supported: MAX_SUPPORTED_VERSION,
        })
    );

    // Real TCP: the server answers (no drop, no crash) with the same error.
    let server = TcpServer::spawn(Arc::clone(&edge) as Arc<dyn Service>, 1).unwrap();
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream.write_all(&frame).unwrap();
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix).unwrap();
        let len = u32::from_be_bytes(prefix) as usize;
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).unwrap();
        assert_eq!(
            RitmResponse::decode_body(&body).unwrap(),
            RitmResponse::Error(ProtoError::UnsupportedVersion {
                requested: 42,
                supported: MAX_SUPPORTED_VERSION,
            })
        );
        // And the connection stays usable for a well-formed retry at the
        // supported version.
        stream
            .write_all(&RitmRequest::GetSignedRoot { ca: ca.id() }.to_frame())
            .unwrap();
        stream.read_exact(&mut prefix).unwrap();
        let len = u32::from_be_bytes(prefix) as usize;
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).unwrap();
        assert!(matches!(
            RitmResponse::decode_body(&body).unwrap(),
            RitmResponse::SignedRoot(_)
        ));
    }
    server.shutdown();

    // Event-driven server: same typed negotiation over a blocking client
    // socket (the server side is non-blocking; the wire is the wire).
    let server = EventServer::spawn(Arc::clone(&edge) as Arc<dyn Service>, 2).unwrap();
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream.write_all(&frame).unwrap();
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix).unwrap();
        let len = u32::from_be_bytes(prefix) as usize;
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).unwrap();
        assert_eq!(
            RitmResponse::decode_body(&body).unwrap(),
            RitmResponse::Error(ProtoError::UnsupportedVersion {
                requested: 42,
                supported: MAX_SUPPORTED_VERSION,
            })
        );
    }
    server.shutdown();
}
