//! TCP smoke test (the CI `proto-smoke` step): a real `std::net` server in
//! front of an RA's lock-free status path serves concurrent client threads
//! end to end — every response validates cryptographically, the bounded
//! acceptor pool survives more connections than workers, and shutdown is
//! clean.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::{RaConfig, RevocationAgent, StatusService};
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, SerialNumber};
use ritm_proto::tcp::{TcpServer, TcpTransport};
use ritm_proto::{RitmRequest, RitmResponse, Service, Transport};
use std::sync::Arc;

const T0: u64 = 1_000_000;
const THREADS: u32 = 8;
const REQUESTS_PER_THREAD: u32 = 50;

#[test]
fn concurrent_tcp_clients_get_valid_statuses() {
    // CA with 200 revocations, mirrored by an RA.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut ca = CaDictionary::new(
        CaId::from_name("TcpSmokeCA"),
        SigningKey::from_seed([3u8; 32]),
        10,
        1 << 10,
        &mut rng,
        T0,
    );
    let mut ra = RevocationAgent::new(RaConfig::default());
    ra.follow_ca(ca.ca(), ca.verifying_key(), *ca.signed_root())
        .unwrap();
    let serials: Vec<SerialNumber> = (0..200u32).map(|i| SerialNumber::from_u24(i * 2)).collect();
    let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
    ra.mirror_mut(&ca.ca())
        .unwrap()
        .apply_issuance(&iss, T0 + 1)
        .unwrap();

    // Serve the RA's read path over real OS sockets with a pool smaller
    // than the client count: connections must queue, not crash.
    let service = Arc::new(StatusService::new(ra.status_server()));
    let server = TcpServer::spawn(Arc::clone(&service) as Arc<dyn Service>, 4).unwrap();
    let addr = server.addr();
    let ca_id = ca.ca();
    let key = ca.verifying_key();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let mut transport = TcpTransport::connect(addr).expect("connect");
                for i in 0..REQUESTS_PER_THREAD {
                    // Mix revoked (even) and absent (odd) serials.
                    let q = SerialNumber::from_u24((t * 131 + i * 7) % 400);
                    let rt = transport
                        .round_trip(&RitmRequest::GetStatus {
                            ca: ca_id,
                            serial: q,
                        })
                        .expect("round trip");
                    let RitmResponse::Status(payload) = rt.response else {
                        panic!("expected status");
                    };
                    let outcome = payload.statuses[0]
                        .validate(&q, &key, 10, T0 + 2)
                        .expect("status validates over TCP");
                    let expect_revoked = q.as_bytes().last().unwrap().is_multiple_of(2);
                    assert_eq!(outcome.is_revoked(), expect_revoked, "serial {q}");
                    assert!(rt.meta.response_bytes > 0);
                }
            });
        }
    });

    // While clients hammered the socket, the writer side stayed usable:
    // the RA (owner) can still mutate mirrors after the fact.
    let more = ca
        .insert(&[SerialNumber::from_u24(9_999)], &mut rng, T0 + 5)
        .unwrap();
    ra.mirror_mut(&ca.ca())
        .unwrap()
        .apply_issuance(&more, T0 + 5)
        .unwrap();

    let served = server.shutdown();
    assert_eq!(served, (THREADS * REQUESTS_PER_THREAD) as u64);

    // The epoch-keyed cache saw real traffic (hot serials repeat).
    let stats = service.server().cache_stats();
    assert_eq!(stats.hits + stats.misses, served);
    assert!(stats.hits > 0, "hot serials must hit the cache: {stats:?}");
}
