//! A deliberately misbehaving CA for the §V attack experiments.
//!
//! The equivocating CA maintains two divergent dictionary versions of the
//! same size — one that hides a revocation — and shows different versions to
//! different parts of the system. Consistency checking (exchanging latest
//! signed roots) must catch it: two validly-signed roots with equal `n` and
//! different root hashes are transferable proof of misbehavior.

use rand::RngCore;
use ritm_crypto::ed25519::{SigningKey, VerifyingKey};
use ritm_dictionary::{CaDictionary, CaId, RevocationStatus, SerialNumber, SignedRoot};

/// Which view of the equivocating CA a victim is shown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum View {
    /// The honest view: the revocation is present.
    Honest,
    /// The forked view: the target revocation is hidden.
    Hiding,
}

/// A CA running two dictionaries of equal size to hide one revocation.
pub struct EquivocatingCa {
    honest: CaDictionary,
    hiding: CaDictionary,
    target: SerialNumber,
}

impl core::fmt::Debug for EquivocatingCa {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EquivocatingCa")
            .field("ca", &self.honest.ca())
            .field("target", &self.target)
            .finish()
    }
}

impl EquivocatingCa {
    /// Builds the fork: both views revoke `cover` serials (so the sizes
    /// match), but only the honest view revokes `target`.
    ///
    /// `cover` must contain at least one serial; the hiding view substitutes
    /// an extra cover serial for the target to keep `n` identical.
    ///
    /// # Panics
    ///
    /// Panics if `cover` is empty or contains `target`.
    #[allow(clippy::too_many_arguments)] // the fork setup is inherently wide
    pub fn new<R: RngCore + ?Sized>(
        name: &str,
        key: SigningKey,
        delta: u64,
        chain_len: u64,
        target: SerialNumber,
        cover: &[SerialNumber],
        substitute: SerialNumber,
        rng: &mut R,
        now: u64,
    ) -> Self {
        assert!(!cover.is_empty(), "need cover revocations");
        assert!(!cover.contains(&target), "target must not be in cover");
        assert!(
            !cover.contains(&substitute) && substitute != target,
            "substitute must be distinct"
        );
        let id = CaId::from_name(name);
        let mut honest = CaDictionary::new(id, key.clone(), delta, chain_len, rng, now);
        let mut hiding = CaDictionary::new(id, key, delta, chain_len, rng, now);

        let mut honest_batch = cover.to_vec();
        honest_batch.push(target);
        honest.insert(&honest_batch, rng, now + 1);

        let mut hiding_batch = cover.to_vec();
        hiding_batch.push(substitute);
        hiding.insert(&hiding_batch, rng, now + 1);

        debug_assert_eq!(honest.len(), hiding.len(), "views must have equal n");
        EquivocatingCa {
            honest,
            hiding,
            target,
        }
    }

    /// The CA id.
    pub fn ca(&self) -> CaId {
        self.honest.ca()
    }

    /// The CA's public key (genuine — both views are validly signed).
    pub fn verifying_key(&self) -> VerifyingKey {
        self.honest.verifying_key()
    }

    /// The serial being hidden from part of the system.
    pub fn target(&self) -> SerialNumber {
        self.target
    }

    /// The signed root a victim in `view` sees.
    pub fn signed_root(&self, view: View) -> SignedRoot {
        match view {
            View::Honest => *self.honest.signed_root(),
            View::Hiding => *self.hiding.signed_root(),
        }
    }

    /// A full revocation status for `serial` as served from `view`.
    pub fn prove(&self, view: View, serial: &SerialNumber, now: u64) -> Option<RevocationStatus> {
        match view {
            View::Honest => self.honest.prove(serial, now),
            View::Hiding => self.hiding.prove(serial, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_dictionary::consistency::{Observation, RootObservatory};

    fn equivocator() -> (EquivocatingCa, StdRng) {
        let mut rng = StdRng::seed_from_u64(13);
        let cover: Vec<SerialNumber> = (10..15u32).map(SerialNumber::from_u24).collect();
        let ca = EquivocatingCa::new(
            "EvilCA",
            SigningKey::from_seed([6u8; 32]),
            10,
            128,
            SerialNumber::from_u24(1),
            &cover,
            SerialNumber::from_u24(99),
            &mut rng,
            1_000,
        );
        (ca, rng)
    }

    #[test]
    fn views_disagree_on_target_only() {
        let (ca, _) = equivocator();
        let target = ca.target();
        let honest = ca
            .prove(View::Honest, &target, 1_002)
            .unwrap()
            .validate(&target, &ca.verifying_key(), 10, 1_002)
            .unwrap();
        assert!(honest.is_revoked(), "honest view shows the revocation");

        let hiding = ca
            .prove(View::Hiding, &target, 1_002)
            .unwrap()
            .validate(&target, &ca.verifying_key(), 10, 1_002)
            .unwrap();
        assert!(!hiding.is_revoked(), "hiding view conceals it");

        // A cover serial agrees in both views.
        let cover = SerialNumber::from_u24(12);
        for view in [View::Honest, View::Hiding] {
            let outcome = ca
                .prove(view, &cover, 1_002)
                .unwrap()
                .validate(&cover, &ca.verifying_key(), 10, 1_002)
                .unwrap();
            assert!(outcome.is_revoked());
        }
    }

    #[test]
    fn both_views_sign_validly_with_equal_size() {
        let (ca, _) = equivocator();
        let a = ca.signed_root(View::Honest);
        let b = ca.signed_root(View::Hiding);
        assert_eq!(a.size, b.size);
        assert_ne!(a.root, b.root);
        assert!(a.verify(&ca.verifying_key()).is_ok());
        assert!(b.verify(&ca.verifying_key()).is_ok());
    }

    #[test]
    fn consistency_check_produces_proof() {
        let (ca, _) = equivocator();
        let mut obs = RootObservatory::new();
        obs.register_ca(ca.ca(), ca.verifying_key());
        assert_eq!(obs.observe(ca.signed_root(View::Honest)), Observation::New);
        match obs.observe(ca.signed_root(View::Hiding)) {
            Observation::Equivocation(proof) => {
                assert!(proof.verify(&ca.verifying_key()));
            }
            other => panic!("expected equivocation proof, got {other:?}"),
        }
    }
}
