//! Crash-durable issuance log for the CA.
//!
//! Every revocation issuance is appended to an append-only file *before*
//! it is disseminated, so a CA process that dies at any point can rebuild
//! its dictionary — including every historical signed root paged catch-up
//! anchors to — by replaying the log through
//! [`CaDictionary::replay`](ritm_dictionary::CaDictionary::replay).
//!
//! ## Record framing
//!
//! ```text
//! u32 BE payload length ‖ u32 BE CRC-32 of payload ‖ payload
//! ```
//!
//! where the payload is a serialized
//! [`RevocationIssuance`]. A crash
//! mid-append leaves a torn tail: a record whose header or payload is
//! incomplete, or whose CRC does not match. Recovery parses the longest
//! clean prefix, truncates the file back to it, and continues from there —
//! the paper's signed-root verification chain makes anything past the last
//! fully-written record unrecoverable anyway (its root was never
//! disseminated).

use ritm_dictionary::RevocationIssuance;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Upper bound on one log record's payload (a single issuance batch). A
/// length prefix past this is treated as corruption, not an allocation
/// request — the same posture the wire codecs take toward forged counts.
pub const MAX_RECORD_LEN: usize = 1 << 26;

const HEADER_LEN: usize = 8;

pub use ritm_crypto::crc32::crc32;

/// Why a log prefix ended (torn tail taxonomy; all of them truncate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// The file ends exactly at a record boundary.
    Clean,
    /// The last record's length/CRC header or payload is incomplete — the
    /// classic crash-mid-append shape.
    Torn,
    /// A complete record whose CRC or payload decoding failed — bit rot or
    /// a forged log; everything from it on is discarded.
    Corrupt,
}

/// Result of scanning a log image: the decoded records, the byte length of
/// the clean prefix that produced them, and how the scan ended.
#[derive(Debug)]
pub struct LogScan {
    /// Every fully-verified record, in append order.
    pub records: Vec<RevocationIssuance>,
    /// Bytes of the clean prefix; recovery truncates the file to this.
    pub good_len: u64,
    /// How the scan ended.
    pub tail: TailState,
}

/// Scans a raw log image into the longest clean prefix of records. Pure —
/// no I/O — so property tests can drive it with arbitrary torn/corrupt
/// images directly.
pub fn decode_records(bytes: &[u8]) -> LogScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return LogScan {
                records,
                good_len: pos as u64,
                tail: TailState::Clean,
            };
        }
        if rest.len() < HEADER_LEN {
            return LogScan {
                records,
                good_len: pos as u64,
                tail: TailState::Torn,
            };
        }
        let len = u32::from_be_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_be_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            return LogScan {
                records,
                good_len: pos as u64,
                tail: TailState::Corrupt,
            };
        }
        if rest.len() < HEADER_LEN + len {
            return LogScan {
                records,
                good_len: pos as u64,
                tail: TailState::Torn,
            };
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if crc32(payload) != crc {
            return LogScan {
                records,
                good_len: pos as u64,
                tail: TailState::Corrupt,
            };
        }
        match RevocationIssuance::from_bytes(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => {
                return LogScan {
                    records,
                    good_len: pos as u64,
                    tail: TailState::Corrupt,
                }
            }
        }
        pos += HEADER_LEN + len;
    }
}

/// Encodes one record frame (length ‖ CRC ‖ payload) — the exact bytes
/// [`IssuanceLog::append`] writes.
pub fn encode_record(issuance: &RevocationIssuance) -> Vec<u8> {
    let payload = issuance.to_bytes();
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&crc32(&payload).to_be_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// An open, append-only issuance log.
#[derive(Debug)]
pub struct IssuanceLog {
    path: PathBuf,
    file: File,
}

impl IssuanceLog {
    /// Opens (creating if absent) the log at `path`, scans it, truncates
    /// any torn or corrupt tail, and returns the log handle positioned for
    /// appending plus the scan result.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening, reading, or truncating.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<(Self, LogScan)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scan = decode_records(&bytes);
        if scan.good_len < bytes.len() as u64 {
            file.set_len(scan.good_len)?;
        }
        file.seek(SeekFrom::Start(scan.good_len))?;
        Ok((IssuanceLog { path, file }, scan))
    }

    /// Appends one issuance record and flushes it to stable storage. Called
    /// *before* dissemination, so a crash after the publish can always be
    /// replayed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on error the file may hold a torn tail,
    /// which the next [`IssuanceLog::open`] truncates away.
    pub fn append(&mut self, issuance: &RevocationIssuance) -> std::io::Result<()> {
        self.file.write_all(&encode_record(issuance))?;
        self.file.sync_data()
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::{CaDictionary, CaId, SerialNumber};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ritm-wal-{}-{}.log", std::process::id(), tag))
    }

    fn sample_records(n: usize) -> Vec<RevocationIssuance> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ca = CaDictionary::new(
            CaId::from_name("WalCA"),
            SigningKey::from_seed([8u8; 32]),
            10,
            64,
            &mut rng,
            1_000,
        );
        (0..n)
            .map(|i| {
                let serials: Vec<SerialNumber> = (0..3u32)
                    .map(|j| SerialNumber::from_u24((i as u32) * 10 + j))
                    .collect();
                ca.insert(&serials, &mut rng, 1_001 + i as u64).unwrap()
            })
            .collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_reopen_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let records = sample_records(3);
        {
            let (mut log, scan) = IssuanceLog::open(&path).unwrap();
            assert!(scan.records.is_empty());
            for r in &records {
                log.append(r).unwrap();
            }
        }
        let (_, scan) = IssuanceLog::open(&path).unwrap();
        assert_eq!(scan.records, records);
        assert_eq!(scan.tail, TailState::Clean);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_recovers_to_last_complete_record() {
        let records = sample_records(3);
        let mut image = Vec::new();
        for r in &records {
            image.extend_from_slice(&encode_record(r));
        }
        let full = image.len();
        let last = encode_record(&records[2]).len();
        // Every proper prefix that cuts into the last record yields exactly
        // the first two records and a Torn tail.
        for cut in (full - last + 1)..full {
            let scan = decode_records(&image[..cut]);
            assert_eq!(scan.records, records[..2], "cut at {cut}");
            assert_eq!(scan.good_len as usize, full - last);
            assert_eq!(scan.tail, TailState::Torn);
        }
    }

    #[test]
    fn corrupt_record_truncates_from_there() {
        let records = sample_records(2);
        let mut image = Vec::new();
        for r in &records {
            image.extend_from_slice(&encode_record(r));
        }
        let first = encode_record(&records[0]).len();
        // Flip a payload bit in the second record.
        image[first + HEADER_LEN + 2] ^= 0x40;
        let scan = decode_records(&image);
        assert_eq!(scan.records, records[..1]);
        assert_eq!(scan.good_len as usize, first);
        assert_eq!(scan.tail, TailState::Corrupt);
    }

    #[test]
    fn open_truncates_torn_file_on_disk() {
        let path = temp_path("truncate");
        let _ = std::fs::remove_file(&path);
        let records = sample_records(2);
        {
            let (mut log, _) = IssuanceLog::open(&path).unwrap();
            for r in &records {
                log.append(r).unwrap();
            }
        }
        // Simulate a crash mid-append: half a header of garbage.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        }
        let (mut log, scan) = IssuanceLog::open(&path).unwrap();
        assert_eq!(scan.records, records);
        assert_eq!(scan.tail, TailState::Torn);
        // The truncated log accepts further appends cleanly.
        let more = sample_records(3).pop().unwrap();
        log.append(&more).unwrap();
        drop(log);
        let (_, scan) = IssuanceLog::open(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.tail, TailState::Clean);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn forged_length_is_corruption_not_allocation() {
        let mut image = Vec::new();
        image.extend_from_slice(&u32::MAX.to_be_bytes());
        image.extend_from_slice(&[0u8; 4]);
        let scan = decode_records(&image);
        assert!(scan.records.is_empty());
        assert_eq!(scan.tail, TailState::Corrupt);
    }
}
