//! The certification authority: issues certificates, revokes them into its
//! authenticated dictionary, and keeps the dictionary fresh through the CDN.

use crate::manifest::Manifest;
use rand::RngCore;
use ritm_cdn::network::Cdn;
use ritm_cdn::origin::PublishError;
use ritm_crypto::ed25519::{SigningKey, VerifyingKey};
use ritm_dictionary::{
    CaDictionary, CaId, DictionaryEngine, EngineError, RefreshMessage, RevocationIssuance,
    SerialNumber,
};
use ritm_tls::certificate::Certificate;
use std::collections::HashMap;

/// Errors from CA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaError {
    /// A certificate with this serial was already issued.
    DuplicateSerial(SerialNumber),
    /// The serial is unknown to this CA.
    UnknownSerial(SerialNumber),
    /// The CDN refused the publish.
    Publish(PublishError),
    /// The dictionary engine refused the operation (cannot happen for the
    /// default [`CaDictionary`] engine, which is always authoritative).
    Engine(EngineError),
    /// The attached issuance log failed to persist a record. The in-memory
    /// dictionary is ahead of stable storage at this point — treat as
    /// fatal and restart from the log.
    Wal(std::io::ErrorKind),
}

impl core::fmt::Display for CaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CaError::DuplicateSerial(s) => write!(f, "serial {s} already issued"),
            CaError::UnknownSerial(s) => write!(f, "serial {s} was not issued by this CA"),
            CaError::Publish(e) => write!(f, "distribution point rejected publish: {e}"),
            CaError::Engine(e) => write!(f, "dictionary engine refused: {e}"),
            CaError::Wal(k) => write!(f, "issuance log append failed: {k:?}"),
        }
    }
}

impl std::error::Error for CaError {}

impl From<PublishError> for CaError {
    fn from(e: PublishError) -> Self {
        CaError::Publish(e)
    }
}

impl From<EngineError> for CaError {
    fn from(e: EngineError) -> Self {
        CaError::Engine(e)
    }
}

/// A certification authority participating in RITM, generic over its
/// authoritative [`DictionaryEngine`] (a single [`CaDictionary`] by
/// default; a [`ritm_dictionary::ShardedCa`] slots in for expiry-sharded
/// deployments, §VIII).
///
/// Owns the signing key, the issued-certificate registry, and the
/// authenticated dictionary; pushes every dictionary change to the CDN
/// origin.
pub struct CertificationAuthority<E: DictionaryEngine = CaDictionary> {
    name: String,
    id: CaId,
    key: SigningKey,
    dictionary: E,
    issued: HashMap<SerialNumber, Certificate>,
    next_serial: u32,
    delta: u64,
    /// Crash-durability hook: when attached, every issuance is appended
    /// (and synced) here before dissemination.
    wal: Option<crate::wal::IssuanceLog>,
}

impl<E: DictionaryEngine> core::fmt::Debug for CertificationAuthority<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CertificationAuthority")
            .field("name", &self.name)
            .field("id", &self.id)
            .field("issued", &self.issued.len())
            .field("revoked", &self.dictionary.revocation_count())
            .field("epoch", &self.dictionary.epoch())
            .finish()
    }
}

impl CertificationAuthority<CaDictionary> {
    /// Creates a CA with a fresh dictionary and registers it with the CDN
    /// origin (publishing its bootstrap manifest, §VIII).
    pub fn new<R: RngCore + ?Sized>(
        name: &str,
        key: SigningKey,
        delta: u64,
        chain_len: u64,
        cdn: &mut Cdn,
        rng: &mut R,
        now: u64,
    ) -> Self {
        let id = CaId::from_name(name);
        let dictionary = CaDictionary::new(id, key.clone(), delta, chain_len, rng, now);
        Self::with_engine(name, key, delta, dictionary, cdn)
    }

    /// Replays issuances for a desynchronized RA (sync protocol, §III).
    /// Specific to the single-dictionary engine, which keeps the full
    /// issuance log.
    pub fn issuance_since(&self, have: u64) -> RevocationIssuance {
        self.dictionary.issuance_since(have)
    }

    /// One bounded page of the catch-up replay: at most `limit` serials,
    /// anchored to a historical (or synthesized mid-batch) signed root.
    /// Returns the page and how many serials remain beyond it (`0` =
    /// caught up). See [`CaDictionary::issuance_page`].
    pub fn issuance_page(&self, have: u64, limit: u32) -> (RevocationIssuance, u64) {
        self.dictionary.issuance_page(have, limit)
    }

    /// Rebuilds a crashed CA from its replayed issuance log (typically the
    /// records a [`crate::wal::IssuanceLog::open`] scan recovered). Each
    /// record is re-verified mirror-grade; the hash chain is rotated (its
    /// preimages died with the old process) and a fresh root over the same
    /// content is signed at `now` — the standard `NewRoot` rotation every
    /// mirror already follows. The certificate-issuance registry is not
    /// log-persisted; harnesses continuing to issue after recovery bump
    /// [`CertificationAuthority::set_next_serial`] past their pre-crash
    /// range.
    ///
    /// # Errors
    ///
    /// The index of the first log record that failed verification
    /// (see [`CaDictionary::replay`]).
    #[allow(clippy::too_many_arguments)]
    pub fn recover<R: RngCore + ?Sized>(
        name: &str,
        key: SigningKey,
        delta: u64,
        chain_len: u64,
        records: &[RevocationIssuance],
        cdn: &mut Cdn,
        rng: &mut R,
        now: u64,
    ) -> Result<Self, usize> {
        let id = CaId::from_name(name);
        let dictionary =
            CaDictionary::replay(id, key.clone(), delta, chain_len, records, rng, now)?;
        Ok(Self::with_engine(name, key, delta, dictionary, cdn))
    }
}

impl<E: DictionaryEngine> CertificationAuthority<E> {
    /// Wraps an already-built engine into a CA and registers it with the
    /// CDN origin (publishing its bootstrap manifest, §VIII). The engine's
    /// CA id must be derived from `name`.
    pub fn with_engine(
        name: &str,
        key: SigningKey,
        delta: u64,
        dictionary: E,
        cdn: &mut Cdn,
    ) -> Self {
        let id = CaId::from_name(name);
        cdn.origin.register_ca(id, key.verifying_key());
        let ca = CertificationAuthority {
            name: name.to_owned(),
            id,
            key,
            dictionary,
            issued: HashMap::new(),
            next_serial: 1,
            delta,
            wal: None,
        };
        cdn.origin.publish_manifest(id, ca.manifest_json());
        ca
    }

    /// The CA's identifier.
    pub fn id(&self) -> CaId {
        self.id
    }

    /// The CA's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The CA's public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// The dissemination period Δ (possibly CA-local, §VIII).
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The CA's bootstrap manifest (the object published to the CDN at
    /// creation; re-derivable at any time for direct manifest endpoints).
    pub fn manifest(&self) -> Manifest {
        Manifest {
            ca_name: self.name.clone(),
            ca: self.id,
            delta: self.delta,
            cdn_address: format!("cdn.example/{}", self.id),
        }
    }

    /// The signed `/RITM.json` manifest bytes (§VIII).
    pub fn manifest_json(&self) -> Vec<u8> {
        self.manifest().to_json_signed(&self.key).into_bytes()
    }

    /// Read access to the dictionary engine (e.g. for bootstrap signed
    /// roots).
    pub fn dictionary(&self) -> &E {
        &self.dictionary
    }

    /// The engine's monotonic content epoch.
    pub fn epoch(&self) -> u64 {
        self.dictionary.epoch()
    }

    /// Attaches an open issuance log: from now on every revocation batch
    /// is appended (and synced) to it *before* dissemination, making the
    /// CA restartable via [`CertificationAuthority::recover`].
    pub fn attach_wal(&mut self, wal: crate::wal::IssuanceLog) {
        self.wal = Some(wal);
    }

    /// Overrides the next certificate serial — used after
    /// [`CertificationAuthority::recover`], whose log carries revocations
    /// but not the issuance registry, to jump past the pre-crash range.
    pub fn set_next_serial(&mut self, next: u32) {
        self.next_serial = next;
    }

    /// Issues a server certificate with the next 3-byte serial (the
    /// dominant size in the paper's dataset, §VII-A).
    pub fn issue_certificate(
        &mut self,
        subject: &str,
        subject_key: VerifyingKey,
        not_before: u64,
        not_after: u64,
    ) -> Certificate {
        let serial = SerialNumber::from_u24(self.next_serial);
        self.next_serial += 1;
        let cert = Certificate::issue(
            &self.key,
            self.id,
            serial,
            subject,
            not_before,
            not_after,
            subject_key,
            false,
        );
        self.issued.insert(serial, cert.clone());
        cert
    }

    /// Revokes certificates by serial and publishes the issuance to the CDN
    /// (Fig. 2 `insert` + dissemination step 1 of Fig. 1).
    ///
    /// # Errors
    ///
    /// [`CaError::UnknownSerial`] for serials this CA never issued;
    /// [`CaError::Publish`] if the origin rejects the message.
    pub fn revoke<R: RngCore + ?Sized>(
        &mut self,
        serials: &[SerialNumber],
        cdn: &mut Cdn,
        rng: &mut R,
        now: u64,
    ) -> Result<Option<RevocationIssuance>, CaError> {
        for s in serials {
            if !self.issued.contains_key(s) {
                return Err(CaError::UnknownSerial(*s));
            }
        }
        let mut rng = rng; // reborrow as a Sized RngCore for dyn dispatch
        let Some(issuance) = self.dictionary.insert_batch(serials, &mut rng, now)? else {
            return Ok(None);
        };
        // Durability before dissemination: once a peer can observe this
        // batch, a restart must be able to replay it.
        if let Some(wal) = &mut self.wal {
            wal.append(&issuance).map_err(|e| CaError::Wal(e.kind()))?;
        }
        cdn.origin.publish_issuance(self.id, &issuance)?;
        // Keep the freshness object in sync with the new chain.
        if let Some(f) = self.dictionary.freshness_for(now) {
            cdn.origin
                .publish_refresh(self.id, &RefreshMessage::Freshness(f))?;
        }
        Ok(Some(issuance))
    }

    /// Periodic refresh (Fig. 2 `refresh`): publishes either the next
    /// freshness statement or a rotated signed root.
    ///
    /// # Errors
    ///
    /// [`CaError::Publish`] if the origin rejects the message.
    pub fn refresh<R: RngCore + ?Sized>(
        &mut self,
        cdn: &mut Cdn,
        rng: &mut R,
        now: u64,
    ) -> Result<RefreshMessage, CaError> {
        let mut rng = rng;
        let msg = self.dictionary.refresh_period(&mut rng, now)?;
        cdn.origin.publish_refresh(self.id, &msg)?;
        Ok(msg)
    }

    /// Whether a serial is currently revoked.
    pub fn is_revoked(&self, serial: &SerialNumber) -> bool {
        self.dictionary.contains_serial(serial)
    }

    /// Number of revocations issued.
    pub fn revocation_count(&self) -> usize {
        self.dictionary.revocation_count() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_net::time::SimDuration;

    fn setup() -> (CertificationAuthority, Cdn, StdRng) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cdn = Cdn::new(SimDuration::from_secs(10));
        let ca = CertificationAuthority::new(
            "AuthorityCA",
            SigningKey::from_seed([4u8; 32]),
            10,
            1024,
            &mut cdn,
            &mut rng,
            1_000,
        );
        (ca, cdn, rng)
    }

    #[test]
    fn issue_then_revoke_round_trip() {
        let (mut ca, mut cdn, mut rng) = setup();
        let subject_key = SigningKey::from_seed([7u8; 32]).verifying_key();
        let cert = ca.issue_certificate("example.com", subject_key, 500, 2_000_000);
        assert!(!ca.is_revoked(&cert.serial));

        let iss = ca
            .revoke(&[cert.serial], &mut cdn, &mut rng, 1_001)
            .unwrap()
            .unwrap();
        assert!(ca.is_revoked(&cert.serial));
        assert_eq!(iss.serials, vec![cert.serial]);

        // The issuance is fetchable from the CDN.
        use ritm_cdn::origin::ContentKey;
        assert!(cdn
            .origin
            .fetch(&ContentKey::Latest { ca: ca.id() })
            .is_some());
    }

    #[test]
    fn revoking_unknown_serial_fails() {
        let (mut ca, mut cdn, mut rng) = setup();
        let err = ca
            .revoke(&[SerialNumber::from_u24(999)], &mut cdn, &mut rng, 1_001)
            .unwrap_err();
        assert!(matches!(err, CaError::UnknownSerial(_)));
    }

    #[test]
    fn double_revocation_is_noop() {
        let (mut ca, mut cdn, mut rng) = setup();
        let k = SigningKey::from_seed([7u8; 32]).verifying_key();
        let cert = ca.issue_certificate("a.com", k, 500, 2_000_000);
        ca.revoke(&[cert.serial], &mut cdn, &mut rng, 1_001)
            .unwrap();
        let second = ca
            .revoke(&[cert.serial], &mut cdn, &mut rng, 1_002)
            .unwrap();
        assert!(second.is_none());
        assert_eq!(ca.revocation_count(), 1);
    }

    #[test]
    fn serials_are_unique_and_sequential() {
        let (mut ca, _, _) = setup();
        let k = SigningKey::from_seed([7u8; 32]).verifying_key();
        let c1 = ca.issue_certificate("a.com", k, 0, 10);
        let c2 = ca.issue_certificate("b.com", k, 0, 10);
        assert_ne!(c1.serial, c2.serial);
        assert_eq!(c1.serial, SerialNumber::from_u24(1));
        assert_eq!(c2.serial, SerialNumber::from_u24(2));
    }

    #[test]
    fn refresh_publishes_to_cdn() {
        let (mut ca, mut cdn, mut rng) = setup();
        let msg = ca.refresh(&mut cdn, &mut rng, 1_050).unwrap();
        assert!(matches!(msg, RefreshMessage::Freshness(_)));
        use ritm_cdn::origin::ContentKey;
        assert!(cdn
            .origin
            .fetch(&ContentKey::Freshness { ca: ca.id() })
            .is_some());
    }

    #[test]
    fn manifest_is_published_at_creation() {
        let (ca, cdn, _) = setup();
        use ritm_cdn::origin::ContentKey;
        let raw = cdn
            .origin
            .fetch(&ContentKey::Manifest { ca: ca.id() })
            .expect("manifest published");
        let manifest =
            Manifest::from_json_signed(std::str::from_utf8(raw).unwrap(), &ca.verifying_key())
                .expect("manifest verifies");
        assert_eq!(manifest.delta, 10);
        assert_eq!(manifest.ca, ca.id());
    }

    #[test]
    fn certificates_validate_against_ca_key() {
        let (mut ca, _, _) = setup();
        let k = SigningKey::from_seed([7u8; 32]).verifying_key();
        let cert = ca.issue_certificate("site.org", k, 100, 10_000);
        assert!(cert.verify(&ca.verifying_key(), 5_000).is_ok());
        assert!(cert.verify(&ca.verifying_key(), 20_000).is_err());
    }
}
