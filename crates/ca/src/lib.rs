//! # ritm-ca — certification authorities for RITM
//!
//! * [`authority`] — an end-to-end CA: issues certificates (`ritm-tls`),
//!   revokes into its authenticated dictionary (`ritm-dictionary`), and
//!   publishes every change to the CDN origin (`ritm-cdn`);
//! * [`manifest`] — the signed `/RITM.json` bootstrap manifest (§VIII);
//! * [`misbehavior`] — an equivocating CA used by the §V attack
//!   experiments;
//! * [`service`] — the CA's direct manifest/catch-up endpoint over the
//!   `ritm-proto` wire API;
//! * [`wal`] — the crash-durable, CRC-framed issuance log replayed at
//!   startup (torn tails are truncated to the last complete record).

pub mod authority;
pub mod manifest;
pub mod misbehavior;
pub mod service;
pub mod wal;

pub use authority::{CaError, CertificationAuthority};
pub use manifest::{Manifest, ManifestError};
pub use misbehavior::{EquivocatingCa, View};
pub use service::CaService;
pub use wal::{IssuanceLog, LogScan, TailState};
