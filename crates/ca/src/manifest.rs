//! The `/RITM.json` bootstrap manifest (paper §VIII, "Bootstrapping CAs into
//! RITM").
//!
//! A CA that starts deploying RITM publishes a short signed manifest at a
//! predefined location; RAs poll it (e.g. weekly) to discover the CDN
//! address of the dictionary and the CA's local Δ. The JSON encoder/parser
//! here is deliberately minimal (flat object, string/number values) —
//! justified in DESIGN.md in lieu of a serde dependency.

use ritm_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use ritm_crypto::hex;
use ritm_dictionary::CaId;

/// A CA's RITM bootstrap manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Human-readable CA name.
    pub ca_name: String,
    /// The CA identifier (must equal `CaId::from_name(ca_name)`).
    pub ca: CaId,
    /// The CA's dissemination period Δ in seconds (local Δ, §VIII).
    pub delta: u64,
    /// Where the dictionary feed lives on the CDN.
    pub cdn_address: String,
}

/// Why a manifest failed to parse or verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// Structurally invalid JSON or missing field.
    Malformed(&'static str),
    /// The signature does not verify under the CA key.
    BadSignature,
    /// `ca` does not match `ca_name`.
    IdMismatch,
}

impl core::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ManifestError::Malformed(what) => write!(f, "malformed manifest: {what}"),
            ManifestError::BadSignature => f.write_str("manifest signature invalid"),
            ManifestError::IdMismatch => f.write_str("manifest ca id does not match name"),
        }
    }
}

impl std::error::Error for ManifestError {}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Manifest {
    fn payload_json(&self) -> String {
        format!(
            "{{\"ca_name\":\"{}\",\"ca\":\"{}\",\"delta\":{},\"cdn\":\"{}\"}}",
            json_escape(&self.ca_name),
            self.ca,
            self.delta,
            json_escape(&self.cdn_address),
        )
    }

    /// Serializes and signs the manifest:
    /// `{"manifest": {...}, "sig": "<hex>"}`.
    pub fn to_json_signed(&self, key: &SigningKey) -> String {
        let payload = self.payload_json();
        let sig = key.sign(payload.as_bytes());
        format!(
            "{{\"manifest\":{},\"sig\":\"{}\"}}",
            payload,
            hex::encode(sig.as_bytes()),
        )
    }

    /// Parses and verifies a signed manifest.
    ///
    /// # Errors
    ///
    /// See [`ManifestError`].
    pub fn from_json_signed(json: &str, key: &VerifyingKey) -> Result<Self, ManifestError> {
        let manifest_str = extract_object(json, "manifest")
            .ok_or(ManifestError::Malformed("missing manifest object"))?;
        let sig_hex = extract_string(json, "sig").ok_or(ManifestError::Malformed("missing sig"))?;
        let sig_bytes: [u8; 64] = hex::decode_array(&sig_hex)
            .map_err(|_| ManifestError::Malformed("sig not 64 hex bytes"))?;
        key.verify(manifest_str.as_bytes(), &Signature::from_bytes(sig_bytes))
            .map_err(|_| ManifestError::BadSignature)?;

        let ca_name = extract_string(&manifest_str, "ca_name")
            .ok_or(ManifestError::Malformed("missing ca_name"))?;
        let ca_hex =
            extract_string(&manifest_str, "ca").ok_or(ManifestError::Malformed("missing ca"))?;
        let ca_bytes: [u8; 8] = hex::decode_array(&ca_hex)
            .map_err(|_| ManifestError::Malformed("ca not 8 hex bytes"))?;
        let delta = extract_number(&manifest_str, "delta")
            .ok_or(ManifestError::Malformed("missing delta"))?;
        let cdn_address =
            extract_string(&manifest_str, "cdn").ok_or(ManifestError::Malformed("missing cdn"))?;

        let ca = CaId(ca_bytes);
        if CaId::from_name(&ca_name) != ca {
            return Err(ManifestError::IdMismatch);
        }
        Ok(Manifest {
            ca_name,
            ca,
            delta,
            cdn_address,
        })
    }
}

/// Pulls the raw text of `"key": { ... }` out of a flat-ish JSON string.
fn extract_object(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let open = rest.find('{')?;
    let mut depth = 0;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[open..open + i + 1].to_owned());
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts a string value for `key` (handles escaped quotes).
fn extract_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let hex4: String = (&mut chars).take(4).collect();
                    let code = u32::from_str_radix(&hex4, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts an unsigned integer value for `key`.
fn extract_number(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let digits: String = json[start..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest {
            ca_name: "TestCA".into(),
            ca: CaId::from_name("TestCA"),
            delta: 60,
            cdn_address: "cdn.example/testca".into(),
        }
    }

    fn key() -> SigningKey {
        SigningKey::from_seed([1u8; 32])
    }

    #[test]
    fn sign_parse_round_trip() {
        let m = manifest();
        let json = m.to_json_signed(&key());
        let back = Manifest::from_json_signed(&json, &key().verifying_key()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tampered_delta_rejected() {
        let json = manifest().to_json_signed(&key());
        let tampered = json.replace("\"delta\":60", "\"delta\":86400");
        assert_eq!(
            Manifest::from_json_signed(&tampered, &key().verifying_key()),
            Err(ManifestError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let json = manifest().to_json_signed(&key());
        let other = SigningKey::from_seed([2u8; 32]);
        assert_eq!(
            Manifest::from_json_signed(&json, &other.verifying_key()),
            Err(ManifestError::BadSignature)
        );
    }

    #[test]
    fn name_id_mismatch_rejected() {
        let mut m = manifest();
        m.ca = CaId::from_name("OtherCA");
        let json = m.to_json_signed(&key());
        assert_eq!(
            Manifest::from_json_signed(&json, &key().verifying_key()),
            Err(ManifestError::IdMismatch)
        );
    }

    #[test]
    fn escaping_survives_round_trip() {
        let m = Manifest {
            ca_name: "Weird \"CA\" \\ name".into(),
            ca: CaId::from_name("Weird \"CA\" \\ name"),
            delta: 1,
            cdn_address: "cdn/with\"quote".into(),
        };
        let json = m.to_json_signed(&key());
        let back = Manifest::from_json_signed(&json, &key().verifying_key()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn garbage_rejected() {
        for bad in ["", "{}", "{\"manifest\":{}}", "not json at all"] {
            assert!(Manifest::from_json_signed(bad, &key().verifying_key()).is_err());
        }
    }
}
