//! The CA's direct endpoint as a wire-protocol [`Service`].
//!
//! Most dissemination flows through the CDN, but two objects are naturally
//! served by the CA itself (§VIII): the signed `/RITM.json` bootstrap
//! manifest and authoritative catch-up replies synthesized from the full
//! issuance log. [`CaService`] exposes exactly those — plus the current
//! signed root and freshness statement for monitors — while refusing
//! `FetchDelta` (periodic pulls must hit the CDN so the CA's own link is
//! never the fan-out bottleneck) and status requests (an RA's job).

use crate::authority::CertificationAuthority;
use ritm_dictionary::{DictionaryEngine, RefreshMessage};
use ritm_proto::{ProtoError, RitmRequest, RitmResponse, Service};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The CA's manifest/catch-up endpoint, shareable with the harness that
/// keeps issuing and revoking through the same `Arc<Mutex<..>>` handle.
pub struct CaService {
    ca: Arc<Mutex<CertificationAuthority>>,
    /// Current time in seconds (freshness statements are period-relative).
    now_secs: AtomicU64,
}

impl CaService {
    /// Wraps a shared CA handle.
    pub fn new(ca: Arc<Mutex<CertificationAuthority>>) -> Self {
        CaService {
            ca,
            now_secs: AtomicU64::new(0),
        }
    }

    /// Advances the service clock.
    pub fn set_now(&self, now_secs: u64) {
        self.now_secs.store(now_secs, Ordering::SeqCst);
    }

    /// The shared CA handle (for harnesses revoking mid-experiment).
    pub fn authority(&self) -> &Arc<Mutex<CertificationAuthority>> {
        &self.ca
    }
}

impl Service for CaService {
    fn handle(&self, req: RitmRequest) -> RitmResponse {
        let ca = self.ca.lock().expect("ca lock");
        match req {
            RitmRequest::GetManifest { ca: id } => {
                if id != ca.id() {
                    return RitmResponse::Error(ProtoError::UnknownCa(id));
                }
                RitmResponse::Manifest(ca.manifest_json())
            }
            RitmRequest::GetSignedRoot { ca: id } => {
                if id != ca.id() {
                    return RitmResponse::Error(ProtoError::UnknownCa(id));
                }
                RitmResponse::SignedRoot(*ca.dictionary().signed_root())
            }
            RitmRequest::CatchUp { ca: id, have } => {
                if id != ca.id() {
                    return RitmResponse::Error(ProtoError::UnknownCa(id));
                }
                RitmResponse::Delta(ca.issuance_since(have))
            }
            RitmRequest::CatchUpPaged {
                ca: id,
                have,
                limit,
            } => {
                if id != ca.id() {
                    return RitmResponse::Error(ProtoError::UnknownCa(id));
                }
                let (issuance, remaining) =
                    ca.issuance_page(have, limit.min(ritm_proto::MAX_PAGE_LIMIT));
                RitmResponse::DeltaPage {
                    issuance,
                    remaining,
                }
            }
            RitmRequest::FetchFreshness { ca: id } => {
                if id != ca.id() {
                    return RitmResponse::Error(ProtoError::UnknownCa(id));
                }
                let now = self.now_secs.load(Ordering::SeqCst);
                match ca.dictionary().freshness_for(now) {
                    Some(f) => RitmResponse::Freshness(RefreshMessage::Freshness(f)),
                    None => RitmResponse::Error(ProtoError::NotFound),
                }
            }
            RitmRequest::FetchDelta { .. }
            | RitmRequest::GetStatus { .. }
            | RitmRequest::GetMultiStatus { .. }
            | RitmRequest::GossipRoots { .. } => RitmResponse::Error(ProtoError::Unsupported),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_cdn::network::Cdn;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::CaId;
    use ritm_net::time::SimDuration;

    const T0: u64 = 1_000_000;

    fn service() -> (CaId, ritm_crypto::ed25519::VerifyingKey, CaService) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cdn = Cdn::new(SimDuration::from_secs(10));
        let ca = CertificationAuthority::new(
            "DirectCA",
            SigningKey::from_seed([6u8; 32]),
            10,
            1024,
            &mut cdn,
            &mut rng,
            T0,
        );
        let (id, key) = (ca.id(), ca.verifying_key());
        let svc = CaService::new(Arc::new(Mutex::new(ca)));
        svc.set_now(T0 + 1);
        (id, key, svc)
    }

    #[test]
    fn manifest_round_trips_and_verifies() {
        let (id, key, svc) = service();
        match svc.handle(RitmRequest::GetManifest { ca: id }) {
            RitmResponse::Manifest(bytes) => {
                let m =
                    Manifest::from_json_signed(std::str::from_utf8(&bytes).unwrap(), &key).unwrap();
                assert_eq!(m.ca, id);
                assert_eq!(m.delta, 10);
            }
            other => panic!("expected manifest, got {other:?}"),
        }
    }

    #[test]
    fn serves_root_freshness_and_catchup_but_not_deltas() {
        let (id, _, svc) = service();
        assert!(matches!(
            svc.handle(RitmRequest::GetSignedRoot { ca: id }),
            RitmResponse::SignedRoot(_)
        ));
        assert!(matches!(
            svc.handle(RitmRequest::FetchFreshness { ca: id }),
            RitmResponse::Freshness(RefreshMessage::Freshness(_))
        ));
        match svc.handle(RitmRequest::CatchUp { ca: id, have: 0 }) {
            RitmResponse::Delta(iss) => assert!(iss.serials.is_empty()),
            other => panic!("expected delta, got {other:?}"),
        }
        assert_eq!(
            svc.handle(RitmRequest::FetchDelta { ca: id }),
            RitmResponse::Error(ProtoError::Unsupported)
        );
        let other = CaId::from_name("impostor");
        assert_eq!(
            svc.handle(RitmRequest::GetManifest { ca: other }),
            RitmResponse::Error(ProtoError::UnknownCa(other))
        );
    }
}
