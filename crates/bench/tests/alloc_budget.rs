//! Allocation budget on the hot serving path (the CI `alloc-budget`
//! smoke): answering a hot-serial `GetStatus` frame from the encoded
//! cache must cost at most TWO heap allocations per request — the
//! `RequestEnvelope`'s decode scratch and the returned `Frame`'s inline
//! bookkeeping — because the response body itself is a shared `Arc`
//! clone and nothing else on the path may allocate. This pins the
//! zero-copy claim as a number, not a vibe: a regression that quietly
//! re-introduces a per-request encode or copy fails here, not in a
//! benchmark someone has to read.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::{StatusServer, StatusService};
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, MirrorDictionary, SerialNumber};
use ritm_proto::Service;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts every allocation the process makes. Test binaries get their
/// own allocator instance, so this never taints the library crates.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const T0: u64 = 1_000_000;
const LEAVES: u32 = 10_000;
/// Allocations allowed per hot-serial request (see module docs).
const BUDGET_PER_REQUEST: u64 = 2;
const ITERATIONS: u64 = 100;

fn build_service() -> (CaId, StatusService) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut ca = CaDictionary::new(
        CaId::from_name("AllocCA"),
        SigningKey::from_seed([9u8; 32]),
        10,
        64,
        &mut rng,
        T0,
    );
    let mut m = MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root()).unwrap();
    m.set_delta(10);
    let serials: Vec<SerialNumber> = (0..LEAVES).map(SerialNumber::from_u24).collect();
    let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
    m.apply_issuance(&iss, T0 + 1).unwrap();
    let server = StatusServer::new();
    assert!(server.publish(m.snapshot()));
    (ca.ca(), StatusService::new(Arc::new(server)))
}

#[test]
fn hot_serial_get_status_stays_within_the_alloc_budget() {
    let (ca, svc) = build_service();
    let serial = SerialNumber::from_u24(LEAVES / 2);
    let req = ritm_proto::RitmRequest::GetStatus { ca, serial };
    let frame_v2 = req.to_frame_v2(7);

    // The hot path must also survive type erasure: a blanket impl that
    // forgot to forward `serve_frame`/`serve_envelope` would silently
    // fall back to build-and-encode here and blow the budget.
    let erased: Arc<dyn Service> = Arc::new(svc.clone());

    // Warm: first call builds the proof, payload, and encoding.
    let warm = erased.serve_frame(&frame_v2);
    // The owned and zero-copy paths agree on the wire before we count.
    assert_eq!(warm.to_vec(), svc.handle_frame(&frame_v2));

    let before = allocs();
    for _ in 0..ITERATIONS {
        let resp = erased.serve_frame(&frame_v2);
        assert!(!resp.is_empty());
    }
    let spent = allocs() - before;
    assert!(
        spent <= BUDGET_PER_REQUEST * ITERATIONS,
        "hot-serial GetStatus spent {spent} allocations over {ITERATIONS} \
         requests — budget is {BUDGET_PER_REQUEST}/request"
    );

    // Sanity: the cache really was hit every iteration.
    let stats = svc.server().encoded_cache_stats();
    assert!(stats.hits >= ITERATIONS, "encoded cache hits: {stats:?}");
}

#[test]
fn build_and_encode_path_costs_more_than_the_cached_path() {
    // The counting allocator doubles as a cheap comparator: the owned
    // `handle_frame` path (payload assembly + encode per request) must
    // allocate strictly more than the cached `serve_frame` path, or the
    // cache is not actually saving work.
    let (ca, svc) = build_service();
    let serial = SerialNumber::from_u24(LEAVES / 4);
    let req = ritm_proto::RitmRequest::GetStatus { ca, serial };
    let frame = req.to_frame_v2(9);
    let _ = svc.serve_frame(&frame); // warm both caches

    let before = allocs();
    for _ in 0..ITERATIONS {
        let _ = svc.serve_frame(&frame);
    }
    let cached = allocs() - before;

    let before = allocs();
    for _ in 0..ITERATIONS {
        let _ = svc.handle_frame(&frame);
    }
    let owned = allocs() - before;

    assert!(
        cached < owned,
        "cached path ({cached} allocs) must beat build-and-encode ({owned})"
    );
}
