//! # ritm-bench — the experiment harness (paper §VII)
//!
//! One binary per table/figure regenerates the paper's evaluation; see
//! DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
//! outputs. This library holds shared helpers: text tables, summary
//! statistics, CDFs, and the RA-download cost model used by Fig. 6,
//! Table II, and Fig. 7.

use ritm_workloads::heartbleed::Bin;

/// Prints a simple aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Computes [`Stats`]; empty input yields zeros.
pub fn stats(samples: &[f64]) -> Stats {
    if samples.is_empty() {
        return Stats {
            min: 0.0,
            max: 0.0,
            mean: 0.0,
        };
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &s in samples {
        min = min.min(s);
        max = max.max(s);
        sum += s;
    }
    Stats {
        min,
        max,
        mean: sum / samples.len() as f64,
    }
}

/// The `p`-quantile (0.0–1.0) of a sorted sample (nearest-rank).
///
/// # Panics
///
/// Panics on an empty sample.
pub fn quantile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Bytes one RA downloads in a Δ-period with `revocations` new entries in
/// the tracked CA's dictionary: a 20-byte freshness statement always, plus
/// the issuance message (framing + 3-byte length-prefixed serials + signed
/// root) when anything was revoked. This is the quantity plotted in Fig. 7
/// and integrated over a month for Fig. 6.
pub fn bytes_per_pull(revocations: u64) -> u64 {
    const FRESHNESS: u64 = 20;
    if revocations == 0 {
        FRESHNESS
    } else {
        FRESHNESS + 12 + revocations * 4 + ritm_dictionary::root::SIGNED_ROOT_LEN as u64
    }
}

/// Per-RA download volume over a window, given per-period revocation counts.
pub fn bytes_per_window(per_period_revocations: &[u64]) -> u64 {
    per_period_revocations
        .iter()
        .map(|&r| bytes_per_pull(r))
        .sum()
}

/// Splits a bin series into consecutive 30-day billing cycles starting at
/// the series start, returning the total revocations per cycle.
pub fn billing_cycles(series: &[Bin], cycles: usize) -> Vec<u64> {
    const CYCLE: u64 = 30 * 86_400;
    let start = series.first().map(|b| b.start).unwrap_or(0);
    let mut out = vec![0u64; cycles];
    for bin in series {
        let idx = ((bin.start - start) / CYCLE) as usize;
        if idx < cycles {
            out[idx] += bin.count;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = stats(&[1.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(stats(&[]).mean, 0.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(quantile(&v, 0.5), 5.0);
        assert_eq!(quantile(&v, 0.9), 9.0);
        assert_eq!(quantile(&v, 1.0), 10.0);
        assert_eq!(quantile(&v, 0.0), 1.0);
    }

    #[test]
    fn pull_bytes_shape() {
        assert_eq!(bytes_per_pull(0), 20);
        // 1 revocation: 20 + 12 + (1 + 3) + 128 = 164.
        assert_eq!(bytes_per_pull(1), 164);
        assert!(bytes_per_pull(1_000) > 4_000);
    }

    #[test]
    fn billing_cycle_split() {
        let series = vec![
            Bin {
                start: 0,
                count: 10,
            },
            Bin {
                start: 29 * 86_400,
                count: 5,
            },
            Bin {
                start: 31 * 86_400,
                count: 7,
            },
        ];
        let cycles = billing_cycles(&series, 2);
        assert_eq!(cycles, vec![15, 7]);
    }
}
