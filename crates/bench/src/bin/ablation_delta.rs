//! Ablation over Δ (the design knob DESIGN.md calls out): end-to-end
//! revocation-detection latency on a live connection, per-RA dissemination
//! bandwidth, and the attack window — all as functions of Δ.
//!
//! This quantifies the trade-off stated in the paper's footnote 3: "The
//! value of Δ is a trade-off between the size of the attack window and
//! efficiency."

use ritm_bench::{bytes_per_pull, print_table};
use ritm_core::{ConnectionOptions, DeploymentModel, RitmWorld};

const DELTAS: [u64; 5] = [5, 10, 30, 60, 120];

fn main() {
    println!("Ablation: Δ vs detection latency, bandwidth, and attack window");
    println!();
    let mut rows = Vec::new();
    for (i, &delta) in DELTAS.iter().enumerate() {
        // Measured: revoke mid-connection, observe when the client aborts.
        let mut world = RitmWorld::new(100 + i as u64, delta, DeploymentModel::CloseToClients);
        let revoke_at = delta / 2 + 1; // mid-period: worst-case pull lag
        let out = world.run_connection(&ConnectionOptions {
            duration_secs: 6 * delta,
            server_sends_at: (1..6 * delta).step_by(2).collect(),
            revoke_at: Some(revoke_at),
            ..Default::default()
        });
        let detection = out
            .aborted
            .as_ref()
            .map(|(t, _)| t - revoke_at)
            .expect("revocation must be detected");

        // Modelled: quiet-period bandwidth (freshness only) per day.
        let pulls_per_day = 86_400 / delta;
        let daily_kb = pulls_per_day * bytes_per_pull(0) / 1_000;

        rows.push(vec![
            format!("{delta}"),
            format!("{detection}"),
            format!("{}", 2 * delta),
            format!("{daily_kb}"),
        ]);
        assert!(
            detection <= 2 * delta + 2,
            "Δ={delta}: detection {detection}s exceeded the 2Δ bound"
        );
    }
    print_table(
        &[
            "Δ (s)",
            "measured detection (s)",
            "2Δ bound (s)",
            "quiet bandwidth (KB/day/CA)",
        ],
        &rows,
    );
    println!();
    println!("every measured detection sits within the paper's 2Δ window, and");
    println!("bandwidth scales as 1/Δ — the exact trade-off of footnote 3.");
}
