//! §VII-D throughput: end-to-end packet processing through a real
//! [`RevocationAgent`] — non-TLS fast path, full RITM handshakes, and
//! client-side status validation — measured with wall-clock time over the
//! actual middlebox code path (not microbenchmarks of isolated pieces).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::{RaConfig, RevocationAgent, StatusPayload};
use ritm_crypto::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, SerialNumber};
use ritm_net::middlebox::Middlebox;
use ritm_net::tcp::{Direction, FourTuple, SocketAddr, TcpSegment};
use ritm_net::time::SimTime;
use ritm_tls::certificate::{Certificate, CertificateChain};
use ritm_tls::extensions::Extension;
use ritm_tls::handshake::{ClientHello, HandshakeMessage, ServerHello};
use ritm_tls::record::{ContentType, TlsRecord};
use std::collections::HashMap;
use std::time::Instant;

const T0: u64 = 1_397_000_000;
const DELTA: u64 = 10;

fn tuple(port: u16) -> FourTuple {
    FourTuple {
        client: SocketAddr::new(1, port),
        server: SocketAddr::new(2, 443),
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let ca_key = SigningKey::from_seed([1u8; 32]);
    let mut ca = CaDictionary::new(
        CaId::from_name("TpCA"),
        ca_key.clone(),
        DELTA,
        1 << 10,
        &mut rng,
        T0,
    );
    let genesis = *ca.signed_root();
    let revoked: Vec<SerialNumber> = (0..50_000u32).map(SerialNumber::from_u24).collect();
    let iss = ca.insert(&revoked, &mut rng, T0 + 1).expect("insert");

    let mut ra = RevocationAgent::new(RaConfig {
        delta: DELTA,
        ..Default::default()
    });
    ra.follow_ca(ca.ca(), ca.verifying_key(), genesis).unwrap();
    ra.mirror_mut(&ca.ca())
        .unwrap()
        .apply_issuance(&iss, T0 + 1)
        .unwrap();

    let now = SimTime::from_secs(T0 + 2);

    // --- Non-TLS packets through the full middlebox path.
    let n = 200_000usize;
    let seg = TcpSegment::data(
        tuple(1),
        Direction::ToServer,
        0,
        0,
        b"GET / HTTP/1.1\r\n".to_vec(),
    );
    let t = Instant::now();
    for _ in 0..n {
        ra.process(seg.clone(), now);
    }
    let non_tls_rate = n as f64 / t.elapsed().as_secs_f64();

    // --- Full RITM-supported handshakes: ClientHello + ServerHello flight.
    let server_key = SigningKey::from_seed([2u8; 32]);
    let cert = Certificate::issue(
        &ca_key,
        ca.ca(),
        SerialNumber::from_u24(0x700000),
        "example.com",
        T0 - 100,
        T0 + 1_000_000,
        server_key.verifying_key(),
        false,
    );
    let ch = TlsRecord::new(
        ContentType::Handshake,
        HandshakeMessage::encode_all(&[HandshakeMessage::ClientHello(ClientHello {
            version: 0x0303,
            random: [1u8; 32],
            session_id: vec![],
            cipher_suites: vec![0xc02f],
            extensions: vec![Extension::ritm_request()],
        })]),
    );
    let flight = TlsRecord::new(
        ContentType::Handshake,
        HandshakeMessage::encode_all(&[
            HandshakeMessage::ServerHello(ServerHello {
                version: 0x0303,
                random: [2u8; 32],
                session_id: vec![3; 32],
                cipher_suite: 0xc02f,
                extensions: vec![],
            }),
            HandshakeMessage::Certificate(CertificateChain(vec![cert])),
            HandshakeMessage::ServerHelloDone,
        ]),
    );
    let hs = 20_000usize;
    let t = Instant::now();
    let mut last_out = Vec::new();
    for i in 0..hs {
        let port = (i % 60_000) as u16;
        ra.process(
            TcpSegment::data(tuple(port), Direction::ToServer, 0, 0, ch.to_bytes()),
            now,
        );
        last_out = ra.process(
            TcpSegment::data(tuple(port), Direction::ToClient, 0, 0, flight.to_bytes()),
            now,
        );
        // Connection done: drop state so the table does not grow unbounded.
        let mut fin = TcpSegment::data(tuple(port), Direction::ToServer, 1, 1, vec![]);
        fin.flags.fin = true;
        ra.process(fin, now);
    }
    let hs_rate = hs as f64 / t.elapsed().as_secs_f64();

    // --- Client-side validations of the status the RA just built.
    let status_rec = TlsRecord::parse_stream(&last_out[0].payload)
        .unwrap()
        .into_iter()
        .find(|r| r.content_type == ContentType::RitmStatus)
        .expect("status injected");
    let payload = StatusPayload::from_bytes(&status_rec.payload).unwrap();
    let mut keys = HashMap::new();
    keys.insert(ca.ca(), ca.verifying_key());
    let chain = [(ca.ca(), SerialNumber::from_u24(0x700000))];
    let vals = 5_000usize;
    let t = Instant::now();
    for _ in 0..vals {
        ritm_client::validate_payload(&payload, &chain, &keys, DELTA, T0 + 2).expect("valid");
    }
    let val_rate = vals as f64 / t.elapsed().as_secs_f64();

    println!("§VII-D end-to-end throughput through the real RA/middlebox path");
    println!();
    println!("  non-TLS packets/s:          {non_tls_rate:>12.0}   (paper: >340,000)");
    println!("  RITM TLS handshakes/s:      {hs_rate:>12.0}   (paper: >50,000)");
    println!("  client validations/s:       {val_rate:>12.0}   (paper: ~4,000)");
    println!();
    println!(
        "  RA stats: {} supported connections, {} statuses injected",
        ra.stats.supported_connections, ra.stats.statuses_sent
    );
}
