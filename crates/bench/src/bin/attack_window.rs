//! Attack-window comparison (an ablation backing §II and §V): the
//! worst-case time each revocation scheme leaves a revoked certificate
//! acceptable, the fraction of revocations it can see at all, and its
//! dissemination capacity under the Heartbleed load.

use ritm_baselines::{default_params, revcast_dissemination_secs, SchemeParams};
use ritm_bench::print_table;

fn fmt_secs(s: u64) -> String {
    if s >= 86_400 {
        format!("{:.1} d", s as f64 / 86_400.0)
    } else if s >= 3_600 {
        format!("{:.1} h", s as f64 / 3_600.0)
    } else if s >= 60 {
        format!("{:.1} m", s as f64 / 60.0)
    } else {
        format!("{s} s")
    }
}

fn main() {
    println!("Attack-window / coverage / privacy comparison (§II, §V)");
    println!();
    let rows: Vec<Vec<String>> = default_params(10)
        .iter()
        .map(|p| {
            vec![
                p.name().to_string(),
                fmt_secs(p.attack_window_secs()),
                format!("{:.2}%", p.revocation_coverage() * 100.0),
                p.extra_connections().to_string(),
                if p.leaks_browsing_target() {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "scheme",
            "attack window",
            "coverage",
            "extra conns",
            "leaks target",
        ],
        &rows,
    );

    println!();
    println!("RITM window scaling: 2Δ exactly");
    for delta in [10u64, 60, 300, 3_600, 86_400] {
        let p = SchemeParams::Ritm { delta_secs: delta };
        println!(
            "  Δ = {:>8} -> window {}",
            fmt_secs(delta),
            fmt_secs(p.attack_window_secs())
        );
    }

    println!();
    println!("Heartbleed-day dissemination (40,000 revocations):");
    let revcast = revcast_dissemination_secs(421.8, 21 * 8, 40_000);
    println!("  RevCast @421.8 bit/s: {:.1} h", revcast / 3_600.0);
    println!("  RITM @Δ=10s + CDN:    ~10.5 s (one Δ + sub-second pull, Fig. 5)");
    println!("  speedup:              {:.0}x", revcast / 10.5);
}
