//! Table II: average monthly cost (in thousands of USD) as a function of Δ
//! and the number of clients served per RA (30 / 250 / 1,000).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_bench::{billing_cycles, bytes_per_pull, print_table};
use ritm_cdn::pricing::aggregate_tiered_cost_usd;
use ritm_cdn::regions::Region;
use ritm_workloads::cities::CityModel;
use ritm_workloads::heartbleed::{rescale_to_total, weekly_series};
use ritm_workloads::isc::aggregates::LARGEST_CRL;

const CYCLES: usize = 18;
const CYCLE_SECS: u64 = 30 * 86_400;
const DELTAS: [(u64, &str); 4] = [
    (10, "10 sec"),
    (60, "1 min"),
    (3_600, "1 h"),
    (86_400, "1 day"),
];
const DENSITIES: [u64; 3] = [30, 250, 1_000];

fn monthly_bill(delta: u64, revs: u64, ras: &[(Region, u64)]) -> f64 {
    let periods = CYCLE_SECS / delta;
    let base = revs / periods;
    let extra = revs % periods;
    let bytes_per_ra = extra * bytes_per_pull(base + 1) + (periods - extra) * bytes_per_pull(base);
    let per_region: Vec<(Region, u64)> = ras.iter().map(|(r, n)| (*r, n * bytes_per_ra)).collect();
    aggregate_tiered_cost_usd(&per_region)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2);
    let cities = CityModel::synthesize(&mut rng);
    let series = rescale_to_total(&weekly_series(&mut rng), LARGEST_CRL);
    let cycles = billing_cycles(&series, CYCLES);

    println!("Table II: average monthly cost (thousands of USD) vs clients/RA and Δ");
    println!();
    let mut rows = Vec::new();
    for density in DENSITIES {
        let ras = cities.ras_per_region(density);
        let mut row = vec![format!("{density}")];
        for (delta, _) in DELTAS {
            let mean = cycles
                .iter()
                .map(|r| monthly_bill(delta, *r, &ras))
                .sum::<f64>()
                / CYCLES as f64;
            row.push(format!("{:.3}", mean / 1_000.0));
        }
        rows.push(row);
    }
    print_table(
        &["clients/RA", "Δ=10 sec", "Δ=1 min", "Δ=1 h", "Δ=1 day"],
        &rows,
    );
    println!();
    println!("paper (same units): 30: 18.574/3.450/0.647/0.108;");
    println!("                    250: 2.229/0.414/0.078/0.013; 1000: 0.557/0.103/0.019/0.003");
    println!("shape: cost ~ 1/density and ~ 1/Δ at small Δ, flattening at large Δ");
}
