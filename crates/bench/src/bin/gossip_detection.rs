//! §V extension experiment ("More powerful adversaries"): how quickly does
//! random gossip of signed roots expose an equivocating CA?
//!
//! N parties each hold one of the two forked views (a fraction `p` sees the
//! hiding view). Every round, each party cross-checks its latest root with
//! one uniformly random peer. The fork is detected as soon as any pair of
//! parties with different views compare roots. We report the measured
//! detection probability after k rounds, which the paper's gossip
//! discussion (reference 13, Chuat et al.) predicts to approach 1
//! exponentially.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ritm_bench::print_table;
use ritm_ca::{EquivocatingCa, View};
use ritm_crypto::SigningKey;
use ritm_dictionary::consistency::{Observation, RootObservatory};
use ritm_dictionary::SerialNumber;

const PARTIES: usize = 100;
const TRIALS: usize = 200;
const MAX_ROUNDS: usize = 8;

/// Fraction of parties that gossip in any given round (gossip is periodic
/// and unsynchronized, so only some parties exchange roots each round).
const GOSSIP_RATE: f64 = 0.05;

#[allow(clippy::needless_range_loop)] // index used against two arrays at once
fn trial(rng: &mut StdRng, ca: &EquivocatingCa, hiding_fraction: f64) -> Option<usize> {
    // Assign views; the CA targets at least one victim (otherwise there is
    // no fork to detect).
    let mut views: Vec<View> = (0..PARTIES)
        .map(|_| {
            if rng.gen::<f64>() < hiding_fraction {
                View::Hiding
            } else {
                View::Honest
            }
        })
        .collect();
    views[0] = View::Hiding;
    // One shared observatory per party would be realistic; detection only
    // needs any single party to observe both roots, so give each party its
    // own observatory seeded with its local view.
    let mut observatories: Vec<RootObservatory> = views
        .iter()
        .map(|v| {
            let mut o = RootObservatory::new();
            o.register_ca(ca.ca(), ca.verifying_key());
            o.observe(ca.signed_root(*v));
            o
        })
        .collect();
    for round in 1..=MAX_ROUNDS {
        for i in 0..PARTIES {
            if rng.gen::<f64>() > GOSSIP_RATE {
                continue;
            }
            let peer = rng.gen_range(0..PARTIES);
            if peer == i {
                continue;
            }
            let peer_root = ca.signed_root(views[peer]);
            if let Observation::Equivocation(_) = observatories[i].observe(peer_root) {
                return Some(round);
            }
        }
    }
    None
}

#[allow(clippy::needless_range_loop)]
fn main() {
    let mut rng = StdRng::seed_from_u64(2016);
    let cover: Vec<SerialNumber> = (1..8u32).map(SerialNumber::from_u24).collect();
    let ca = EquivocatingCa::new(
        "GossipCA",
        SigningKey::from_seed([8u8; 32]),
        10,
        1 << 8,
        SerialNumber::from_u24(0xdead),
        &cover,
        SerialNumber::from_u24(0xbeef),
        &mut rng,
        1_397_000_000,
    );

    println!(
        "Gossip fork detection: {PARTIES} parties, {TRIALS} trials, each party \
         gossips with one random peer with probability {GOSSIP_RATE} per round"
    );
    println!();
    let mut rows = Vec::new();
    for hiding_fraction in [0.01, 0.05, 0.2, 0.5] {
        let mut detected_by_round = [0usize; MAX_ROUNDS + 1];
        for _ in 0..TRIALS {
            if let Some(round) = trial(&mut rng, &ca, hiding_fraction) {
                for r in round..=MAX_ROUNDS {
                    detected_by_round[r] += 1;
                }
            }
        }
        let mut row = vec![format!("{:.0}%", hiding_fraction * 100.0)];
        for r in 1..=MAX_ROUNDS {
            row.push(format!(
                "{:.2}",
                detected_by_round[r] as f64 / TRIALS as f64
            ));
        }
        rows.push(row);
    }
    print_table(
        &[
            "victims", "round 1", "round 2", "round 3", "round 4", "round 5", "round 6", "round 7",
            "round 8",
        ],
        &rows,
    );
    println!();
    println!("even sparse gossip exposes a CA that forges the view of 1% of parties");
    println!("within a handful of rounds; at any sizeable victim population, one or two");
    println!("rounds suffice — maintaining a fork is untenable (§V).");
}
