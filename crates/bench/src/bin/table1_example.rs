//! Table I: example of the messages a CA disseminates over time —
//! revocation issuances with signed roots at t₀ and t₀+3Δ, bare freshness
//! statements in the quiet periods between.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_bench::print_table;
use ritm_crypto::hex;
use ritm_crypto::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, RefreshMessage, SerialNumber};

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let delta = 10u64;
    let t0 = 1_397_000_000u64;
    let mut ca = CaDictionary::new(
        CaId::from_name("Table1CA"),
        SigningKey::from_seed([1u8; 32]),
        delta,
        1 << 12,
        &mut rng,
        t0 - delta,
    );

    let sa = SerialNumber::from_u24(0x0a0a0a);
    let sb = SerialNumber::from_u24(0x0b0b0b);
    let sc = SerialNumber::from_u24(0x0c0c0c);
    let sd = SerialNumber::from_u24(0x0d0d0d);

    let mut rows = Vec::new();

    // t = t0: revoke sa, sb, sc.
    let iss = ca.insert(&[sa, sb, sc], &mut rng, t0).expect("new serials");
    rows.push(vec![
        "t0".into(),
        "sa, sb, sc".into(),
        format!(
            "sa, sb, sc, {{root={}…, n={}, H^m(v)={}…, t={}}}signed ({} B)",
            hex::encode(&iss.signed_root.root.as_bytes()[..4]),
            iss.signed_root.size,
            hex::encode(&iss.signed_root.anchor.as_bytes()[..4]),
            iss.signed_root.timestamp,
            iss.to_bytes().len(),
        ),
    ]);

    // t = t0 + Δ and t0 + 2Δ: nothing revoked → freshness statements only.
    for k in [1u64, 2] {
        let msg = ca.refresh(&mut rng, t0 + k * delta);
        match msg {
            RefreshMessage::Freshness(f) => rows.push(vec![
                format!("t0+{k}Δ"),
                "none".into(),
                format!(
                    "H^(m-{k})(v) = {}… ({} B)",
                    hex::encode(&f.value.as_bytes()[..4]),
                    f.to_bytes().len()
                ),
            ]),
            other => panic!("expected freshness, got {other:?}"),
        }
    }

    // t = t0 + 3Δ: revoke sd → new signed root with n+1.
    let iss = ca
        .insert(&[sd], &mut rng, t0 + 3 * delta)
        .expect("new serial");
    rows.push(vec![
        "t0+3Δ".into(),
        "sd".into(),
        format!(
            "sd, {{root'={}…, n={}, H^m(v')={}…, t={}}}signed ({} B)",
            hex::encode(&iss.signed_root.root.as_bytes()[..4]),
            iss.signed_root.size,
            hex::encode(&iss.signed_root.anchor.as_bytes()[..4]),
            iss.signed_root.timestamp,
            iss.to_bytes().len(),
        ),
    ]);

    println!("Table I: example of messages disseminated over time (Δ = {delta}s)");
    println!();
    print_table(&["time", "revoked serials", "disseminated message"], &rows);
    println!();
    println!(
        "note: quiet periods cost only a 20-byte freshness statement vs a \
         full signed issuance"
    );
}
