//! §VII-D storage overhead: bytes an RA needs to *store* the revocation
//! data versus the memory needed to *build and keep* all dictionaries, for
//! the full ISC dataset (1,381,992 revocations across 254 dictionaries) and
//! for the 10-million-revocation projection.
//!
//! Paper: "the storage overhead is slightly above 4 MB and the memory ...
//! is 36 MB (for 10 million revocations this overhead is 30 MB and 260 MB)".

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_bench::print_table;
use ritm_crypto::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, SerialNumber};
use ritm_workloads::isc::IscDataset;

const T0: u64 = 1_397_000_000;

/// Builds every dictionary of the dataset (scaled by `scale`) and sums the
/// storage/memory metrics. 3-byte serials per the paper's analysis setting.
fn measure(scale: f64) -> (usize, usize, u64) {
    let mut rng = StdRng::seed_from_u64(9);
    let dataset = IscDataset::synthesize();
    let mut storage = 0usize;
    let mut memory = 0usize;
    let mut total = 0u64;
    let mut next_serial = 0u32;
    for (i, &size) in dataset.sizes.iter().enumerate() {
        let n = ((size as f64 * scale).round() as u64).max(1);
        let mut ca = CaDictionary::new(
            CaId::from_name(&format!("CA{i}")),
            SigningKey::from_seed([i as u8; 32]),
            10,
            1 << 8,
            &mut rng,
            T0,
        );
        let serials: Vec<SerialNumber> = (0..n)
            .map(|_| {
                next_serial = next_serial.wrapping_add(1);
                SerialNumber::from_u24(next_serial)
            })
            .collect();
        ca.insert(&serials, &mut rng, T0 + 1);
        storage += ca.storage_bytes();
        memory += ca.memory_bytes();
        total += ca.len() as u64;
    }
    (storage, memory, total)
}

fn main() {
    println!("§VII-D storage/memory overhead at an RA (3-byte serials, 254 dictionaries)");
    println!();
    let mut rows = Vec::new();
    // Full ISC dataset.
    let (storage, memory, total) = measure(1.0);
    rows.push(vec![
        format!("{total}"),
        format!("{:.1}", storage as f64 / 1e6),
        format!("{:.1}", memory as f64 / 1e6),
        "4 / 36".into(),
    ]);
    // 10-million-revocation projection (scale the same shape up ~7.24x).
    let scale = 10_000_000.0 / total as f64;
    let (storage10, memory10, total10) = measure(scale);
    rows.push(vec![
        format!("{total10}"),
        format!("{:.1}", storage10 as f64 / 1e6),
        format!("{:.1}", memory10 as f64 / 1e6),
        "30 / 260".into(),
    ]);
    print_table(
        &[
            "revocations",
            "storage (MB)",
            "memory (MB)",
            "paper storage/mem (MB)",
        ],
        &rows,
    );
    println!();
    println!(
        "shape: both metrics linear in revocations (x{:.2} revocations -> x{:.2} storage, x{:.2} memory)",
        total10 as f64 / total as f64,
        storage10 as f64 / storage as f64,
        memory10 as f64 / memory as f64,
    );
    println!("note: our storage includes an 8-byte revocation number per entry, and our");
    println!(
        "memory keeps every tree level; constants differ, scaling matches (see EXPERIMENTS.md)"
    );
}
