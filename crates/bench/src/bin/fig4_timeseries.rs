//! Fig. 4: number of revocations issued between January 2014 and June 2015,
//! with a focus on the Heartbleed peak (16–17 April 2014).
//!
//! Regenerates both panels from the synthetic ISC time series (see
//! DESIGN.md for the substitution).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_workloads::heartbleed::{peak_days_six_hourly, weekly_series, HEARTBLEED_DISCLOSURE};

fn bar(count: u64, per_char: u64) -> String {
    "#".repeat((count / per_char.max(1)) as usize)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2014);

    println!("Fig. 4 (top): weekly revocations, Jan 2014 - Jun 2015");
    let series = weekly_series(&mut rng);
    let total: u64 = series.iter().map(|b| b.count).sum();
    for bin in &series {
        let marker = if bin.start <= HEARTBLEED_DISCLOSURE
            && HEARTBLEED_DISCLOSURE < bin.start + 7 * 86_400
        {
            " <- Heartbleed disclosure"
        } else {
            ""
        };
        println!(
            "  week@{:>10}  {:>6}  {}{}",
            bin.start,
            bin.count,
            bar(bin.count, 1_500),
            marker
        );
    }
    let peak = series.iter().max_by_key(|b| b.count).unwrap();
    println!(
        "  total: {total} revocations; peak week: {} at {}",
        peak.count, peak.start
    );

    println!();
    println!("Fig. 4 (bottom): 16-17 April 2014 in 6-hour bins");
    let bins = peak_days_six_hourly(&mut rng);
    for bin in &bins {
        println!(
            "  t@{:>10}  {:>6}  {}",
            bin.start,
            bin.count,
            bar(bin.count, 200)
        );
    }
    let peak = bins.iter().map(|b| b.count).max().unwrap();
    println!("  peak 6-hour bin: {peak} revocations (paper: ~10,000)");
}
