//! Table III: detailed processing time (µs) of every RITM operation on the
//! TLS fast path, 500 repetitions each, plus the §VII-D dictionary-update
//! timings and the derived throughput numbers.
//!
//! | entity | operation                  | paper avg (µs) |
//! |--------|----------------------------|----------------|
//! | RA     | TLS detection (DPI)        | 2.93           |
//! | RA     | certificate parsing (DPI)  | 19.95          |
//! | RA     | proof construction         | 67.17          |
//! | client | proof validation           | 54.51          |
//! | client | sig. + freshness valid.    | 197.27         |

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_bench::{print_table, stats};
use ritm_crypto::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, MirrorDictionary, SerialNumber};
use ritm_tls::certificate::{Certificate, CertificateChain};
use ritm_tls::handshake::{HandshakeMessage, ServerHello};
use ritm_tls::record::{ContentType, TlsRecord};
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 500;
const T0: u64 = 1_397_000_000;
const DELTA: u64 = 10;
/// The largest observed CRL (the paper benchmarks against it).
const DICT_SIZE: u32 = 339_557;

fn time_op<F: FnMut()>(mut f: F) -> Vec<f64> {
    for _ in 0..20 {
        f(); // warm-up
    }
    (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let ca_key = SigningKey::from_seed([1u8; 32]);

    eprintln!("building a {DICT_SIZE}-entry dictionary (largest observed CRL)...");
    let mut ca = CaDictionary::new(
        CaId::from_name("T3CA"),
        ca_key.clone(),
        DELTA,
        1 << 10,
        &mut rng,
        T0,
    );
    let genesis = *ca.signed_root();
    let serials: Vec<SerialNumber> = (0..DICT_SIZE).map(SerialNumber::from_u24).collect();
    let iss = ca.insert(&serials, &mut rng, T0 + 1).expect("insert");
    let mut mirror = MirrorDictionary::new(ca.ca(), ca.verifying_key(), genesis).expect("genesis");
    mirror.set_delta(DELTA);
    mirror
        .apply_issuance(&iss, T0 + 1)
        .expect("mirror catches up");

    // --- RA: TLS detection (per-packet classify on non-handshake traffic).
    let app_record = TlsRecord::new(ContentType::ApplicationData, vec![0x17; 1_200]).to_bytes();
    let http = b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n".to_vec();
    let detection = time_op(|| {
        black_box(ritm_agent::dpi::classify(black_box(&app_record)));
        black_box(ritm_agent::dpi::classify(black_box(&http)));
    });

    // --- RA: certificate parsing — a 3-cert chain, "the most common
    //     number" per the paper.
    let inter_key = SigningKey::from_seed([2u8; 32]);
    let leaf_key = SigningKey::from_seed([3u8; 32]);
    let root_cert = Certificate::issue(
        &ca_key,
        ca.ca(),
        SerialNumber::from_u24(0xfffff0),
        "T3CA",
        T0 - 100,
        T0 + 1_000_000,
        ca_key.verifying_key(),
        true,
    );
    let inter = Certificate::issue(
        &ca_key,
        ca.ca(),
        SerialNumber::from_u24(0xfffff1),
        "Inter",
        T0 - 100,
        T0 + 1_000_000,
        inter_key.verifying_key(),
        true,
    );
    let leaf = Certificate::issue(
        &inter_key,
        CaId::from_name("Inter"),
        SerialNumber::from_u24(0x123456),
        "example.com",
        T0 - 100,
        T0 + 1_000_000,
        leaf_key.verifying_key(),
        false,
    );
    let flight = TlsRecord::new(
        ContentType::Handshake,
        HandshakeMessage::encode_all(&[
            HandshakeMessage::ServerHello(ServerHello {
                version: 0x0303,
                random: [7u8; 32],
                session_id: vec![1; 32],
                cipher_suite: 0xc02f,
                extensions: vec![],
            }),
            HandshakeMessage::Certificate(CertificateChain(vec![leaf, inter, root_cert])),
            HandshakeMessage::ServerHelloDone,
        ]),
    )
    .to_bytes();
    let parsing = time_op(|| {
        black_box(ritm_agent::dpi::classify(black_box(&flight)));
    });

    // --- RA: proof construction over the full-size dictionary.
    let query = SerialNumber::from_u24(0xabcdef); // not revoked → absence proof
    let construction = time_op(|| {
        black_box(mirror.prove(black_box(&query)));
    });

    // --- Client: proof validation (path recomputation only).
    let status = mirror.prove(&query);
    let validation = time_op(|| {
        black_box(
            status
                .proof
                .verify(&query, &status.signed_root.root, status.signed_root.size)
                .expect("valid proof"),
        );
    });

    // --- Client: signature + freshness validation.
    let vk = ca.verifying_key();
    let sig_fresh = time_op(|| {
        status.signed_root.verify(&vk).expect("valid signature");
        status
            .freshness
            .verify(&status.signed_root, DELTA, T0 + 2)
            .expect("fresh");
    });

    println!(
        "Table III: detailed processing time in µs ({REPS} reps, {DICT_SIZE}-entry dictionary)"
    );
    println!();
    let rows: Vec<Vec<String>> = [
        ("RA", "TLS detection (DPI)", &detection, 2.93),
        ("RA", "certificate parsing (DPI)", &parsing, 19.95),
        ("RA", "proof construction", &construction, 67.17),
        ("client", "proof validation", &validation, 54.51),
        ("client", "sig. + freshness valid.", &sig_fresh, 197.27),
    ]
    .iter()
    .map(|(entity, op, samples, paper)| {
        let s = stats(samples);
        vec![
            entity.to_string(),
            op.to_string(),
            format!("{:.2}", s.max),
            format!("{:.2}", s.min),
            format!("{:.2}", s.mean),
            format!("{paper:.2}"),
        ]
    })
    .collect();
    print_table(
        &["entity", "operation", "max", "min", "avg", "paper avg"],
        &rows,
    );

    // --- §VII-D: dictionary update with 1,000 new revocations (CA insert /
    //     RA update+verify), on the average-size dictionary (5,440 entries).
    println!();
    println!("§VII-D: dictionary update with 1,000 new revocations (ms), avg-size dictionary");
    let mut ins_samples = Vec::new();
    let mut upd_samples = Vec::new();
    for rep in 0..20 {
        let mut ca2 = CaDictionary::new(
            CaId::from_name("AvgCA"),
            SigningKey::from_seed([9u8; 32]),
            DELTA,
            1 << 10,
            &mut rng,
            T0,
        );
        let genesis2 = *ca2.signed_root();
        let base: Vec<SerialNumber> = (0..5_440u32)
            .map(|i| SerialNumber::from_u24(i * 7 + rep))
            .collect();
        let iss0 = ca2.insert(&base, &mut rng, T0 + 1).expect("base insert");
        let mut m2 = MirrorDictionary::new(ca2.ca(), ca2.verifying_key(), genesis2).unwrap();
        m2.set_delta(DELTA);
        m2.apply_issuance(&iss0, T0 + 1).unwrap();

        let batch: Vec<SerialNumber> = (0..1_000u32)
            .map(|i| SerialNumber::from_u24(0x800000 + i * 3 + rep))
            .collect();
        let t = Instant::now();
        let iss1 = ca2.insert(&batch, &mut rng, T0 + 2).expect("batch insert");
        ins_samples.push(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        m2.apply_issuance(&iss1, T0 + 2).expect("batch update");
        upd_samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let ins = stats(&ins_samples);
    let upd = stats(&upd_samples);
    println!(
        "  CA insert(1000): max {:.2} / min {:.2} / avg {:.2}   (paper: 3.88/2.75/2.93)",
        ins.max, ins.min, ins.mean
    );
    println!(
        "  RA update(1000): max {:.2} / min {:.2} / avg {:.2}   (paper: 5.87/2.62/2.84)",
        upd.max, upd.min, upd.mean
    );

    // --- Incremental engine summary: batch apply vs full rebuild, and the
    //     RA's epoch-keyed proof cache (cold vs hot path), on the same
    //     largest-CRL dictionary.
    println!();
    println!("incremental dictionary engine ({DICT_SIZE}-entry dictionary):");
    {
        use ritm_dictionary::tree::{Leaf, MerkleTree};
        let mut base = MerkleTree::new();
        let leaves: Vec<Leaf> = (0..DICT_SIZE)
            .map(|i| Leaf::new(SerialNumber::from_u24(i * 2), i as u64 + 1))
            .collect();
        base.apply_sorted_batch(&leaves);
        let batch: Vec<Leaf> = (0..100u32)
            .map(|i| {
                Leaf::new(
                    SerialNumber::from_u24(DICT_SIZE * 2 + 1 + i),
                    (DICT_SIZE + i) as u64 + 1,
                )
            })
            .collect();

        let reps = 10;
        let mut full = Vec::new();
        let mut incr = Vec::new();
        for _ in 0..reps {
            let mut t = base.clone();
            t.extend_leaves(batch.iter().copied());
            let started = Instant::now();
            t.rebuild();
            full.push(started.elapsed().as_secs_f64() * 1e3);

            let mut t = base.clone();
            let started = Instant::now();
            t.apply_sorted_batch(&batch);
            incr.push(started.elapsed().as_secs_f64() * 1e3);
        }
        let full_ms = stats(&full).mean;
        let incr_ms = stats(&incr).mean;
        println!(
            "  apply 100-serial batch: full rebuild {:.3} ms, incremental {:.4} ms  ({:.0}x speedup)",
            full_ms,
            incr_ms,
            full_ms / incr_ms.max(1e-9)
        );

        let cache = ritm_agent::ProofCache::default();
        let ca_id = mirror.ca();
        let epoch = mirror.epoch();
        let cold = time_op(|| {
            black_box(mirror.proof(black_box(&query)));
        });
        let cached = time_op(|| {
            black_box(cache.get_or_insert(ca_id, query, epoch, || mirror.proof(&query)));
        });
        let cold_us = stats(&cold).mean;
        let cached_us = stats(&cached).mean;
        let cs = cache.stats();
        println!(
            "  proof construction: cold {:.2} µs, epoch-cached {:.3} µs  ({:.0}x; {} hits / {} misses)",
            cold_us,
            cached_us,
            cold_us / cached_us.max(1e-9),
            cs.hits,
            cs.misses
        );
    }

    // --- Derived throughput (§VII-D).
    println!();
    let det = stats(&detection).mean;
    let hs = stats(&parsing).mean + stats(&construction).mean + det;
    let val = stats(&validation).mean + stats(&sig_fresh).mean;
    println!("derived throughput:");
    println!(
        "  RA non-TLS packets/s:          {:>12.0}   (paper: >340,000)",
        1e6 / det * 2.0 // time_op classified two packets per rep
    );
    println!(
        "  RA RITM handshakes/s:          {:>12.0}   (paper: >50,000)",
        1e6 / hs
    );
    println!(
        "  client status validations/s:   {:>12.0}   (paper: ~4,000)",
        1e6 / val
    );
    println!();
    println!(
        "RITM adds ~{:.0} µs client-side per handshake — <1% of a ~30 ms TLS handshake",
        val
    );
}
