//! Table IV: comparison of revocation mechanisms in terms of storage,
//! connections, and achieved properties, at full deployment and paper
//! scale (`ns, nca, nra, ncl, nrev` from §VII).

use ritm_baselines::{Deployment, ALL_SCHEMES};
use ritm_bench::print_table;

fn fmt_u128(v: u128) -> String {
    if v >= 1_000_000_000_000 {
        format!("{:.1}e12", v as f64 / 1e12)
    } else if v >= 1_000_000 {
        format!("{:.1}e6", v as f64 / 1e6)
    } else {
        v.to_string()
    }
}

fn main() {
    let d = Deployment::paper_scale();
    println!(
        "Table IV: revocation-mechanism comparison at paper scale\n\
         (servers={}, CAs={}, RAs={}, clients={}, revocations={})",
        d.servers, d.cas, d.ras, d.clients, d.revocations
    );
    println!();
    let rows: Vec<Vec<String>> = ALL_SCHEMES
        .iter()
        .map(|s| {
            let o = s.overhead(&d);
            vec![
                s.name().to_string(),
                fmt_u128(o.storage_global),
                o.storage_client.to_string(),
                fmt_u128(o.connections_global),
                o.connections_client.to_string(),
                s.properties().violated(),
            ]
        })
        .collect();
    print_table(
        &[
            "method",
            "storage (global)",
            "storage (client)",
            "conn (global)",
            "conn (client)",
            "violated",
        ],
        &rows,
    );
    println!();
    println!("units: revocation entries (storage) / connections; formulas as in the paper");
    println!("I: near-instant  P: privacy  E: efficiency/scalability");
    println!("S: server changes not required  T: transparency/accountability");
}
