//! Fig. 5: CDF of the time RAs need to download revocation messages of
//! 0 / 15k / 30k / 45k / 60k revocations from the CDN, measured from 80
//! vantage points × 10 repetitions, with edge caching disabled (TTL = 0 —
//! the worst case, every request goes through to the origin).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_bench::{print_table, quantile};
use ritm_cdn::network::Cdn;
use ritm_cdn::origin::ContentKey;
use ritm_dictionary::CaId;
use ritm_net::time::{SimDuration, SimTime};
use ritm_workloads::planetlab::{message_bytes, vantage_points, FIG5_MESSAGE_SIZES, REPETITIONS};

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    // TTL = 0: caching off, as the paper configured CloudFront.
    let mut cdn = Cdn::new(SimDuration::ZERO);
    let ca = CaId::from_name("Fig5CA");

    // Upload the five revocation messages.
    for &revs in &FIG5_MESSAGE_SIZES {
        let bytes = vec![0xA5u8; message_bytes(revs) as usize];
        cdn.origin
            .publish_raw(ContentKey::Issuance { ca, version: revs }, bytes);
    }

    println!(
        "Fig. 5: download-time CDF, {} vantage points x {} repetitions, TTL=0",
        vantage_points().len(),
        REPETITIONS
    );
    let mut rows = Vec::new();
    let mut all_ok = true;
    for &revs in &FIG5_MESSAGE_SIZES {
        let key = ContentKey::Issuance { ca, version: revs };
        let mut samples = Vec::new();
        for vp in vantage_points() {
            for _ in 0..REPETITIONS {
                let (_, stats) = cdn
                    .pull(vp.region, &key, SimTime::ZERO, &mut rng)
                    .expect("message published");
                assert!(!stats.cache_hit, "TTL=0 must never hit");
                samples.push(stats.latency.as_secs_f64());
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p50 = quantile(&samples, 0.50);
        let p90 = quantile(&samples, 0.90);
        let p99 = quantile(&samples, 0.99);
        let max = quantile(&samples, 1.0);
        all_ok &= p90 < 1.0;
        rows.push(vec![
            format!("{revs}"),
            format!("{}", message_bytes(revs)),
            format!("{p50:.3}"),
            format!("{p90:.3}"),
            format!("{p99:.3}"),
            format!("{max:.3}"),
        ]);
    }
    print_table(
        &[
            "revocations",
            "bytes",
            "p50 (s)",
            "p90 (s)",
            "p99 (s)",
            "max (s)",
        ],
        &rows,
    );
    println!();
    println!(
        "paper's headline: 90% of nodes download even the 60k message in < 1 s -> {}",
        if all_ok {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
