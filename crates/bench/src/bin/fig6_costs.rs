//! Fig. 6: the monthly bill a CA pays the CDN operator for disseminating its
//! revocation list, from 1 January 2014 to 1 August 2015 (19 billing
//! cycles), for Δ ∈ {10 s, 1 min, 1 h, 1 day}, with 10 clients per RA.
//!
//! The CA is the one with the largest observed CRL (339,557 entries),
//! revoking along the Fig. 4 time-series shape; RAs are placed by city
//! population; pricing is CloudFront's aggregate-usage tier ladder.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_bench::{billing_cycles, bytes_per_pull, print_table};
use ritm_cdn::pricing::aggregate_tiered_cost_usd;
use ritm_cdn::regions::Region;
use ritm_workloads::cities::CityModel;
use ritm_workloads::heartbleed::{rescale_to_total, weekly_series};
use ritm_workloads::isc::aggregates::LARGEST_CRL;

/// Billing cycles simulated (Jan 2014 – Aug 2015).
const CYCLES: usize = 18;
/// Seconds per 30-day billing cycle.
const CYCLE_SECS: u64 = 30 * 86_400;

/// The Fig. 6 Δ values.
const DELTAS: [(u64, &str); 4] = [(10, "10s"), (60, "1m"), (3_600, "1h"), (86_400, "1d")];

/// Monthly bill for one Δ and one cycle's revocation count.
fn monthly_bill(delta: u64, cycle_revocations: u64, ras_per_region: &[(Region, u64)]) -> f64 {
    let periods = CYCLE_SECS / delta;
    // Revocations spread uniformly over the cycle's periods (batch size per
    // period); leftover revocations land in the first periods.
    let base = cycle_revocations / periods;
    let extra_periods = cycle_revocations % periods;
    let bytes_per_ra =
        extra_periods * bytes_per_pull(base + 1) + (periods - extra_periods) * bytes_per_pull(base);
    let per_region: Vec<(Region, u64)> = ras_per_region
        .iter()
        .map(|(r, n)| (*r, n * bytes_per_ra))
        .collect();
    aggregate_tiered_cost_usd(&per_region)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(6);
    let cities = CityModel::synthesize(&mut rng);
    let ras = cities.ras_per_region(10);
    let total_ras: u64 = ras.iter().map(|(_, n)| n).sum();

    // The largest CRL's 339,557 revocations, replayed along the Fig. 4
    // shape across the billing period.
    let series = rescale_to_total(&weekly_series(&mut rng), LARGEST_CRL);
    let cycles = billing_cycles(&series, CYCLES);

    println!("Fig. 6: monthly CA bill (USD), 10 clients/RA ({total_ras} RAs)");
    println!("revocation stream: largest CRL ({LARGEST_CRL} entries) on the Fig. 4 shape");
    println!();
    let mut rows = Vec::new();
    let mut per_delta_mean = Vec::new();
    for (cycle, revs) in cycles.iter().enumerate() {
        let mut row = vec![format!("{}", cycle + 1), format!("{revs}")];
        for (delta, _) in DELTAS {
            row.push(format!("{:.1}", monthly_bill(delta, *revs, &ras)));
        }
        rows.push(row);
    }
    for (i, (delta, _)) in DELTAS.iter().enumerate() {
        let mean = cycles
            .iter()
            .map(|r| monthly_bill(*delta, *r, &ras))
            .sum::<f64>()
            / CYCLES as f64;
        per_delta_mean.push(mean);
        let _ = i;
    }
    print_table(
        &[
            "cycle",
            "revocations",
            "Δ=10s ($)",
            "Δ=1m ($)",
            "Δ=1h ($)",
            "Δ=1d ($)",
        ],
        &rows,
    );
    println!();
    println!("mean monthly bill per Δ:");
    for ((_, label), mean) in DELTAS.iter().zip(&per_delta_mean) {
        println!("  Δ={label:<4} ${mean:>12.2}");
    }
    println!();
    println!(
        "shape checks: bill(10s)/bill(1m) = {:.1} (pull-dominated, ~6x), \
         Heartbleed bump visible at Δ=1d: max/min = {:.1}x",
        per_delta_mean[0] / per_delta_mean[1],
        {
            let bills: Vec<f64> = cycles
                .iter()
                .map(|r| monthly_bill(86_400, *r, &ras))
                .collect();
            let max = bills.iter().cloned().fold(f64::MIN, f64::max);
            let min = bills.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        }
    );
}
