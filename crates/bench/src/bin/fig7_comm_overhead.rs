//! Fig. 7: communication overhead within the dissemination network — how
//! much data a single RA downloads every Δ during the week of the
//! Heartbleed disclosure, for Δ ∈ {10 s, 1 min, 5 min, 1 h, 1 day} and 254
//! dictionaries (one per observed CRL).
//!
//! The paper's headline numbers: ~4–5 KB/Δ at small Δ (freshness-statement
//! dominated), ~25 KB at Δ = 1 h, ~230 KB at Δ = 1 day during the peak.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_bench::{bytes_per_pull, print_table, stats};
use ritm_workloads::heartbleed::{
    disclosure_fortnight_daily, per_period_counts, HEARTBLEED_DISCLOSURE, WEEK,
};
use ritm_workloads::isc::aggregates::CRL_COUNT;

const DELTAS: [(u64, &str); 5] = [
    (10, "10 sec"),
    (60, "1 min"),
    (300, "5 min"),
    (3_600, "1 h"),
    (86_400, "1 day"),
];

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // Daily resolution across the disclosure fortnight (standard + extreme
    // rates).
    let series = disclosure_fortnight_daily(&mut rng);
    let window_start = HEARTBLEED_DISCLOSURE - WEEK;
    let window_end = HEARTBLEED_DISCLOSURE + WEEK;

    println!("Fig. 7: per-RA download per Δ during the Heartbleed week, {CRL_COUNT} dictionaries");
    println!();
    let mut rows = Vec::new();
    for (delta, label) in DELTAS {
        // Global revocation counts per Δ-period across all CAs.
        let per_period = per_period_counts(&series, 86_400, delta, window_start, window_end);
        // Each of the 254 dictionaries refreshes every Δ (20 B each); the
        // revocation bytes are whatever the period's batch carries. The
        // paper attributes the week's revocations to the whole CA
        // population, so the per-RA issuance traffic is the global batch.
        let samples: Vec<f64> = per_period
            .iter()
            .map(|&revs| {
                let freshness_all = (CRL_COUNT as u64 - 1) * 20;
                (bytes_per_pull(revs) + freshness_all) as f64 / 1_000.0
            })
            .collect();
        let s = stats(&samples);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", s.min),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.max),
        ]);
    }
    print_table(&["Δ", "min (KB/Δ)", "mean (KB/Δ)", "peak (KB/Δ)"], &rows);
    println!();
    println!("paper: ~4-5 KB/Δ at small Δ; ~25 KB at Δ=1h; ~230 KB at Δ=1day (peak)");
}
