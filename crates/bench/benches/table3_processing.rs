//! Criterion microbenchmarks for the Table III operations: DPI
//! classification, certificate parsing, proof construction, and client-side
//! validation. The `table3_processing` binary prints the paper-style
//! max/min/avg table; this harness gives statistically robust timings.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_crypto::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, MirrorDictionary, SerialNumber};
use ritm_tls::certificate::{Certificate, CertificateChain};
use ritm_tls::extensions::Extension;
use ritm_tls::handshake::{ClientHello, HandshakeMessage, ServerHello};
use ritm_tls::record::{ContentType, TlsRecord};
use std::hint::black_box;

const T0: u64 = 1_397_000_000;
const DELTA: u64 = 10;

struct Fixture {
    mirror: MirrorDictionary,
    ca_key: ritm_crypto::ed25519::VerifyingKey,
    app_record: Vec<u8>,
    http: Vec<u8>,
    client_hello: Vec<u8>,
    flight: Vec<u8>,
    query: SerialNumber,
}

fn fixture(dict_size: u32) -> Fixture {
    let mut rng = StdRng::seed_from_u64(1);
    let ca_key = SigningKey::from_seed([1u8; 32]);
    let mut ca = CaDictionary::new(
        CaId::from_name("BenchCA"),
        ca_key.clone(),
        DELTA,
        1 << 8,
        &mut rng,
        T0,
    );
    let genesis = *ca.signed_root();
    let serials: Vec<SerialNumber> = (0..dict_size).map(SerialNumber::from_u24).collect();
    let iss = ca.insert(&serials, &mut rng, T0 + 1).expect("insert");
    let mut mirror = MirrorDictionary::new(ca.ca(), ca.verifying_key(), genesis).unwrap();
    mirror.set_delta(DELTA);
    mirror.apply_issuance(&iss, T0 + 1).unwrap();

    let server_key = SigningKey::from_seed([2u8; 32]);
    let cert = Certificate::issue(
        &ca_key,
        ca.ca(),
        SerialNumber::from_u24(0x900000),
        "example.com",
        T0 - 100,
        T0 + 1_000_000,
        server_key.verifying_key(),
        false,
    );
    Fixture {
        ca_key: ca.verifying_key(),
        mirror,
        app_record: TlsRecord::new(ContentType::ApplicationData, vec![0x17; 1_200]).to_bytes(),
        http: b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n".to_vec(),
        client_hello: TlsRecord::new(
            ContentType::Handshake,
            HandshakeMessage::encode_all(&[HandshakeMessage::ClientHello(ClientHello {
                version: 0x0303,
                random: [1u8; 32],
                session_id: vec![],
                cipher_suites: vec![0xc02f],
                extensions: vec![Extension::ritm_request()],
            })]),
        )
        .to_bytes(),
        flight: TlsRecord::new(
            ContentType::Handshake,
            HandshakeMessage::encode_all(&[
                HandshakeMessage::ServerHello(ServerHello {
                    version: 0x0303,
                    random: [2u8; 32],
                    session_id: vec![3; 32],
                    cipher_suite: 0xc02f,
                    extensions: vec![],
                }),
                HandshakeMessage::Certificate(CertificateChain(vec![cert])),
                HandshakeMessage::ServerHelloDone,
            ]),
        )
        .to_bytes(),
        query: SerialNumber::from_u24(0xabcdef),
    }
}

fn bench_table3(c: &mut Criterion) {
    let f = fixture(339_557);
    let mut g = c.benchmark_group("table3");

    g.bench_function("ra_tls_detection_app_data", |b| {
        b.iter(|| black_box(ritm_agent::dpi::classify(black_box(&f.app_record))))
    });
    g.bench_function("ra_tls_detection_non_tls", |b| {
        b.iter(|| black_box(ritm_agent::dpi::classify(black_box(&f.http))))
    });
    g.bench_function("ra_client_hello_parse", |b| {
        b.iter(|| black_box(ritm_agent::dpi::classify(black_box(&f.client_hello))))
    });
    g.bench_function("ra_certificate_parse", |b| {
        b.iter(|| black_box(ritm_agent::dpi::classify(black_box(&f.flight))))
    });
    g.bench_function("ra_proof_construction_339k", |b| {
        b.iter(|| black_box(f.mirror.prove(black_box(&f.query))))
    });

    let status = f.mirror.prove(&f.query);
    g.bench_function("client_proof_validation", |b| {
        b.iter(|| {
            status
                .proof
                .verify(&f.query, &status.signed_root.root, status.signed_root.size)
                .expect("valid")
        })
    });
    g.bench_function("client_sig_freshness_validation", |b| {
        b.iter(|| {
            status.signed_root.verify(&f.ca_key).expect("valid");
            status
                .freshness
                .verify(&status.signed_root, DELTA, T0 + 2)
                .expect("fresh")
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_table3
}
criterion_main!(benches);
