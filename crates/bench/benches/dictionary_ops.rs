//! Criterion benchmarks for the authenticated dictionary itself: insert and
//! update scaling (§VII-D) plus an ablation over dictionary size showing the
//! logarithmic proof cost that Table III relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_crypto::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, MirrorDictionary, SerialNumber};
use std::hint::black_box;

const T0: u64 = 1_397_000_000;

fn built_pair(n: u32) -> (CaDictionary, MirrorDictionary) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut ca = CaDictionary::new(
        CaId::from_name("DictBench"),
        SigningKey::from_seed([1u8; 32]),
        10,
        1 << 8,
        &mut rng,
        T0,
    );
    let genesis = *ca.signed_root();
    let serials: Vec<SerialNumber> = (0..n).map(|i| SerialNumber::from_u24(i * 2)).collect();
    let iss = ca.insert(&serials, &mut rng, T0 + 1).expect("insert");
    let mut mirror = MirrorDictionary::new(ca.ca(), ca.verifying_key(), genesis).unwrap();
    mirror.set_delta(10);
    mirror.apply_issuance(&iss, T0 + 1).unwrap();
    (ca, mirror)
}

fn bench_insert_1000(c: &mut Criterion) {
    // §VII-D: "to insert 1,000 new revocations ... 2.93 ms on average" —
    // against the average-size (5,440-entry) dictionary.
    c.bench_function("ca_insert_1000_into_avg_dict", |b| {
        b.iter_batched(
            || {
                let (ca, _) = built_pair(5_440);
                let batch: Vec<SerialNumber> =
                    (0..1_000u32).map(|i| SerialNumber::from_u24(0x800000 + i)).collect();
                (ca, batch, StdRng::seed_from_u64(9))
            },
            |(mut ca, batch, mut rng)| {
                black_box(ca.insert(&batch, &mut rng, T0 + 2));
            },
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("ra_update_1000_into_avg_dict", |b| {
        b.iter_batched(
            || {
                let (mut ca, mirror) = built_pair(5_440);
                let batch: Vec<SerialNumber> =
                    (0..1_000u32).map(|i| SerialNumber::from_u24(0x800000 + i)).collect();
                let mut rng = StdRng::seed_from_u64(9);
                let iss = ca.insert(&batch, &mut rng, T0 + 2).expect("insert");
                (mirror, iss)
            },
            |(mut mirror, iss)| {
                mirror.apply_issuance(&iss, T0 + 2).expect("update");
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_prove_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("prove_vs_dict_size");
    for n in [1_000u32, 10_000, 100_000, 339_557] {
        let (_, mirror) = built_pair(n);
        let query = SerialNumber::from_u24(0x700001); // absent (odd serial)
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(mirror.prove(black_box(&query))))
        });
    }
    g.finish();
}

fn bench_status_validation(c: &mut Criterion) {
    let (ca, mirror) = built_pair(100_000);
    let query = SerialNumber::from_u24(0x700001);
    let status = mirror.prove(&query);
    let key = ca.verifying_key();
    c.bench_function("client_full_status_validation_100k", |b| {
        b.iter(|| status.validate(&query, &key, 10, T0 + 2).expect("valid"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_insert_1000, bench_prove_scaling, bench_status_validation
}
criterion_main!(benches);
