//! Criterion benchmarks for the authenticated dictionary itself: insert and
//! update scaling (§VII-D), an ablation over dictionary size showing the
//! logarithmic proof cost that Table III relies on, the incremental engine
//! against full rebuilds (10k/100k/1M leaves), cold vs epoch-cached proof
//! construction, parallel vs sequential full rebuilds on the [`HashPool`],
//! compressed chain multiproofs vs independent audit paths, concurrent
//! snapshot-based proof serving vs a serialized `&mut`-style baseline, and
//! structurally-shared snapshot publication (`snapshot_publish/persistent`)
//! vs the PR 2 dense deep-clone baseline (`snapshot_publish/dense`), and
//! the event-driven serving stack over real sockets (`event_serve`: single
//! round trips, 8-deep in-order v1 flights, the same flight multiplexed on
//! envelope v2, and a slow-`CatchUp` head-of-line scenario the v2
//! out-of-order server overlaps away).
//!
//! With `BENCH_JSON=BENCH_dictionary.json` every result lands in a JSON
//! perf-trajectory file; `BENCH_SMOKE=1` shrinks sizes and samples for CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::{ProofCache, StatusServer, StatusService};
use ritm_crypto::SigningKey;
use ritm_dictionary::tree::{Leaf, MerkleTree};
use ritm_dictionary::{CaDictionary, CaId, HashPool, MirrorDictionary, SerialNumber};
use ritm_proto::event::{EventServer, EventTransport};
use ritm_proto::{Loopback, RitmRequest, RitmResponse, Service, Transport};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counts every allocation so `status_serve_hot/allocs_per_request` is a
/// recorded number, not a claim. Criterion benches are separate binaries,
/// so the one-atomic-per-alloc tax stays inside this file's numbers (and
/// is identical across the compared paths).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const T0: u64 = 1_397_000_000;
/// The acceptance scenario: one Δ's worth of revocations landing in a
/// CDN-scale dictionary.
const BATCH: u32 = 100;

fn built_tree(n: u32) -> MerkleTree {
    let mut tree = MerkleTree::new();
    let leaves: Vec<Leaf> = (0..n)
        .map(|i| Leaf::new(SerialNumber::from_u24(i * 2), i as u64 + 1))
        .collect();
    tree.apply_sorted_batch(&leaves);
    tree
}

fn fresh_batch(n: u32) -> Vec<Leaf> {
    // Fresh serials sort after every existing leaf (serials grow with
    // issuance), the engine's common case.
    (0..BATCH)
        .map(|i| Leaf::new(SerialNumber::from_u24(n * 2 + 1 + i), (n + i) as u64 + 1))
        .collect()
}

fn built_pair(n: u32) -> (CaDictionary, MirrorDictionary) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut ca = CaDictionary::new(
        CaId::from_name("DictBench"),
        SigningKey::from_seed([1u8; 32]),
        10,
        1 << 8,
        &mut rng,
        T0,
    );
    let genesis = *ca.signed_root();
    let serials: Vec<SerialNumber> = (0..n).map(|i| SerialNumber::from_u24(i * 2)).collect();
    let iss = ca.insert(&serials, &mut rng, T0 + 1).expect("insert");
    let mut mirror = MirrorDictionary::new(ca.ca(), ca.verifying_key(), genesis).unwrap();
    mirror.set_delta(10);
    mirror.apply_issuance(&iss, T0 + 1).unwrap();
    (ca, mirror)
}

fn bench_insert_1000(c: &mut Criterion) {
    // §VII-D: "to insert 1,000 new revocations ... 2.93 ms on average" —
    // against the average-size (5,440-entry) dictionary.
    c.bench_function("ca_insert_1000_into_avg_dict", |b| {
        b.iter_batched(
            || {
                let (ca, _) = built_pair(5_440);
                let batch: Vec<SerialNumber> = (0..1_000u32)
                    .map(|i| SerialNumber::from_u24(0x800000 + i))
                    .collect();
                (ca, batch, StdRng::seed_from_u64(9))
            },
            |(mut ca, batch, mut rng)| {
                black_box(ca.insert(&batch, &mut rng, T0 + 2));
            },
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("ra_update_1000_into_avg_dict", |b| {
        b.iter_batched(
            || {
                let (mut ca, mirror) = built_pair(5_440);
                let batch: Vec<SerialNumber> = (0..1_000u32)
                    .map(|i| SerialNumber::from_u24(0x800000 + i))
                    .collect();
                let mut rng = StdRng::seed_from_u64(9);
                let iss = ca.insert(&batch, &mut rng, T0 + 2).expect("insert");
                (mirror, iss)
            },
            |(mut mirror, iss)| {
                mirror.apply_issuance(&iss, T0 + 2).expect("update");
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_prove_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("prove_vs_dict_size");
    let sizes: &[u32] = if criterion::smoke_mode() {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 339_557]
    };
    for &n in sizes {
        let (_, mirror) = built_pair(n);
        let query = SerialNumber::from_u24(0x700001); // absent (odd serial)
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(mirror.prove(black_box(&query))))
        });
    }
    g.finish();
}

/// Tree sizes for the heavyweight benches: trimmed in smoke mode so the CI
/// pass finishes in seconds.
fn heavy_sizes() -> &'static [u32] {
    if criterion::smoke_mode() {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    }
}

fn bench_incremental_vs_rebuild(c: &mut Criterion) {
    let mut g = c.benchmark_group("apply_100_batch");
    for &n in heavy_sizes() {
        // Slow at 1M (a full rebuild is ~2n hashes); fewer samples there.
        g.sample_size(if n >= 1_000_000 { 10 } else { 20 });
        let base = built_tree(n);
        let batch = fresh_batch(n);
        g.bench_with_input(BenchmarkId::new("full_rebuild", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut t = base.clone();
                    t.extend_leaves(batch.iter().copied());
                    t
                },
                |mut t| {
                    t.rebuild();
                    black_box(t.root())
                },
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut t| {
                    t.apply_sorted_batch(&batch);
                    black_box(t.root())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_cold_vs_cached_proof(c: &mut Criterion) {
    let mut g = c.benchmark_group("prove_hot_serial");
    for &n in heavy_sizes() {
        g.sample_size(if n >= 1_000_000 { 10 } else { 20 });
        let (_, mirror) = built_pair(n);
        let query = SerialNumber::from_u24(0x700001); // absent (odd serial)
        g.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            b.iter(|| black_box(mirror.proof(black_box(&query))))
        });
        g.bench_with_input(BenchmarkId::new("cached", n), &n, |b, _| {
            let cache = ProofCache::default();
            let ca = mirror.ca();
            let epoch = mirror.epoch();
            b.iter(|| black_box(cache.get_or_insert(ca, query, epoch, || mirror.proof(&query))))
        });
    }
    g.finish();
}

fn bench_status_validation(c: &mut Criterion) {
    let (ca, mirror) = built_pair(100_000);
    let query = SerialNumber::from_u24(0x700001);
    let status = mirror.prove(&query);
    let key = ca.verifying_key();
    c.bench_function("client_full_status_validation_100k", |b| {
        b.iter(|| status.validate(&query, &key, 10, T0 + 2).expect("valid"))
    });
}

/// Full rebuilds on the scoped-thread pool vs single-threaded, per worker
/// count. On a multi-core host the 1M-leaf rebuild should scale with
/// workers; the per-worker numbers land in BENCH_dictionary.json either
/// way so the trajectory is visible per machine. The host's available
/// parallelism is recorded alongside.
fn bench_parallel_rebuild(c: &mut Criterion) {
    criterion::json_record(
        "available_parallelism",
        None,
        None,
        std::thread::available_parallelism().map_or(1, |n| n.get()) as f64,
        "cores",
    );
    let mut g = c.benchmark_group("parallel_rebuild");
    g.sample_size(10);
    let sizes: &[u32] = if criterion::smoke_mode() {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    for &n in sizes {
        let base = built_tree(n);
        for workers in [1usize, 2, 4, 8] {
            let pool = HashPool::new(workers);
            g.bench_with_input(
                BenchmarkId::new(format!("workers{workers}"), n),
                &n,
                |b, _| {
                    b.iter_batched(
                        || base.clone(),
                        |mut t| {
                            t.rebuild_with(&pool);
                            black_box(t.root())
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    g.finish();
}

/// Compressed 5-serial chain multiproof vs 5 independent audit paths: time
/// to generate, and — the Fig. 7 claim — encoded bytes. The serials are
/// absent (the common chain case: none of the chain's certificates is
/// revoked), where each independent proof ships an adjacent *pair* of
/// paths and compression pays off most.
fn bench_multiproof_chain(c: &mut Criterion) {
    let n: u32 = if criterion::smoke_mode() {
        10_000
    } else {
        100_000
    };
    let (_, mirror) = built_pair(n);
    // Odd serials are absent; spread them across the tree.
    let chain: Vec<SerialNumber> = (0..5u32)
        .map(|i| SerialNumber::from_u24(i * (n / 4) * 2 + 1001))
        .collect();

    c.bench_function(&format!("multiproof_generate_5chain/{n}"), |b| {
        b.iter(|| black_box(mirror.prove_multi(black_box(&chain))))
    });
    c.bench_function(&format!("individual_5proofs_generate/{n}"), |b| {
        b.iter(|| {
            for s in &chain {
                black_box(mirror.prove(black_box(s)));
            }
        })
    });

    // Byte-size comparison (proof-only, per the acceptance criterion, and
    // full wire statuses including root/freshness dedup).
    let multi = mirror.prove_multi(&chain);
    let proof_bytes = multi.proof.encoded_len();
    let individual_proof_bytes: usize = chain
        .iter()
        .map(|s| mirror.prove(s).proof.encoded_len())
        .sum();
    let status_bytes = multi.encoded_len();
    let individual_status_bytes: usize = chain.iter().map(|s| mirror.prove(s).encoded_len()).sum();
    println!(
        "multiproof_5chain/{n}: proof {proof_bytes} B vs individual {individual_proof_bytes} B \
         ({:.1}%); status {status_bytes} B vs {individual_status_bytes} B ({:.1}%)",
        100.0 * proof_bytes as f64 / individual_proof_bytes as f64,
        100.0 * status_bytes as f64 / individual_status_bytes as f64,
    );
    criterion::json_record(
        "multiproof_5chain_proof_bytes",
        Some(n as u64),
        Some(5),
        proof_bytes as f64,
        "bytes",
    );
    criterion::json_record(
        "individual_5chain_proof_bytes",
        Some(n as u64),
        Some(5),
        individual_proof_bytes as f64,
        "bytes",
    );
    criterion::json_record(
        "multiproof_5chain_status_bytes",
        Some(n as u64),
        Some(5),
        status_bytes as f64,
        "bytes",
    );
    criterion::json_record(
        "individual_5chain_status_bytes",
        Some(n as u64),
        Some(5),
        individual_status_bytes as f64,
        "bytes",
    );
    assert!(
        proof_bytes * 10 <= individual_proof_bytes * 6,
        "acceptance: multiproof must be ≤60% of independent paths"
    );
}

/// Snapshot publication cost: the PR 2 baseline deep-cloned the mirror's
/// dense tree per published epoch — O(n) memcpy (~40 MB of levels at 1M
/// leaves) to change a few hundred leaves. The structurally-shared
/// `PersistentTree` publishes with O(chunks) `Arc` bumps instead, so the
/// cost tracks the batch/chunk count, not the dictionary. Both variants
/// are measured after the same `BATCH`-leaf issuance batch; the acceptance
/// criterion is persistent ≥10x faster than dense at 1M leaves.
fn bench_snapshot_publish(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot_publish");
    for &n in heavy_sizes() {
        g.sample_size(if n >= 1_000_000 { 10 } else { 20 });

        // Dense baseline: the deep clone a `MerkleTree`-backed snapshot
        // paid (tree clone + Arc allocation, off the read path).
        let mut dense = built_tree(n);
        dense.apply_sorted_batch(&fresh_batch(n));
        g.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| black_box(std::sync::Arc::new(dense.clone())))
        });

        // Persistent path: what `MirrorDictionary::snapshot()` does now.
        // Drive the mirror through a real issuance so the measured state
        // is exactly "publish after a BATCH-leaf batch".
        let (mut ca, mut mirror) = built_pair(n);
        let batch: Vec<SerialNumber> = fresh_batch(n).iter().map(|l| l.serial).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let iss = ca.insert(&batch, &mut rng, T0 + 2).expect("batch");
        mirror.apply_issuance(&iss, T0 + 2).expect("batch applies");
        g.bench_with_input(BenchmarkId::new("persistent", n), &n, |b, _| {
            b.iter(|| black_box(mirror.snapshot()))
        });

        if n >= 1_000_000 {
            // Acceptance: publishing after a 100-leaf batch into a 1M-leaf
            // dictionary must be ≥10x faster than the deep-clone baseline.
            let start = Instant::now();
            for _ in 0..5 {
                black_box(std::sync::Arc::new(dense.clone()));
            }
            let dense_ns = start.elapsed().as_nanos() as f64 / 5.0;
            let start = Instant::now();
            for _ in 0..500 {
                black_box(mirror.snapshot());
            }
            let persistent_ns = start.elapsed().as_nanos() as f64 / 500.0;
            println!(
                "snapshot_publish/1M: dense {dense_ns:.0} ns vs persistent {persistent_ns:.0} ns \
                 ({:.0}x)",
                dense_ns / persistent_ns
            );
            criterion::json_record(
                "snapshot_publish_speedup",
                Some(n as u64),
                Some(BATCH as u64),
                dense_ns / persistent_ns,
                "x",
            );
            assert!(
                dense_ns >= 10.0 * persistent_ns,
                "acceptance: persistent publish must be ≥10x faster than deep clone"
            );
        }
    }
    g.finish();
}

/// Concurrent proof serving: N reader threads against (a) the lock-free
/// snapshot path (`StatusServer`, `&self`) and (b) a serialized baseline
/// where every reader must take one big lock around the mirror — the shape
/// the pre-snapshot RA forced via `&mut self`. The hot-set workload (256
/// serials, mostly cache hits after warm-up) models many flows presenting
/// the same server certificates.
fn bench_concurrent_serving(_c: &mut Criterion) {
    let n: u32 = if criterion::smoke_mode() {
        10_000
    } else {
        100_000
    };
    let ops_per_thread: u32 = if criterion::smoke_mode() {
        2_000
    } else {
        20_000
    };
    let (ca, mirror) = built_pair(n);
    let ca_id = ca.ca();
    let hot_set = 256u32;

    let server = StatusServer::new();
    assert!(server.publish(mirror.snapshot()));
    let baseline = std::sync::Mutex::new(mirror);

    for threads in [1u32, 2, 4, 8] {
        let snapshot_ns = {
            let start = Instant::now();
            std::thread::scope(|s| {
                for t in 0..threads {
                    let server = &server;
                    s.spawn(move || {
                        for i in 0..ops_per_thread {
                            let q = SerialNumber::from_u24(((t * 131 + i) % hot_set) * 2 + 1);
                            black_box(server.status_for(&ca_id, &q).expect("mirrored"));
                        }
                    });
                }
            });
            start.elapsed().as_nanos() as f64 / (threads as f64 * ops_per_thread as f64)
        };
        let serialized_ns = {
            let start = Instant::now();
            std::thread::scope(|s| {
                for t in 0..threads {
                    let baseline = &baseline;
                    s.spawn(move || {
                        for i in 0..ops_per_thread {
                            let q = SerialNumber::from_u24(((t * 131 + i) % hot_set) * 2 + 1);
                            let guard = baseline.lock().expect("baseline lock");
                            black_box(guard.prove(&q));
                        }
                    });
                }
            });
            start.elapsed().as_nanos() as f64 / (threads as f64 * ops_per_thread as f64)
        };
        println!(
            "concurrent_serve/{threads}threads/{n}: snapshot {snapshot_ns:.0} ns/op, \
             serialized {serialized_ns:.0} ns/op ({:.2}x)",
            serialized_ns / snapshot_ns
        );
        criterion::json_record(
            &format!("concurrent_serve_snapshot/{threads}threads"),
            Some(n as u64),
            Some(threads as u64),
            snapshot_ns,
            "ns/op",
        );
        criterion::json_record(
            &format!("concurrent_serve_serialized/{threads}threads"),
            Some(n as u64),
            Some(threads as u64),
            serialized_ns,
            "ns/op",
        );
    }
}

/// The wire protocol's per-request overhead on the serving path: envelope
/// encode/decode for the hot request kinds (`GetStatus`, `FetchDelta`) and
/// a full loopback `Service::handle` round trip against the RA's status
/// endpoint — tracked in BENCH_dictionary.json from the protocol PR onward.
fn bench_protocol_roundtrip(c: &mut Criterion) {
    let n: u32 = if criterion::smoke_mode() {
        10_000
    } else {
        100_000
    };
    let (ca, mirror) = built_pair(n);
    let ca_id = ca.ca();

    let mut g = c.benchmark_group("protocol_roundtrip");

    // Envelope encode+decode: GetStatus (the smallest hot request).
    let get_status = RitmRequest::GetStatus {
        ca: ca_id,
        serial: SerialNumber::from_u24(0x700001),
    };
    g.bench_function("encode_get_status", |b| {
        b.iter(|| black_box(black_box(&get_status).to_frame()))
    });
    let status_frame = get_status.to_frame();
    g.bench_function("decode_get_status", |b| {
        b.iter(|| {
            let (body, _) = ritm_proto::split_frame(black_box(&status_frame)).expect("framed");
            black_box(RitmRequest::decode_body(body).expect("decodes"))
        })
    });

    // Envelope encode+decode: a BATCH-serial FetchDelta response (what an
    // RA downloads per Δ during a revocation burst).
    let issuance = ca.issuance_since((n - BATCH) as u64);
    let delta_resp = RitmResponse::Delta(issuance);
    g.bench_function("encode_fetch_delta_response", |b| {
        b.iter(|| black_box(black_box(&delta_resp).to_frame()))
    });
    let delta_frame = delta_resp.to_frame();
    g.bench_function("decode_fetch_delta_response", |b| {
        b.iter(|| {
            let (body, _) = ritm_proto::split_frame(black_box(&delta_frame)).expect("framed");
            black_box(RitmResponse::decode_body(body).expect("decodes"))
        })
    });

    // Full loopback round trip through the RA's status endpoint: envelope
    // decode + snapshot proof build (cache-hot) + envelope encode.
    let server = StatusServer::new();
    assert!(server.publish(mirror.snapshot()));
    let mut transport = Loopback::new(StatusService::new(Arc::new(server)));
    g.bench_function("loopback_get_status", |b| {
        b.iter(|| black_box(transport.round_trip(&get_status).expect("served")))
    });
    // And the raw frame path (what a TCP worker executes per request).
    let service = StatusService::new(transport.service().server().clone());
    g.bench_function("handle_frame_get_status", |b| {
        b.iter(|| black_box(service.handle_frame(black_box(&status_frame))))
    });
    g.finish();
}

/// Paged catch-up serving cost (PR 7): one `issuance_page` is the CA-side
/// unit of work while an RA closes a gap — a serial-range slice plus a
/// synthesized historical signed root. Measured mid-gap (the worst case:
/// the synthesized root is for a tree state no cached root matches) at two
/// page sizes, plus whole-gap accounting: how many pages and how many
/// response bytes close a from-genesis gap at the default page limit —
/// every page holding under `MAX_FRAME_LEN` regardless of dictionary size.
fn bench_catchup_paged(c: &mut Criterion) {
    let mut g = c.benchmark_group("catchup_paged");
    for &n in heavy_sizes() {
        g.sample_size(if n >= 1_000_000 { 10 } else { 20 });
        let (ca, _) = built_pair(n);
        for limit in [1u32 << 12, 1 << 16] {
            g.bench_with_input(BenchmarkId::new(format!("page{limit}"), n), &n, |b, _| {
                b.iter(|| black_box(ca.issuance_page(black_box((n / 2) as u64), limit)))
            });
        }

        let limit = 1u32 << 16;
        let (mut have, mut pages, mut bytes) = (0u64, 0u64, 0u64);
        loop {
            let (issuance, remaining) = ca.issuance_page(have, limit);
            if issuance.serials.is_empty() {
                break;
            }
            have += issuance.serials.len() as u64;
            pages += 1;
            let frame = RitmResponse::DeltaPage {
                issuance,
                remaining,
            }
            .encoded_len();
            assert!(frame < ritm_proto::MAX_FRAME_LEN, "page must fit a frame");
            bytes += frame as u64;
            if remaining == 0 {
                break;
            }
        }
        assert_eq!(have, n as u64, "pages must cover the whole gap");
        criterion::json_record(
            "catchup_paged/full_gap_pages",
            Some(n as u64),
            Some(limit as u64),
            pages as f64,
            "pages",
        );
        criterion::json_record(
            "catchup_paged/full_gap_bytes",
            Some(n as u64),
            Some(limit as u64),
            bytes as f64,
            "bytes",
        );
    }
    g.finish();
}

/// Delays `CatchUp` by ~1ms (a stand-in for a large delta rebuild) and
/// delegates everything else — the head-of-line blocker the multiplexed
/// envelope exists to defeat.
struct SlowCatchUp(Arc<StatusService>);

impl ritm_proto::Service for SlowCatchUp {
    fn handle(&self, req: RitmRequest) -> RitmResponse {
        if matches!(req, RitmRequest::CatchUp { .. }) {
            std::thread::sleep(std::time::Duration::from_millis(1));
            return RitmResponse::Error(ritm_proto::ProtoError::NotFound);
        }
        self.0.handle(req)
    }
}

/// The event-driven serving stack end to end over real OS sockets: one
/// `EventServer` (≤2 threads) in front of the RA's status endpoint, a
/// non-blocking client. Tracks (a) the single-request round trip — the
/// per-request cost of the reactor/codec machinery vs the in-process
/// `loopback_get_status` number above — and (b) an 8-deep in-order v1
/// flight (the transport pinned to v1, so the number stays comparable
/// across the envelope-v2 change), (c) the same flight multiplexed on
/// envelope v2 (per-frame request ids, out-of-order completion), and
/// (d) the payoff case: a ~1ms `CatchUp` heading the flight, which
/// in-order serving would add wholesale to every status behind it but
/// out-of-order completion overlaps with all 8.
fn bench_event_serve(c: &mut Criterion) {
    let n: u32 = if criterion::smoke_mode() {
        10_000
    } else {
        100_000
    };
    let (ca, mirror) = built_pair(n);
    let server = StatusServer::new();
    assert!(server.publish(mirror.snapshot()));
    let service = Arc::new(StatusService::new(Arc::new(server)));
    let event_server =
        EventServer::spawn(Arc::clone(&service) as Arc<dyn ritm_proto::Service>, 2).unwrap();
    // Pinned to v1: byte-identical to the pre-v2 client, so these two
    // records keep their baseline meaning.
    let mut transport = EventTransport::connect_pinned_v1(event_server.addr()).unwrap();

    let get_status = RitmRequest::GetStatus {
        ca: ca.ca(),
        serial: SerialNumber::from_u24(0x700001),
    };

    let mut g = c.benchmark_group("event_serve");
    g.bench_function("roundtrip_get_status", |b| {
        b.iter(|| black_box(transport.round_trip(&get_status).expect("served")))
    });
    let flight: Vec<RitmRequest> = (0..8u32)
        .map(|i| RitmRequest::GetStatus {
            ca: ca.ca(),
            serial: SerialNumber::from_u24(0x700001 + i * 2),
        })
        .collect();
    g.bench_function("pipelined_8x_get_status", |b| {
        b.iter(|| {
            for r in transport.round_trip_many(black_box(&flight)) {
                black_box(r.expect("served"));
            }
        })
    });

    // The same flight on envelope v2: +4 id bytes per frame buys
    // out-of-order completion (invisible here — statuses are uniform —
    // but the overhead must stay in the noise vs the v1 number).
    let mut mux = EventTransport::connect(event_server.addr()).unwrap();
    g.bench_function("multiplexed_8x_get_status", |b| {
        b.iter(|| {
            for r in mux.round_trip_many(black_box(&flight)) {
                black_box(r.expect("served"));
            }
        })
    });

    // The HOL case: a ~1ms CatchUp ahead of the 8 statuses. Multiplexed,
    // the statuses complete while it sleeps, so the flight costs ~max
    // (≈1ms), not sum (≈1ms + 8 statuses serialized behind it).
    let slow_server = EventServer::spawn(
        Arc::new(SlowCatchUp(Arc::clone(&service))) as Arc<dyn ritm_proto::Service>,
        2,
    )
    .unwrap();
    let mut slow_mux = EventTransport::connect(slow_server.addr()).unwrap();
    let mut hol_flight = vec![RitmRequest::CatchUp {
        ca: ca.ca(),
        have: 0,
    }];
    hol_flight.extend(flight.iter().cloned());
    g.bench_function("slow_catchup_plus_8x_get_status", |b| {
        b.iter(|| {
            for r in slow_mux.round_trip_many(black_box(&hol_flight)) {
                black_box(r.expect("served"));
            }
        })
    });
    g.finish();
    drop(slow_mux);
    slow_server.shutdown();
    drop((transport, mux));
    event_server.shutdown();
}

/// The zero-copy hot path against the classic one, in process: answering
/// a hot-serial `GetStatus` frame from the encoded-response cache
/// (`serve_frame` — one cache lookup, one `Arc` clone, a 9-byte stamped
/// header) vs building, assembling, and encoding the same response per
/// request (`handle_frame`). Also records allocations per hot request
/// (the counting allocator above) and the encoded-cache hit rate the run
/// produced — the numbers the alloc-budget test pins as hard bounds.
fn bench_status_serve_hot(c: &mut Criterion) {
    let n: u32 = if criterion::smoke_mode() {
        10_000
    } else {
        100_000
    };
    let (ca, mirror) = built_pair(n);
    let server = StatusServer::new();
    assert!(server.publish(mirror.snapshot()));
    let svc = StatusService::new(Arc::new(server));
    let req = RitmRequest::GetStatus {
        ca: ca.ca(),
        serial: SerialNumber::from_u24(0x700001),
    };
    let frame = req.to_frame_v2(3);

    let mut g = c.benchmark_group("status_serve_hot");
    g.bench_with_input(BenchmarkId::new("build_and_encode", n), &frame, |b, f| {
        b.iter(|| black_box(svc.handle_frame(black_box(f))))
    });
    // Warm the encoded cache, and prove the two paths agree on the wire
    // before timing them against each other.
    let warm = svc.serve_frame(&frame);
    assert_eq!(warm.to_vec(), svc.handle_frame(&frame));
    g.bench_with_input(BenchmarkId::new("encoded_cache_hit", n), &frame, |b, f| {
        b.iter(|| black_box(svc.serve_frame(black_box(f))))
    });
    g.finish();

    const PROBE: u64 = 1_000;
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..PROBE {
        black_box(svc.serve_frame(&frame));
    }
    let allocs_per_req = (ALLOCS.load(Ordering::Relaxed) - before) as f64 / PROBE as f64;
    criterion::json_record(
        "status_serve_hot/allocs_per_request",
        Some(n as u64),
        Some(1),
        allocs_per_req,
        "allocs",
    );
    criterion::json_record(
        "status_serve_hot/encoded_hit_rate",
        Some(n as u64),
        Some(1),
        svc.server().encoded_cache_stats().hit_rate(),
        "ratio",
    );
}

/// Sustained hot-status throughput through the whole event stack: one
/// multiplexed v2 connection keeping 64 requests in flight against the
/// encoded-response cache, over real OS sockets. Records requests/sec
/// alongside the criterion timing. (CI pins the container to one core,
/// so this is the single-core serving ceiling — reader/writer/service
/// all time-sliced — not a contention measurement.)
fn bench_throughput(c: &mut Criterion) {
    let n: u32 = if criterion::smoke_mode() {
        10_000
    } else {
        100_000
    };
    let (ca, mirror) = built_pair(n);
    let server = StatusServer::new();
    assert!(server.publish(mirror.snapshot()));
    let service = Arc::new(StatusService::new(Arc::new(server)));
    let event_server =
        EventServer::spawn(Arc::clone(&service) as Arc<dyn ritm_proto::Service>, 2).unwrap();
    let mut mux = EventTransport::connect(event_server.addr()).unwrap();
    // 64-deep flight over 8 hot serials: after the first flight every
    // request is an encoded-cache hit served as a shared body.
    let flight: Vec<RitmRequest> = (0..64u32)
        .map(|i| RitmRequest::GetStatus {
            ca: ca.ca(),
            serial: SerialNumber::from_u24(0x700001 + (i % 8) * 2),
        })
        .collect();

    let mut g = c.benchmark_group("throughput");
    g.bench_function("event_64deep_hot_status", |b| {
        b.iter(|| {
            for r in mux.round_trip_many(black_box(&flight)) {
                black_box(r.expect("served"));
            }
        })
    });
    g.finish();

    let rounds: u32 = if criterion::smoke_mode() { 20 } else { 200 };
    let started = Instant::now();
    let mut served = 0u64;
    for _ in 0..rounds {
        for r in mux.round_trip_many(&flight) {
            r.expect("served");
            served += 1;
        }
    }
    criterion::json_record(
        "throughput/requests_per_sec",
        Some(n as u64),
        Some(64),
        served as f64 / started.elapsed().as_secs_f64(),
        "req/s",
    );
    drop(mux);
    event_server.shutdown();
}

/// The interception lane at Table III granularity: full sans-io handshakes
/// per second with the `FlowTable` middlebox inline (segment-level, so the
/// number isolates RA work from kernel socket noise) vs the same engine
/// pair back-to-back, plus the exact bytes one stapled status record adds
/// to a handshake.
fn bench_handshake(c: &mut Criterion) {
    use ritm_agent::intercept::{FlowTable, InterceptConfig};
    use ritm_net::middlebox::Middlebox;
    use ritm_net::tcp::{Direction, FourTuple, SocketAddr, TcpFlags, TcpSegment};
    use ritm_net::time::SimTime;
    use ritm_tls::certificate::{Certificate, CertificateChain, TrustAnchors};
    use ritm_tls::connection::{ClientConfig, ServerContext};
    use ritm_tls::engine::{Action, ClientEngine, ServerEngine};

    let n: u32 = if criterion::smoke_mode() {
        10_000
    } else {
        100_000
    };
    let (ca, mirror) = built_pair(n);
    let status = Arc::new(StatusServer::new());
    assert!(status.publish(mirror.snapshot()));

    let ca_key = SigningKey::from_seed([1u8; 32]);
    let server_key = SigningKey::from_seed([2u8; 32]);
    let leaf = Certificate::issue(
        &ca_key,
        ca.ca(),
        SerialNumber::from_u24(0x700001), // absent from the dictionary
        "bench.example.com",
        T0,
        T0 + 100_000,
        server_key.verifying_key(),
        false,
    );
    let chain = CertificateChain(vec![leaf]);
    let mut anchors = TrustAnchors::new();
    anchors.add(ca.ca(), ca_key.verifying_key());
    let config = ClientConfig {
        server_name: "bench.example.com".into(),
        anchors,
        enable_ritm: true,
    };
    let tuple = FourTuple {
        client: SocketAddr::new(0x0a00_0001, 9000),
        server: SocketAddr::new(0x0a00_0002, 443),
    };
    let now = SimTime::from_secs(T0 + 2);

    // One full handshake; segments flow through `table` when present.
    // Returns (bytes the client saw, statuses the client saw).
    let run_one = |table: Option<&mut FlowTable>| -> (u64, u32) {
        let ctx = ServerContext::new(chain.clone(), [9u8; 20]);
        let mut client = ClientEngine::new(config.clone(), [2u8; 32], None);
        let mut server = ServerEngine::new(ctx, [1u8; 32]);
        let mut table = table;
        let mut to_server = client.start().to_bytes();
        let mut seq_cs = 0u64;
        let mut seq_sc = 0u64;
        let mut client_saw = 0u64;
        let mut statuses = 0u32;
        for _ in 0..8 {
            let seg = TcpSegment {
                tuple,
                direction: Direction::ToServer,
                seq: seq_cs,
                ack: 0,
                flags: TcpFlags::default(),
                payload: std::mem::take(&mut to_server),
            };
            seq_cs += seg.payload.len() as u64;
            let outs = match table.as_deref_mut() {
                Some(t) => t.process(seg, now),
                None => vec![seg],
            };
            let mut flight = Vec::new();
            for out in outs {
                for action in server.feed(T0 + 2, &out.payload) {
                    if let Action::SendBytes(b) = action {
                        flight.extend_from_slice(&b);
                    }
                }
            }
            let seg = TcpSegment {
                tuple,
                direction: Direction::ToClient,
                seq: seq_sc,
                ack: 0,
                flags: TcpFlags::default(),
                payload: flight,
            };
            seq_sc += seg.payload.len() as u64;
            let outs = match table.as_deref_mut() {
                Some(t) => t.process(seg, now),
                None => vec![seg],
            };
            for out in outs {
                client_saw += out.payload.len() as u64;
                for action in client.feed(T0 + 2, &out.payload) {
                    match action {
                        Action::SendBytes(b) => to_server.extend_from_slice(&b),
                        Action::RitmStatus(_) => statuses += 1,
                        Action::Abort { alert } => panic!("bench abort: {alert:?}"),
                        _ => {}
                    }
                }
            }
            if client.is_established() && to_server.is_empty() {
                break;
            }
        }
        assert!(client.is_established() && server.is_established());
        // Close the flow so the table can be reused across iterations.
        if let Some(t) = table {
            let fin = TcpSegment {
                tuple,
                direction: Direction::ToServer,
                seq: seq_cs,
                ack: 0,
                flags: TcpFlags {
                    fin: true,
                    ..TcpFlags::default()
                },
                payload: Vec::new(),
            };
            t.process(fin, now);
        }
        (client_saw, statuses)
    };

    let mut g = c.benchmark_group("handshake");
    g.bench_function("engines_direct", |b| b.iter(|| black_box(run_one(None))));
    let mut table = FlowTable::new(Arc::clone(&status), InterceptConfig::default());
    g.bench_function("engines_through_middlebox", |b| {
        b.iter(|| black_box(run_one(Some(&mut table))))
    });
    g.finish();

    // Table III shape: the exact byte overhead one stapled status adds.
    let (direct_bytes, s0) = run_one(None);
    let mut table = FlowTable::new(status, InterceptConfig::default());
    let (stapled_bytes, s1) = run_one(Some(&mut table));
    assert_eq!((s0, s1), (0, 1), "middlebox staples exactly one status");
    criterion::json_record(
        "handshake_bytes_added_per_handshake",
        Some(n as u64),
        Some(1),
        (stapled_bytes - direct_bytes) as f64,
        "bytes",
    );
    criterion::json_record(
        "handshake_bytes_baseline",
        Some(n as u64),
        Some(1),
        direct_bytes as f64,
        "bytes",
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_insert_1000, bench_prove_scaling, bench_incremental_vs_rebuild,
        bench_cold_vs_cached_proof, bench_status_validation, bench_parallel_rebuild,
        bench_snapshot_publish, bench_multiproof_chain, bench_concurrent_serving,
        bench_protocol_roundtrip, bench_catchup_paged, bench_event_serve,
        bench_status_serve_hot, bench_throughput, bench_handshake
}
criterion_main!(benches);
