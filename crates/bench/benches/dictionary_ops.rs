//! Criterion benchmarks for the authenticated dictionary itself: insert and
//! update scaling (§VII-D), an ablation over dictionary size showing the
//! logarithmic proof cost that Table III relies on, the incremental engine
//! against full rebuilds (10k/100k/1M leaves), and cold vs epoch-cached
//! proof construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::ProofCache;
use ritm_crypto::SigningKey;
use ritm_dictionary::tree::{Leaf, MerkleTree};
use ritm_dictionary::{CaDictionary, CaId, MirrorDictionary, SerialNumber};
use std::hint::black_box;

const T0: u64 = 1_397_000_000;
/// The acceptance scenario: one Δ's worth of revocations landing in a
/// CDN-scale dictionary.
const BATCH: u32 = 100;

fn built_tree(n: u32) -> MerkleTree {
    let mut tree = MerkleTree::new();
    let leaves: Vec<Leaf> = (0..n)
        .map(|i| Leaf::new(SerialNumber::from_u24(i * 2), i as u64 + 1))
        .collect();
    tree.apply_sorted_batch(&leaves);
    tree
}

fn fresh_batch(n: u32) -> Vec<Leaf> {
    // Fresh serials sort after every existing leaf (serials grow with
    // issuance), the engine's common case.
    (0..BATCH)
        .map(|i| Leaf::new(SerialNumber::from_u24(n * 2 + 1 + i), (n + i) as u64 + 1))
        .collect()
}

fn built_pair(n: u32) -> (CaDictionary, MirrorDictionary) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut ca = CaDictionary::new(
        CaId::from_name("DictBench"),
        SigningKey::from_seed([1u8; 32]),
        10,
        1 << 8,
        &mut rng,
        T0,
    );
    let genesis = *ca.signed_root();
    let serials: Vec<SerialNumber> = (0..n).map(|i| SerialNumber::from_u24(i * 2)).collect();
    let iss = ca.insert(&serials, &mut rng, T0 + 1).expect("insert");
    let mut mirror = MirrorDictionary::new(ca.ca(), ca.verifying_key(), genesis).unwrap();
    mirror.set_delta(10);
    mirror.apply_issuance(&iss, T0 + 1).unwrap();
    (ca, mirror)
}

fn bench_insert_1000(c: &mut Criterion) {
    // §VII-D: "to insert 1,000 new revocations ... 2.93 ms on average" —
    // against the average-size (5,440-entry) dictionary.
    c.bench_function("ca_insert_1000_into_avg_dict", |b| {
        b.iter_batched(
            || {
                let (ca, _) = built_pair(5_440);
                let batch: Vec<SerialNumber> = (0..1_000u32)
                    .map(|i| SerialNumber::from_u24(0x800000 + i))
                    .collect();
                (ca, batch, StdRng::seed_from_u64(9))
            },
            |(mut ca, batch, mut rng)| {
                black_box(ca.insert(&batch, &mut rng, T0 + 2));
            },
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("ra_update_1000_into_avg_dict", |b| {
        b.iter_batched(
            || {
                let (mut ca, mirror) = built_pair(5_440);
                let batch: Vec<SerialNumber> = (0..1_000u32)
                    .map(|i| SerialNumber::from_u24(0x800000 + i))
                    .collect();
                let mut rng = StdRng::seed_from_u64(9);
                let iss = ca.insert(&batch, &mut rng, T0 + 2).expect("insert");
                (mirror, iss)
            },
            |(mut mirror, iss)| {
                mirror.apply_issuance(&iss, T0 + 2).expect("update");
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_prove_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("prove_vs_dict_size");
    for n in [1_000u32, 10_000, 100_000, 339_557] {
        let (_, mirror) = built_pair(n);
        let query = SerialNumber::from_u24(0x700001); // absent (odd serial)
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(mirror.prove(black_box(&query))))
        });
    }
    g.finish();
}

fn bench_incremental_vs_rebuild(c: &mut Criterion) {
    let mut g = c.benchmark_group("apply_100_batch");
    for n in [10_000u32, 100_000, 1_000_000] {
        // Slow at 1M (a full rebuild is ~2n hashes); fewer samples there.
        g.sample_size(if n >= 1_000_000 { 10 } else { 20 });
        let base = built_tree(n);
        let batch = fresh_batch(n);
        g.bench_with_input(BenchmarkId::new("full_rebuild", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut t = base.clone();
                    t.extend_leaves(batch.iter().copied());
                    t
                },
                |mut t| {
                    t.rebuild();
                    black_box(t.root())
                },
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut t| {
                    t.apply_sorted_batch(&batch);
                    black_box(t.root())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_cold_vs_cached_proof(c: &mut Criterion) {
    let mut g = c.benchmark_group("prove_hot_serial");
    for n in [10_000u32, 100_000, 1_000_000] {
        g.sample_size(if n >= 1_000_000 { 10 } else { 20 });
        let (_, mirror) = built_pair(n);
        let query = SerialNumber::from_u24(0x700001); // absent (odd serial)
        g.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            b.iter(|| black_box(mirror.proof(black_box(&query))))
        });
        g.bench_with_input(BenchmarkId::new("cached", n), &n, |b, _| {
            let mut cache = ProofCache::default();
            let ca = mirror.ca();
            let epoch = mirror.epoch();
            b.iter(|| black_box(cache.get_or_insert(ca, query, epoch, || mirror.proof(&query))))
        });
    }
    g.finish();
}

fn bench_status_validation(c: &mut Criterion) {
    let (ca, mirror) = built_pair(100_000);
    let query = SerialNumber::from_u24(0x700001);
    let status = mirror.prove(&query);
    let key = ca.verifying_key();
    c.bench_function("client_full_status_validation_100k", |b| {
        b.iter(|| status.validate(&query, &key, 10, T0 + 2).expect("valid"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_insert_1000, bench_prove_scaling, bench_incremental_vs_rebuild,
        bench_cold_vs_cached_proof, bench_status_validation
}
criterion_main!(benches);
