//! The §VIII fleet scenario as a closed-loop macro-benchmark: a sharded RA
//! fleet (consistent-hash placement, signed-root gossip, one shard pinned
//! stale and one killed mid-run) serving a zipf-distributed population of
//! one million clients. Reports the Fig. 7 headline — wire bytes per user
//! per day — plus fleet-wide and per-shard proof-cache hit rates, status
//! latency percentiles, and router spillover counters.
//!
//! Hand-rolled main (no criterion sampling): one cold run is the
//! measurement, mirroring how the paper reports a day of traffic. With
//! `BENCH_JSON=... BENCH_JSON_APPEND=1` the records merge into the same
//! trajectory file the criterion benches write; `BENCH_SMOKE=1` shrinks
//! the population for CI.

use criterion::{flush_json, json_record, smoke_mode};
use ritm_core::{FleetOptions, FleetWorld};
use std::time::Instant;

fn main() {
    let smoke = smoke_mode();
    let opts = if smoke {
        FleetOptions {
            seed: 7,
            shards: 3,
            cas: 8,
            revocations: 8_000,
            clients: 80_000,
            hot_serials: 1024,
            lane_threshold: 1_500,
            validate_every: 256,
            ..FleetOptions::default()
        }
    } else {
        FleetOptions {
            seed: 7,
            clients: 1_000_000,
            ..FleetOptions::default()
        }
    };

    let build_start = Instant::now();
    let mut world = FleetWorld::new(&opts);
    let build = build_start.elapsed();

    let run_start = Instant::now();
    let report = world.run(&opts);
    let run = run_start.elapsed();
    let req_per_sec = report.requests as f64 / run.as_secs_f64().max(1e-9);

    println!(
        "fleet_scenario: {} shards, {} CAs, {} clients ({} requests) — built in {:.2?}, ran in {:.2?} ({:.0} req/s)",
        opts.shards, opts.cas, report.clients, report.requests, build, run, req_per_sec,
    );
    println!(
        "  bytes/user/day {:.1}  proof-cache hit {:.3}  latency mean {:.2} ms p99 {:.2} ms",
        report.bytes_per_user_day,
        report.proof_cache_hit_rate,
        report.mean_status_latency_ms,
        report.p99_status_latency_ms,
    );
    println!(
        "  stale shard {:?} (rejections {})  killed shard {:?} (spilled {}, cross-region {}, unroutable {})",
        report.stale_shard,
        report.stale_rejections,
        report.killed_shard,
        report.router.spilled,
        report.router.cross_region,
        report.router.unroutable,
    );
    for (shard, rate) in &report.per_shard_hit_rate {
        println!("  shard {shard}: proof-cache hit {rate:.3}");
    }
    assert!(
        report.requests >= report.clients,
        "closed loop must serve every client"
    );
    assert!(
        report.router.unroutable == 0,
        "every point must keep a live replica"
    );
    assert!(
        report.health.is_converged(),
        "fleet must re-converge after heal"
    );

    let n = Some(report.clients);
    json_record(
        "fleet/bytes_per_user_day",
        n,
        None,
        report.bytes_per_user_day,
        "bytes",
    );
    json_record(
        "fleet/proof_cache_hit_rate",
        n,
        None,
        report.proof_cache_hit_rate,
        "fraction",
    );
    json_record(
        "fleet/status_latency_mean",
        n,
        None,
        report.mean_status_latency_ms,
        "ms",
    );
    json_record(
        "fleet/status_latency_p99",
        n,
        None,
        report.p99_status_latency_ms,
        "ms",
    );
    json_record("fleet/requests_per_sec", n, None, req_per_sec, "req/s");
    json_record(
        "fleet/router_spilled",
        n,
        None,
        report.router.spilled as f64,
        "requests",
    );
    json_record(
        "fleet/stale_rejections",
        n,
        None,
        report.stale_rejections as f64,
        "requests",
    );
    for (shard, rate) in &report.per_shard_hit_rate {
        json_record(
            &format!("fleet/shard_hit_rate/{shard}"),
            n,
            None,
            *rate,
            "fraction",
        );
    }
    flush_json();
}
