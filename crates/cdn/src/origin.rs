//! The CDN origin (the paper's "distribution point", Fig. 1).
//!
//! CAs publish revocation issuances and freshness statements here under
//! versioned keys; edge servers pull on demand. The origin verifies CA
//! signatures before accepting content (§III: "The distribution point
//! verifies this message and initiates the dissemination process").

use ritm_crypto::ed25519::VerifyingKey;
use ritm_dictionary::{CaId, RefreshMessage, RevocationIssuance, SerialNumber, SignedRoot};
use std::collections::HashMap;

/// Content key addressing one CA's dissemination feed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContentKey {
    /// The issuance batch that brought the dictionary to `version` (`n`).
    Issuance {
        /// CA whose dictionary this is.
        ca: CaId,
        /// Dictionary size after the batch.
        version: u64,
    },
    /// The latest freshness statement for a CA.
    Freshness {
        /// CA whose statement this is.
        ca: CaId,
    },
    /// The latest full update bundle (what an RA's periodic pull fetches:
    /// every issuance it is missing plus the current freshness statement).
    Latest {
        /// CA whose feed this is.
        ca: CaId,
    },
    /// The `/RITM.json` bootstrap manifest (§VIII).
    Manifest {
        /// CA whose manifest this is.
        ca: CaId,
    },
}

/// Why the origin refused a publish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishError {
    /// CA not registered with the distribution point.
    UnknownCa,
    /// The signed root in the message did not verify.
    BadSignature,
}

impl core::fmt::Display for PublishError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PublishError::UnknownCa => f.write_str("CA not registered at distribution point"),
            PublishError::BadSignature => f.write_str("issuance signature rejected by origin"),
        }
    }
}

impl std::error::Error for PublishError {}

/// The origin store.
#[derive(Debug, Default)]
pub struct Origin {
    keys: HashMap<CaId, VerifyingKey>,
    content: HashMap<ContentKey, Vec<u8>>,
    /// Full revocation log per CA (in issuance order) — what lets the
    /// origin answer the catch-up requests of the paper's synchronization
    /// protocol ("the RA contacts an edge server specifying the number of
    /// valid consecutive revocations it has observed", §III).
    logs: HashMap<CaId, Vec<SerialNumber>>,
    /// Per-CA `(end_count, signed_root)` at each published batch boundary,
    /// ascending — the historical roots paged catch-up replies anchor to.
    boundary_roots: HashMap<CaId, Vec<(u64, SignedRoot)>>,
    latest_root: HashMap<CaId, SignedRoot>,
    /// Bytes uploaded by CAs (origin ingress, for completeness of the cost
    /// model; CloudFront ingress was free).
    pub ingress_bytes: u64,
}

impl Origin {
    /// Creates an empty origin.
    pub fn new() -> Self {
        Origin::default()
    }

    /// Registers a CA's verifying key (out-of-band trust setup).
    pub fn register_ca(&mut self, ca: CaId, key: VerifyingKey) {
        self.keys.insert(ca, key);
    }

    /// Publishes a revocation issuance, after verifying the CA's signature.
    ///
    /// Stores it both under its version key and as part of the `Latest`
    /// bundle (issuance bytes followed by the freshness bytes, refreshed by
    /// [`Origin::publish_refresh`]).
    ///
    /// # Errors
    ///
    /// See [`PublishError`].
    pub fn publish_issuance(
        &mut self,
        ca: CaId,
        issuance: &RevocationIssuance,
    ) -> Result<(), PublishError> {
        let key = self.keys.get(&ca).ok_or(PublishError::UnknownCa)?;
        issuance
            .signed_root
            .verify(key)
            .map_err(|_| PublishError::BadSignature)?;
        let log = self.logs.entry(ca).or_default();
        if issuance.first_number != log.len() as u64 + 1 {
            // A CA must publish batches in order; anything else is a bug or
            // an equivocation attempt and is refused.
            return Err(PublishError::BadSignature);
        }
        log.extend_from_slice(&issuance.serials);
        self.boundary_roots
            .entry(ca)
            .or_default()
            .push((log.len() as u64, issuance.signed_root));
        self.latest_root.insert(ca, issuance.signed_root);
        let bytes = issuance.to_bytes();
        self.ingress_bytes += bytes.len() as u64;
        self.content.insert(
            ContentKey::Issuance {
                ca,
                version: issuance.signed_root.size,
            },
            bytes.clone(),
        );
        self.content.insert(ContentKey::Latest { ca }, bytes);
        Ok(())
    }

    /// Synthesizes the catch-up issuance for an RA holding `have`
    /// consecutive revocations (the paper's sync protocol, §III). Returns
    /// the encoded [`RevocationIssuance`] covering everything newer.
    pub fn fetch_since(&self, ca: CaId, have: u64) -> Option<Vec<u8>> {
        let log = self.logs.get(&ca)?;
        let root = self.latest_root.get(&ca)?;
        let idx = (have as usize).min(log.len());
        let issuance = RevocationIssuance {
            first_number: have + 1,
            serials: log[idx..].to_vec(),
            signed_root: *root,
        };
        Some(issuance.to_bytes())
    }

    /// One page of the catch-up replay for an RA holding `have`
    /// consecutive revocations: roughly `limit` serials ending at a
    /// published batch boundary, anchored to the root recorded there.
    /// Returns the encoded [`RevocationIssuance`] and how many serials
    /// remain beyond it (`0` = caught up).
    ///
    /// The origin holds no signing key, so it can only anchor pages to
    /// roots the CA actually published: when a single batch alone exceeds
    /// `limit`, that batch is served whole (the limit is soft here; the
    /// CA's own endpoint can synthesize true mid-batch cuts).
    pub fn fetch_page(&self, ca: CaId, have: u64, limit: u32) -> Option<(Vec<u8>, u64)> {
        let log = self.logs.get(&ca)?;
        let latest = self.latest_root.get(&ca)?;
        let total = log.len() as u64;
        let have = have.min(total);
        if have == total {
            let issuance = RevocationIssuance {
                first_number: have + 1,
                serials: Vec::new(),
                signed_root: *latest,
            };
            return Some((issuance.to_bytes(), 0));
        }
        let roots = self.boundary_roots.get(&ca)?;
        let target = have.saturating_add((limit as u64).max(1)).min(total);
        let hi = roots.partition_point(|(end, _)| *end <= target);
        let end = match roots[..hi].last().map(|(e, _)| *e).filter(|e| *e > have) {
            Some(e) => e,
            // No boundary within the limit: serve the enclosing batch whole.
            None => {
                let lo = roots.partition_point(|(e, _)| *e <= have);
                roots.get(lo).map(|(e, _)| *e)?
            }
        };
        let signed_root = if end == total {
            *latest
        } else {
            let i = roots.binary_search_by_key(&end, |(e, _)| *e).ok()?;
            roots[i].1
        };
        let issuance = RevocationIssuance {
            first_number: have + 1,
            serials: log[have as usize..end as usize].to_vec(),
            signed_root,
        };
        Some((issuance.to_bytes(), total - end))
    }

    /// Publishes a periodic refresh (freshness statement or rotated root).
    ///
    /// # Errors
    ///
    /// See [`PublishError`]. Freshness statements are hash-chain values
    /// whose authenticity RAs check against their signed root; the origin
    /// stores them opaquely.
    pub fn publish_refresh(&mut self, ca: CaId, msg: &RefreshMessage) -> Result<(), PublishError> {
        if !self.keys.contains_key(&ca) {
            return Err(PublishError::UnknownCa);
        }
        let bytes = match msg {
            RefreshMessage::Freshness(f) => {
                let mut b = vec![0u8];
                b.extend_from_slice(&f.to_bytes());
                b
            }
            RefreshMessage::NewRoot(sr) => {
                sr.verify(self.keys.get(&ca).expect("checked above"))
                    .map_err(|_| PublishError::BadSignature)?;
                self.latest_root.insert(ca, *sr);
                let mut b = vec![1u8];
                b.extend_from_slice(&sr.to_bytes());
                b
            }
        };
        self.ingress_bytes += bytes.len() as u64;
        self.content.insert(ContentKey::Freshness { ca }, bytes);
        Ok(())
    }

    /// Publishes a CA's bootstrap manifest (opaque JSON, §VIII).
    pub fn publish_manifest(&mut self, ca: CaId, manifest_bytes: Vec<u8>) {
        self.ingress_bytes += manifest_bytes.len() as u64;
        self.content
            .insert(ContentKey::Manifest { ca }, manifest_bytes);
    }

    /// Publishes arbitrary bytes under a key without CA verification — for
    /// measurement workloads (e.g. the fixed-size revocation messages of the
    /// Fig. 5 download experiment) and tests.
    pub fn publish_raw(&mut self, key: ContentKey, bytes: Vec<u8>) {
        self.ingress_bytes += bytes.len() as u64;
        self.content.insert(key, bytes);
    }

    /// Fetches content (what edge servers call on a cache miss).
    pub fn fetch(&self, key: &ContentKey) -> Option<&[u8]> {
        self.content.get(key).map(Vec::as_slice)
    }

    /// The latest verified signed root for `ca`, if it ever published one
    /// (serves the wire protocol's `GetSignedRoot` and consistency
    /// monitors comparing roots across vantage points).
    pub fn signed_root(&self, ca: &CaId) -> Option<&SignedRoot> {
        self.latest_root.get(ca)
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.content.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::{CaDictionary, SerialNumber};

    fn ca_dict() -> (CaDictionary, StdRng) {
        let mut rng = StdRng::seed_from_u64(3);
        let ca = CaDictionary::new(
            CaId::from_name("OriginCA"),
            SigningKey::from_seed([1u8; 32]),
            10,
            64,
            &mut rng,
            1_000,
        );
        (ca, rng)
    }

    #[test]
    fn publish_and_fetch_issuance() {
        let (mut ca, mut rng) = ca_dict();
        let mut origin = Origin::new();
        origin.register_ca(ca.ca(), ca.verifying_key());
        let iss = ca
            .insert(&[SerialNumber::from_u24(5)], &mut rng, 1_001)
            .unwrap();
        origin.publish_issuance(ca.ca(), &iss).unwrap();
        let got = origin
            .fetch(&ContentKey::Issuance {
                ca: ca.ca(),
                version: 1,
            })
            .unwrap();
        assert_eq!(got, iss.to_bytes());
        assert_eq!(
            origin.fetch(&ContentKey::Latest { ca: ca.ca() }).unwrap(),
            iss.to_bytes()
        );
        assert!(origin.ingress_bytes > 0);
    }

    #[test]
    fn unregistered_ca_rejected() {
        let (mut ca, mut rng) = ca_dict();
        let mut origin = Origin::new();
        let iss = ca
            .insert(&[SerialNumber::from_u24(5)], &mut rng, 1_001)
            .unwrap();
        assert_eq!(
            origin.publish_issuance(ca.ca(), &iss),
            Err(PublishError::UnknownCa)
        );
    }

    #[test]
    fn forged_issuance_rejected() {
        let (mut ca, mut rng) = ca_dict();
        let mut origin = Origin::new();
        // Register the *wrong* key: the genuine CA's signature must fail.
        let other = SigningKey::from_seed([9u8; 32]);
        origin.register_ca(ca.ca(), other.verifying_key());
        let iss = ca
            .insert(&[SerialNumber::from_u24(5)], &mut rng, 1_001)
            .unwrap();
        assert_eq!(
            origin.publish_issuance(ca.ca(), &iss),
            Err(PublishError::BadSignature)
        );
    }

    #[test]
    fn refresh_overwrites_freshness() {
        let (mut ca, mut rng) = ca_dict();
        let mut origin = Origin::new();
        origin.register_ca(ca.ca(), ca.verifying_key());
        let m1 = ca.refresh(&mut rng, 1_010);
        origin.publish_refresh(ca.ca(), &m1).unwrap();
        let first = origin
            .fetch(&ContentKey::Freshness { ca: ca.ca() })
            .unwrap()
            .to_vec();
        let m2 = ca.refresh(&mut rng, 1_020);
        origin.publish_refresh(ca.ca(), &m2).unwrap();
        let second = origin
            .fetch(&ContentKey::Freshness { ca: ca.ca() })
            .unwrap();
        assert_ne!(first, second);
        assert_eq!(origin.object_count(), 1, "freshness key is overwritten");
    }

    #[test]
    fn missing_content_is_none() {
        let origin = Origin::new();
        assert!(origin
            .fetch(&ContentKey::Latest {
                ca: CaId::from_name("X")
            })
            .is_none());
    }
}
