//! The CDN edge as a wire-protocol [`Service`] endpoint.
//!
//! [`EdgeService`] exposes one regional edge of a [`Cdn`] through the
//! versioned RITM envelope vocabulary: `FetchDelta` and `FetchFreshness`
//! map to the edge's cached pulls, `CatchUp` to the origin's parametrized
//! catch-up synthesis, `GetManifest` to the bootstrap manifest, and
//! `GetSignedRoot` to the origin's latest verified root. Status requests
//! are refused with [`ProtoError::Unsupported`] — statuses are the RA's
//! job, not the CDN's.
//!
//! `handle` works from `&self` (the service sits behind any transport, on
//! any number of threads), so the mutable CDN state lives behind a mutex;
//! simulated pull latency is accumulated per request and drained by
//! latency-aware transports via [`Service::take_latency`].

use crate::network::Cdn;
use crate::origin::ContentKey;
use crate::regions::Region;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_dictionary::{FreshnessStatement, RefreshMessage, RevocationIssuance, SignedRoot};
use ritm_net::time::{SimDuration, SimTime};
use ritm_proto::{ProtoError, RitmRequest, RitmResponse, Service};
use std::borrow::BorrowMut;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One regional edge endpoint over a [`Cdn`] (owned, or `&mut`-borrowed
/// for the duration of a sync pass — anything that [`BorrowMut`]s a CDN).
pub struct EdgeService<C = Cdn> {
    cdn: Mutex<C>,
    region: Region,
    rng: Mutex<StdRng>,
    /// Current time in seconds (edges judge cache TTLs against it).
    now_secs: AtomicU64,
    /// Sampled pull latency accumulated since the last `take_latency`.
    pending_latency_us: AtomicU64,
}

impl<C: BorrowMut<Cdn>> EdgeService<C> {
    /// Wraps `cdn` as the edge endpoint for `region`. `seed` initializes
    /// the service's private latency-sampling RNG stream.
    pub fn new(cdn: C, region: Region, seed: u64) -> Self {
        EdgeService {
            cdn: Mutex::new(cdn),
            region,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            now_secs: AtomicU64::new(0),
            pending_latency_us: AtomicU64::new(0),
        }
    }

    /// Advances the service clock (cache-TTL decisions and latency
    /// sampling are relative to it).
    pub fn set_now(&self, now: SimTime) {
        self.now_secs.store(now.as_secs(), Ordering::SeqCst);
    }

    /// The region this edge serves.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Runs `f` with exclusive access to the underlying CDN — how a
    /// harness publishes CA content while the service keeps serving.
    pub fn with_cdn<R>(&self, f: impl FnOnce(&mut Cdn) -> R) -> R {
        let mut guard = self.cdn.lock().expect("cdn lock");
        let cdn: &mut Cdn = (*guard).borrow_mut();
        f(cdn)
    }

    fn charge(&self, latency: SimDuration) {
        self.pending_latency_us
            .fetch_add(latency.as_micros(), Ordering::Relaxed);
    }

    /// One billed edge pull, decoded with `parse`.
    fn pull_decoded<T>(
        &self,
        key: &ContentKey,
        parse: impl FnOnce(&[u8]) -> Option<T>,
    ) -> Result<T, ProtoError> {
        let now = SimTime::from_secs(self.now_secs.load(Ordering::SeqCst));
        let mut guard = self.cdn.lock().expect("cdn lock");
        let cdn: &mut Cdn = (*guard).borrow_mut();
        let mut rng = self.rng.lock().expect("rng lock");
        let Some((bytes, stats)) = cdn.pull(self.region, key, now, &mut *rng) else {
            return Err(ProtoError::NotFound);
        };
        self.charge(stats.latency);
        // The stored object was verified at publish time; if it no longer
        // decodes, the origin store is corrupt — an internal fault, not a
        // client error.
        parse(&bytes).ok_or(ProtoError::Internal)
    }
}

/// Decodes the origin's refresh object (tag byte + body).
fn decode_refresh(bytes: &[u8]) -> Option<RefreshMessage> {
    let (tag, body) = bytes.split_first()?;
    match tag {
        0 => FreshnessStatement::from_bytes(body)
            .ok()
            .map(RefreshMessage::Freshness),
        1 => SignedRoot::from_bytes(body)
            .ok()
            .map(RefreshMessage::NewRoot),
        _ => None,
    }
}

impl<C: BorrowMut<Cdn> + Send> Service for EdgeService<C> {
    fn handle(&self, req: RitmRequest) -> RitmResponse {
        match req {
            RitmRequest::FetchDelta { ca } => {
                match self.pull_decoded(&ContentKey::Latest { ca }, |b| {
                    RevocationIssuance::from_bytes(b).ok()
                }) {
                    Ok(iss) => RitmResponse::Delta(iss),
                    Err(e) => RitmResponse::Error(e),
                }
            }
            RitmRequest::FetchFreshness { ca } => {
                match self.pull_decoded(&ContentKey::Freshness { ca }, decode_refresh) {
                    Ok(msg) => RitmResponse::Freshness(msg),
                    Err(e) => RitmResponse::Error(e),
                }
            }
            RitmRequest::CatchUp { ca, have } => {
                // Parametrized requests are not cacheable: straight to the
                // origin, billed like any other download (§III).
                let mut guard = self.cdn.lock().expect("cdn lock");
                let cdn: &mut Cdn = (*guard).borrow_mut();
                let mut rng = self.rng.lock().expect("rng lock");
                match cdn.pull_since(self.region, ca, have, &mut *rng) {
                    Some((bytes, stats)) => {
                        self.charge(stats.latency);
                        match RevocationIssuance::from_bytes(&bytes) {
                            Ok(iss) => RitmResponse::Delta(iss),
                            Err(_) => RitmResponse::Error(ProtoError::Internal),
                        }
                    }
                    None => RitmResponse::Error(ProtoError::NotFound),
                }
            }
            RitmRequest::CatchUpPaged { ca, have, limit } => {
                let limit = limit.min(ritm_proto::MAX_PAGE_LIMIT);
                let mut guard = self.cdn.lock().expect("cdn lock");
                let cdn: &mut Cdn = (*guard).borrow_mut();
                let mut rng = self.rng.lock().expect("rng lock");
                match cdn.pull_page(self.region, ca, have, limit, &mut *rng) {
                    Some((bytes, remaining, stats)) => {
                        self.charge(stats.latency);
                        match RevocationIssuance::from_bytes(&bytes) {
                            Ok(issuance) => RitmResponse::DeltaPage {
                                issuance,
                                remaining,
                            },
                            Err(_) => RitmResponse::Error(ProtoError::Internal),
                        }
                    }
                    None => RitmResponse::Error(ProtoError::NotFound),
                }
            }
            RitmRequest::GetManifest { ca } => {
                match self.pull_decoded(&ContentKey::Manifest { ca }, |b| Some(b.to_vec())) {
                    Ok(bytes) => RitmResponse::Manifest(bytes),
                    Err(e) => RitmResponse::Error(e),
                }
            }
            RitmRequest::GetSignedRoot { ca } => {
                let mut guard = self.cdn.lock().expect("cdn lock");
                let cdn: &mut Cdn = (*guard).borrow_mut();
                match cdn.origin.signed_root(&ca) {
                    Some(root) => RitmResponse::SignedRoot(*root),
                    None => RitmResponse::Error(ProtoError::UnknownCa(ca)),
                }
            }
            RitmRequest::GetStatus { .. }
            | RitmRequest::GetMultiStatus { .. }
            | RitmRequest::GossipRoots { .. } => RitmResponse::Error(ProtoError::Unsupported),
        }
    }

    fn take_latency(&self) -> SimDuration {
        SimDuration::from_micros(self.pending_latency_us.swap(0, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ritm_dictionary::{CaDictionary, CaId, SerialNumber};

    const T0: u64 = 1_000_000;

    fn world() -> (CaDictionary, Cdn, StdRng) {
        let mut rng = StdRng::seed_from_u64(9);
        let ca = CaDictionary::new(
            CaId::from_name("EdgeSvcCA"),
            ritm_crypto::ed25519::SigningKey::from_seed([2u8; 32]),
            10,
            256,
            &mut rng,
            T0,
        );
        let mut cdn = Cdn::new(SimDuration::from_secs(30));
        cdn.origin.register_ca(ca.ca(), ca.verifying_key());
        (ca, cdn, rng)
    }

    #[test]
    fn serves_delta_freshness_root_and_manifest() {
        let (mut ca, mut cdn, mut rng) = world();
        let iss = ca
            .insert(&[SerialNumber::from_u24(5)], &mut rng, T0 + 1)
            .unwrap();
        cdn.origin.publish_issuance(ca.ca(), &iss).unwrap();
        let refresh = ca.refresh(&mut rng, T0 + 2);
        cdn.origin.publish_refresh(ca.ca(), &refresh).unwrap();
        cdn.origin.publish_manifest(ca.ca(), b"{}".to_vec());

        let svc = EdgeService::new(cdn, Region::Europe, 7);
        svc.set_now(SimTime::from_secs(T0 + 2));

        assert_eq!(
            svc.handle(RitmRequest::FetchDelta { ca: ca.ca() }),
            RitmResponse::Delta(iss.clone())
        );
        assert_eq!(
            svc.handle(RitmRequest::FetchFreshness { ca: ca.ca() }),
            RitmResponse::Freshness(refresh)
        );
        assert_eq!(
            svc.handle(RitmRequest::GetSignedRoot { ca: ca.ca() }),
            RitmResponse::SignedRoot(iss.signed_root)
        );
        assert_eq!(
            svc.handle(RitmRequest::GetManifest { ca: ca.ca() }),
            RitmResponse::Manifest(b"{}".to_vec())
        );
        // Pulls sampled latency; a latency-aware transport drains it once.
        assert!(svc.take_latency() > SimDuration::ZERO);
        assert_eq!(svc.take_latency(), SimDuration::ZERO);
    }

    #[test]
    fn catch_up_returns_the_missing_suffix() {
        let (mut ca, mut cdn, mut rng) = world();
        for i in 0..3u32 {
            let iss = ca
                .insert(
                    &[SerialNumber::from_u24(10 + i)],
                    &mut rng,
                    T0 + 1 + i as u64,
                )
                .unwrap();
            cdn.origin.publish_issuance(ca.ca(), &iss).unwrap();
        }
        let svc = EdgeService::new(cdn, Region::Japan, 7);
        match svc.handle(RitmRequest::CatchUp {
            ca: ca.ca(),
            have: 1,
        }) {
            RitmResponse::Delta(iss) => {
                assert_eq!(iss.first_number, 2);
                assert_eq!(iss.serials.len(), 2);
            }
            other => panic!("expected Delta, got {other:?}"),
        }
    }

    #[test]
    fn unknown_objects_and_status_requests_are_typed_errors() {
        let (ca, cdn, _) = world();
        let svc = EdgeService::new(cdn, Region::Europe, 7);
        let nobody = CaId::from_name("nobody");
        assert_eq!(
            svc.handle(RitmRequest::FetchDelta { ca: nobody }),
            RitmResponse::Error(ProtoError::NotFound)
        );
        assert_eq!(
            svc.handle(RitmRequest::GetSignedRoot { ca: nobody }),
            RitmResponse::Error(ProtoError::UnknownCa(nobody))
        );
        assert_eq!(
            svc.handle(RitmRequest::GetStatus {
                ca: ca.ca(),
                serial: SerialNumber::from_u24(1),
            }),
            RitmResponse::Error(ProtoError::Unsupported)
        );
    }

    #[test]
    fn borrowed_cdn_service_bills_the_shared_ledger() {
        let (mut ca, mut cdn, mut rng) = world();
        let iss = ca
            .insert(&[SerialNumber::from_u24(1)], &mut rng, T0 + 1)
            .unwrap();
        cdn.origin.publish_issuance(ca.ca(), &iss).unwrap();
        {
            let svc = EdgeService::new(&mut cdn, Region::India, 3);
            svc.set_now(SimTime::from_secs(T0 + 1));
            assert!(matches!(
                svc.handle(RitmRequest::FetchDelta { ca: ca.ca() }),
                RitmResponse::Delta(_)
            ));
        }
        assert!(cdn.ledger.bytes_in(Region::India) > 0);
    }
}
