//! CDN regions: geography, population shares, latency, and price schedules.
//!
//! Calibrated to the public Amazon CloudFront price sheet and edge map of
//! the paper's era (2015). Absolute numbers are a substitution for the real
//! CloudFront measurements (see DESIGN.md); the experiments depend on the
//! *relative* structure — tiered volume discounts and regional price/latency
//! differences — which is preserved.

use ritm_net::latency::LatencyModel;

/// A CloudFront-style billing/serving region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// United States & Canada.
    NorthAmerica,
    /// Europe.
    Europe,
    /// Hong Kong, Singapore, Korea, Taiwan.
    AsiaPacific,
    /// Japan.
    Japan,
    /// South America.
    SouthAmerica,
    /// Australia & New Zealand.
    Australia,
    /// India.
    India,
}

/// All regions, in a stable order.
pub const ALL_REGIONS: [Region; 7] = [
    Region::NorthAmerica,
    Region::Europe,
    Region::AsiaPacific,
    Region::Japan,
    Region::SouthAmerica,
    Region::Australia,
    Region::India,
];

/// Cumulative monthly volume tier boundaries in bytes (10 TB, 50 TB, 150 TB,
/// 500 TB, 1 PB, 5 PB, then unbounded) — the CloudFront discount ladder.
pub const TIER_BOUNDS: [u64; 6] = [
    10 * TB,
    50 * TB,
    150 * TB,
    500 * TB,
    1024 * TB,
    5 * 1024 * TB,
];

const TB: u64 = 1_000_000_000_000;

impl Region {
    /// Share of world population served from this region (used to place
    /// RAs proportionally to city population, §VII-C).
    pub fn population_share(&self) -> f64 {
        match self {
            Region::NorthAmerica => 0.12,
            Region::Europe => 0.16,
            Region::AsiaPacific => 0.34,
            Region::Japan => 0.04,
            Region::SouthAmerica => 0.09,
            Region::Australia => 0.01,
            Region::India => 0.24,
        }
    }

    /// USD per GB for each volume tier (aligned with [`TIER_BOUNDS`], plus
    /// the final open-ended tier).
    pub fn price_tiers_usd_per_gb(&self) -> [f64; 7] {
        match self {
            Region::NorthAmerica | Region::Europe => {
                [0.085, 0.080, 0.060, 0.040, 0.030, 0.025, 0.020]
            }
            Region::AsiaPacific | Region::Japan | Region::Australia => {
                [0.140, 0.135, 0.120, 0.100, 0.080, 0.070, 0.060]
            }
            Region::SouthAmerica => [0.250, 0.200, 0.180, 0.160, 0.140, 0.130, 0.125],
            Region::India => [0.170, 0.130, 0.110, 0.100, 0.100, 0.100, 0.100],
        }
    }

    /// Latency distribution for an RA pulling from its nearest edge server
    /// (cache hit). Means span ~20–120 ms, matching the spread of the
    /// paper's PlanetLab vantage points.
    pub fn edge_latency(&self) -> LatencyModel {
        match self {
            Region::NorthAmerica => LatencyModel::LogNormal {
                mu: -3.9,
                sigma: 0.45,
                floor: 0.004,
            },
            Region::Europe => LatencyModel::LogNormal {
                mu: -3.8,
                sigma: 0.45,
                floor: 0.005,
            },
            Region::AsiaPacific => LatencyModel::LogNormal {
                mu: -3.3,
                sigma: 0.55,
                floor: 0.010,
            },
            Region::Japan => LatencyModel::LogNormal {
                mu: -3.6,
                sigma: 0.45,
                floor: 0.008,
            },
            Region::SouthAmerica => LatencyModel::LogNormal {
                mu: -3.0,
                sigma: 0.60,
                floor: 0.015,
            },
            Region::Australia => LatencyModel::LogNormal {
                mu: -3.1,
                sigma: 0.50,
                floor: 0.012,
            },
            Region::India => LatencyModel::LogNormal {
                mu: -3.0,
                sigma: 0.60,
                floor: 0.015,
            },
        }
    }

    /// Latency distribution for an edge server fetching from the origin
    /// (cache miss, TTL = 0 worst case of Fig. 5).
    pub fn origin_latency(&self) -> LatencyModel {
        match self {
            Region::NorthAmerica => LatencyModel::LogNormal {
                mu: -3.2,
                sigma: 0.40,
                floor: 0.010,
            },
            Region::Europe => LatencyModel::LogNormal {
                mu: -2.9,
                sigma: 0.40,
                floor: 0.040,
            },
            Region::AsiaPacific => LatencyModel::LogNormal {
                mu: -2.5,
                sigma: 0.50,
                floor: 0.080,
            },
            Region::Japan => LatencyModel::LogNormal {
                mu: -2.6,
                sigma: 0.45,
                floor: 0.070,
            },
            Region::SouthAmerica => LatencyModel::LogNormal {
                mu: -2.3,
                sigma: 0.55,
                floor: 0.090,
            },
            Region::Australia => LatencyModel::LogNormal {
                mu: -2.3,
                sigma: 0.50,
                floor: 0.100,
            },
            Region::India => LatencyModel::LogNormal {
                mu: -2.4,
                sigma: 0.55,
                floor: 0.090,
            },
        }
    }

    /// Sustained edge→RA throughput in bytes/second (drives the
    /// size-dependent part of Fig. 5 download times).
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        match self {
            Region::NorthAmerica => 12e6,
            Region::Europe => 11e6,
            Region::AsiaPacific => 6e6,
            Region::Japan => 9e6,
            Region::SouthAmerica => 3.5e6,
            Region::Australia => 5e6,
            Region::India => 3e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_shares_sum_to_one() {
        let total: f64 = ALL_REGIONS.iter().map(Region::population_share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares summed to {total}");
    }

    #[test]
    fn price_tiers_monotonically_decrease() {
        for r in ALL_REGIONS {
            let tiers = r.price_tiers_usd_per_gb();
            for w in tiers.windows(2) {
                assert!(w[0] >= w[1], "{r:?} tiers must not increase");
            }
        }
    }

    #[test]
    fn tier_bounds_increase() {
        for w in TIER_BOUNDS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn south_america_most_expensive() {
        let sa = Region::SouthAmerica.price_tiers_usd_per_gb()[0];
        for r in ALL_REGIONS {
            assert!(r.price_tiers_usd_per_gb()[0] <= sa);
        }
    }

    #[test]
    fn origin_fetch_slower_than_edge_hit() {
        for r in ALL_REGIONS {
            assert!(
                r.origin_latency().mean_secs() > r.edge_latency().mean_secs(),
                "{r:?}: cache miss must cost more than a hit"
            );
        }
    }
}
