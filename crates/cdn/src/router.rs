//! Fleet-aware request routing: client region → owning shard, with
//! spillover to a replica when the owner is down.
//!
//! The router is deliberately topology-agnostic: anything implementing
//! [`ShardTopology`] (in practice `ritm_fleet::HashRing`) supplies the
//! preference-ordered candidate list for a placement point, and the router
//! layers liveness tracking, region affinity accounting, and spillover on
//! top. Keeping the trait here (and the ring in `ritm-fleet`) lets the CDN
//! crate stay independent of the fleet crate while the fleet composes both.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use crate::regions::Region;

/// A sharding scheme the router can ask for placement candidates.
///
/// Implementations must be deterministic pure functions of their
/// configuration — routing the same `point` on two processes (or two
/// restarts) must name the same nodes, so placement may not consult
/// clocks or RNGs.
pub trait ShardTopology {
    /// Node identifier (a fleet node name).
    type Node: Clone + Eq + Hash;

    /// Up to `n` distinct nodes that may serve `point`,
    /// preference-ordered: the owner first, then successor replicas.
    fn candidates(&self, point: u64, n: usize) -> Vec<Self::Node>;
}

/// One routing decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route<N> {
    /// The node the request should go to.
    pub node: N,
    /// Whether the preferred owner was down and a replica was substituted.
    pub spilled: bool,
    /// Whether the chosen node's home region differs from the client's
    /// (the caller charges inter-region latency for these).
    pub cross_region: bool,
}

/// Counters the router keeps per process (monotonic, never reset).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests successfully routed (including spilled ones).
    pub routed: u64,
    /// Requests that landed on a replica because the owner was down.
    pub spilled: u64,
    /// Requests whose chosen node lives in a different region than the
    /// client.
    pub cross_region: u64,
    /// Requests with no live candidate at all.
    pub unroutable: u64,
}

/// Routes client requests to the owning shard of a placement point,
/// spilling over to successor replicas while the owner is marked down.
#[derive(Debug)]
pub struct FleetRouter<T: ShardTopology> {
    topology: T,
    homes: HashMap<T::Node, Region>,
    down: HashSet<T::Node>,
    replicas: usize,
    stats: RouterStats,
}

impl<T: ShardTopology> FleetRouter<T> {
    /// Creates a router over `topology`, considering the owner plus
    /// `replicas - 1` successors for every point (`replicas` is clamped to
    /// at least 1).
    pub fn new(topology: T, replicas: usize) -> Self {
        FleetRouter {
            topology,
            homes: HashMap::new(),
            down: HashSet::new(),
            replicas: replicas.max(1),
            stats: RouterStats::default(),
        }
    }

    /// Records `node`'s home region (used for the `cross_region` flag).
    pub fn set_home(&mut self, node: T::Node, region: Region) {
        self.homes.insert(node, region);
    }

    /// A node's recorded home region.
    pub fn home(&self, node: &T::Node) -> Option<Region> {
        self.homes.get(node).copied()
    }

    /// Marks a node unavailable; subsequent routes spill to replicas.
    pub fn mark_down(&mut self, node: T::Node) {
        self.down.insert(node);
    }

    /// Marks a node available again.
    pub fn mark_up(&mut self, node: &T::Node) {
        self.down.remove(node);
    }

    /// Whether a node is currently marked down.
    pub fn is_down(&self, node: &T::Node) -> bool {
        self.down.contains(node)
    }

    /// The underlying topology.
    pub fn topology(&self) -> &T {
        &self.topology
    }

    /// Mutable access to the topology (node join/leave).
    pub fn topology_mut(&mut self) -> &mut T {
        &mut self.topology
    }

    /// Counters so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Routes a request from a client in `client_region` for placement
    /// point `point`: the owner if it is live, else the first live
    /// replica. `None` (and an `unroutable` tick) when every candidate is
    /// down or the topology is empty.
    pub fn route(&mut self, client_region: Region, point: u64) -> Option<Route<T::Node>> {
        let candidates = self.topology.candidates(point, self.replicas);
        for (i, node) in candidates.into_iter().enumerate() {
            if self.down.contains(&node) {
                continue;
            }
            let cross_region = self.homes.get(&node) != Some(&client_region);
            self.stats.routed += 1;
            if i > 0 {
                self.stats.spilled += 1;
            }
            if cross_region {
                self.stats.cross_region += 1;
            }
            return Some(Route {
                node,
                spilled: i > 0,
                cross_region,
            });
        }
        self.stats.unroutable += 1;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed two-node topology: even points owned by `a`, odd by `b`,
    /// with the other node as the sole replica.
    struct TwoNodes;

    impl ShardTopology for TwoNodes {
        type Node = &'static str;

        fn candidates(&self, point: u64, n: usize) -> Vec<&'static str> {
            let order = if point.is_multiple_of(2) {
                ["a", "b"]
            } else {
                ["b", "a"]
            };
            order.into_iter().take(n).collect()
        }
    }

    #[test]
    fn owner_first_then_spillover_then_unroutable() {
        let mut router = FleetRouter::new(TwoNodes, 2);
        router.set_home("a", Region::Europe);
        router.set_home("b", Region::Japan);

        let r = router.route(Region::Europe, 0).unwrap();
        assert_eq!(r.node, "a");
        assert!(!r.spilled);
        assert!(!r.cross_region);

        router.mark_down("a");
        let r = router.route(Region::Europe, 0).unwrap();
        assert_eq!(r.node, "b");
        assert!(r.spilled);
        assert!(r.cross_region, "replica lives in another region");

        router.mark_down("b");
        assert_eq!(router.route(Region::Europe, 0), None);

        router.mark_up(&"a");
        let r = router.route(Region::Japan, 0).unwrap();
        assert_eq!(r.node, "a");
        assert!(!r.spilled);
        assert!(r.cross_region);

        let stats = router.stats();
        assert_eq!(stats.routed, 3);
        assert_eq!(stats.spilled, 1);
        assert_eq!(stats.cross_region, 2);
        assert_eq!(stats.unroutable, 1);
    }

    #[test]
    fn replica_budget_limits_spillover() {
        // With replicas = 1 only the owner is ever considered.
        let mut router = FleetRouter::new(TwoNodes, 1);
        router.mark_down("a");
        assert_eq!(router.route(Region::Europe, 0), None);
        assert!(router.route(Region::Europe, 1).is_some());
    }
}
