//! The assembled dissemination network: one origin, one logical edge per
//! region, and the traffic ledger that produces the CA's bill.

use crate::edge::{EdgeServer, PullStats};
use crate::origin::{ContentKey, Origin};
use crate::pricing::TrafficLedger;
use crate::regions::{Region, ALL_REGIONS};
use ritm_net::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A CDN with regional edges in front of one origin.
#[derive(Debug)]
pub struct Cdn {
    /// The distribution point CAs publish to.
    pub origin: Origin,
    edges: BTreeMap<Region, EdgeServer>,
    /// Billing ledger for the current cycle.
    pub ledger: TrafficLedger,
}

impl Cdn {
    /// Creates a CDN whose edges cache with the given TTL.
    pub fn new(ttl: SimDuration) -> Self {
        let edges = ALL_REGIONS
            .iter()
            .map(|r| (*r, EdgeServer::new(*r, ttl)))
            .collect();
        Cdn {
            origin: Origin::new(),
            edges,
            ledger: TrafficLedger::new(),
        }
    }

    /// One RA pull from its regional edge; traffic is billed to the ledger.
    pub fn pull<R: rand::Rng + ?Sized>(
        &mut self,
        region: Region,
        key: &ContentKey,
        now: SimTime,
        rng: &mut R,
    ) -> Option<(Vec<u8>, PullStats)> {
        let edge = self.edges.get_mut(&region).expect("all regions present");
        let (bytes, stats) = edge.pull(key, &self.origin, now, rng)?;
        self.ledger.record(region, stats.bytes);
        Some((bytes, stats))
    }

    /// A desynchronized RA's catch-up request (paper §III sync protocol):
    /// goes straight through to the origin (parametrized requests are not
    /// cacheable), billed like any other download.
    pub fn pull_since<R: rand::Rng + ?Sized>(
        &mut self,
        region: Region,
        ca: ritm_dictionary::CaId,
        have: u64,
        rng: &mut R,
    ) -> Option<(Vec<u8>, PullStats)> {
        let bytes = self.origin.fetch_since(ca, have)?;
        self.ledger.record(region, bytes.len() as u64);
        let latency = region.origin_latency().sample(rng)
            + region.edge_latency().sample(rng)
            + ritm_net::time::SimDuration::from_secs_f64(
                bytes.len() as f64 / region.bandwidth_bytes_per_sec(),
            );
        let stats = PullStats {
            bytes: bytes.len() as u64,
            cache_hit: false,
            latency,
        };
        Some((bytes, stats))
    }

    /// One page of a desynchronized RA's catch-up (the bounded variant of
    /// [`Cdn::pull_since`]): straight through to the origin, billed like
    /// any other download. Returns the encoded issuance page, the count of
    /// serials remaining beyond it, and the pull statistics.
    pub fn pull_page<R: rand::Rng + ?Sized>(
        &mut self,
        region: Region,
        ca: ritm_dictionary::CaId,
        have: u64,
        limit: u32,
        rng: &mut R,
    ) -> Option<(Vec<u8>, u64, PullStats)> {
        let (bytes, remaining) = self.origin.fetch_page(ca, have, limit)?;
        self.ledger.record(region, bytes.len() as u64);
        let latency = region.origin_latency().sample(rng)
            + region.edge_latency().sample(rng)
            + ritm_net::time::SimDuration::from_secs_f64(
                bytes.len() as f64 / region.bandwidth_bytes_per_sec(),
            );
        let stats = PullStats {
            bytes: bytes.len() as u64,
            cache_hit: false,
            latency,
        };
        Some((bytes, remaining, stats))
    }

    /// Borrow a regional edge (for cache statistics).
    pub fn edge(&self, region: Region) -> &EdgeServer {
        self.edges.get(&region).expect("all regions present")
    }

    /// Flushes all edge caches.
    pub fn flush_edges(&mut self) {
        for e in self.edges.values_mut() {
            e.flush();
        }
    }

    /// Aggregate cache-hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let (h, m) = self
            .edges
            .values()
            .fold((0u64, 0u64), |(h, m), e| (h + e.hits, m + e.misses));
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_dictionary::CaId;

    #[test]
    fn pulls_are_billed_per_region() {
        let mut cdn = Cdn::new(SimDuration::from_secs(60));
        let ca = CaId::from_name("NetCA");
        cdn.origin.publish_manifest(ca, vec![1u8; 5000]);
        let key = ContentKey::Manifest { ca };
        let mut rng = StdRng::seed_from_u64(1);
        cdn.pull(Region::Europe, &key, SimTime::ZERO, &mut rng)
            .unwrap();
        cdn.pull(Region::Japan, &key, SimTime::ZERO, &mut rng)
            .unwrap();
        assert_eq!(cdn.ledger.total_bytes(), 10_000);
        assert_eq!(cdn.ledger.bytes_in(Region::Europe), 5000);
        assert_eq!(cdn.ledger.bytes_in(Region::Japan), 5000);
        assert_eq!(cdn.ledger.bytes_in(Region::India), 0);
    }

    #[test]
    fn regional_caches_are_independent() {
        let mut cdn = Cdn::new(SimDuration::from_secs(60));
        let ca = CaId::from_name("NetCA");
        cdn.origin.publish_manifest(ca, vec![1u8; 100]);
        let key = ContentKey::Manifest { ca };
        let mut rng = StdRng::seed_from_u64(1);
        // First pull in each region is a miss.
        for r in [Region::Europe, Region::India] {
            let (_, s) = cdn.pull(r, &key, SimTime::ZERO, &mut rng).unwrap();
            assert!(!s.cache_hit, "{r:?}");
        }
        // Second pull in Europe hits; India's cache was warmed separately.
        let (_, s) = cdn
            .pull(Region::Europe, &key, SimTime::from_secs(1), &mut rng)
            .unwrap();
        assert!(s.cache_hit);
        assert!(cdn.hit_ratio() > 0.0);
    }
}
