//! # ritm-cdn — the dissemination network (paper §III "Dissemination",
//! §VII-B/C)
//!
//! RITM reuses a commercial CDN to push revocations from CAs to RAs. This
//! crate models a CloudFront-style CDN:
//!
//! * [`origin`] — the distribution point CAs publish (verified) issuances,
//!   freshness statements, and bootstrap manifests to;
//! * [`edge`] — regional TTL caches RAs pull from, with the Fig. 5
//!   download-time model (RTT + serialization, worst case TTL = 0);
//! * [`regions`] — region geography, population shares, latency models, and
//!   the 2015 CloudFront price ladder;
//! * [`pricing`] — tiered per-region billing, producing the Fig. 6 /
//!   Table II cost numbers;
//! * [`network`] — the assembled CDN;
//! * [`service`] — a regional edge exposed as a `ritm-proto`
//!   [`Service`](ritm_proto::Service) endpoint, servable over any
//!   transport (in-process, simulated, real TCP).
//!
//! # Examples
//!
//! ```
//! use ritm_cdn::{network::Cdn, origin::ContentKey, regions::Region};
//! use ritm_net::time::{SimDuration, SimTime};
//! use ritm_dictionary::CaId;
//! use rand::SeedableRng;
//!
//! let mut cdn = Cdn::new(SimDuration::from_secs(10));
//! let ca = CaId::from_name("ExampleCA");
//! cdn.origin.publish_manifest(ca, b"{\"delta\": 10}".to_vec());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let (bytes, stats) = cdn
//!     .pull(Region::Europe, &ContentKey::Manifest { ca }, SimTime::ZERO, &mut rng)
//!     .expect("published");
//! assert!(!stats.cache_hit);
//! assert_eq!(bytes, b"{\"delta\": 10}");
//! ```

pub mod edge;
pub mod network;
pub mod origin;
pub mod pricing;
pub mod regions;
pub mod router;
pub mod service;

pub use edge::{EdgeServer, PullStats};
pub use network::Cdn;
pub use origin::{ContentKey, Origin, PublishError};
pub use pricing::{aggregate_tiered_cost_usd, tiered_cost_usd, TrafficLedger};
pub use regions::{Region, ALL_REGIONS};
pub use router::{FleetRouter, Route, RouterStats, ShardTopology};
pub use service::EdgeService;
