//! Edge servers: regional caches between the origin and RAs.
//!
//! Edges pull from the origin on demand and cache for a TTL (set by the
//! origin; 0 disables caching, the worst case measured in Fig. 5).

use crate::origin::{ContentKey, Origin};
use crate::regions::Region;
use ritm_net::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Statistics for one RA pull.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PullStats {
    /// Bytes delivered to the RA.
    pub bytes: u64,
    /// Whether the edge had the object cached and fresh.
    pub cache_hit: bool,
    /// Total time from request to last byte.
    pub latency: SimDuration,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    bytes: Vec<u8>,
    fetched_at: SimTime,
}

/// A regional edge server with a TTL cache.
#[derive(Debug)]
pub struct EdgeServer {
    /// Region this edge serves.
    pub region: Region,
    ttl: SimDuration,
    cache: HashMap<ContentKey, CacheEntry>,
    /// Bytes served to RAs (egress the CA pays for).
    pub served_bytes: u64,
    /// Bytes fetched from the origin.
    pub origin_bytes: u64,
    /// Hits/misses for cache-efficiency reporting.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl EdgeServer {
    /// Creates an edge with the given cache TTL (`SimDuration::ZERO`
    /// disables caching).
    pub fn new(region: Region, ttl: SimDuration) -> Self {
        EdgeServer {
            region,
            ttl,
            cache: HashMap::new(),
            served_bytes: 0,
            origin_bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Handles one RA pull: serve from cache if fresh, otherwise fetch from
    /// `origin` first. Latencies are sampled from the regional models.
    ///
    /// Returns `None` when the object does not exist at the origin either.
    pub fn pull<R: rand::Rng + ?Sized>(
        &mut self,
        key: &ContentKey,
        origin: &Origin,
        now: SimTime,
        rng: &mut R,
    ) -> Option<(Vec<u8>, PullStats)> {
        let fresh = self
            .cache
            .get(key)
            .is_some_and(|e| self.ttl > SimDuration::ZERO && now.since(e.fetched_at) <= self.ttl);

        let edge_rtt = self.region.edge_latency().sample(rng);
        let bw = self.region.bandwidth_bytes_per_sec();

        if fresh {
            let entry = self.cache.get(key).expect("checked fresh");
            let bytes = entry.bytes.clone();
            self.hits += 1;
            self.served_bytes += bytes.len() as u64;
            let latency = edge_rtt + SimDuration::from_secs_f64(bytes.len() as f64 / bw);
            return Some((
                bytes.clone(),
                PullStats {
                    bytes: bytes.len() as u64,
                    cache_hit: true,
                    latency,
                },
            ));
        }

        // Miss: fetch through to the origin.
        let body = origin.fetch(key)?.to_vec();
        self.misses += 1;
        self.origin_bytes += body.len() as u64;
        self.cache.insert(
            key.clone(),
            CacheEntry {
                bytes: body.clone(),
                fetched_at: now,
            },
        );
        self.served_bytes += body.len() as u64;
        let origin_rtt = self.region.origin_latency().sample(rng);
        // Origin→edge transfer typically runs on fatter pipes; charge half
        // the edge-link serialization cost.
        let latency = edge_rtt
            + origin_rtt
            + SimDuration::from_secs_f64(body.len() as f64 / bw)
            + SimDuration::from_secs_f64(body.len() as f64 / (2.0 * bw));
        Some((
            body.clone(),
            PullStats {
                bytes: body.len() as u64,
                cache_hit: false,
                latency,
            },
        ))
    }

    /// Cache-hit ratio so far.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drops every cached object (e.g. at a TTL configuration change).
    pub fn flush(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_dictionary::CaId;

    fn setup() -> (Origin, EdgeServer, ContentKey, StdRng) {
        let mut origin = Origin::new();
        let ca = CaId::from_name("EdgeCA");
        origin.publish_manifest(ca, vec![7u8; 1000]);
        let edge = EdgeServer::new(Region::Europe, SimDuration::from_secs(30));
        (
            origin,
            edge,
            ContentKey::Manifest { ca },
            StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn miss_then_hit() {
        let (origin, mut edge, key, mut rng) = setup();
        let (_, s1) = edge
            .pull(&key, &origin, SimTime::from_secs(0), &mut rng)
            .unwrap();
        assert!(!s1.cache_hit);
        let (_, s2) = edge
            .pull(&key, &origin, SimTime::from_secs(10), &mut rng)
            .unwrap();
        assert!(s2.cache_hit);
        assert_eq!(edge.hits, 1);
        assert_eq!(edge.misses, 1);
        assert!((edge.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ttl_expiry_causes_refetch() {
        let (origin, mut edge, key, mut rng) = setup();
        edge.pull(&key, &origin, SimTime::from_secs(0), &mut rng)
            .unwrap();
        let (_, s) = edge
            .pull(&key, &origin, SimTime::from_secs(31), &mut rng)
            .unwrap();
        assert!(!s.cache_hit, "entry older than TTL must be refetched");
        assert_eq!(edge.origin_bytes, 2000);
    }

    #[test]
    fn ttl_zero_never_caches() {
        let (origin, _, key, mut rng) = setup();
        let mut edge = EdgeServer::new(Region::Europe, SimDuration::ZERO);
        for i in 0..5 {
            let (_, s) = edge
                .pull(&key, &origin, SimTime::from_secs(i), &mut rng)
                .unwrap();
            assert!(!s.cache_hit, "TTL=0 is the Fig. 5 worst case");
        }
        assert_eq!(edge.misses, 5);
    }

    #[test]
    fn miss_latency_exceeds_hit_latency_on_average() {
        let (origin, mut edge, key, mut rng) = setup();
        let mut miss_total = 0.0;
        let mut hit_total = 0.0;
        let n = 200;
        for i in 0..n {
            edge.flush();
            let (_, m) = edge
                .pull(&key, &origin, SimTime::from_secs(i), &mut rng)
                .unwrap();
            let (_, h) = edge
                .pull(&key, &origin, SimTime::from_secs(i), &mut rng)
                .unwrap();
            miss_total += m.latency.as_secs_f64();
            hit_total += h.latency.as_secs_f64();
        }
        assert!(miss_total > hit_total);
    }

    #[test]
    fn unknown_object_is_none() {
        let (origin, mut edge, _, mut rng) = setup();
        let missing = ContentKey::Manifest {
            ca: CaId::from_name("nope"),
        };
        assert!(edge
            .pull(&missing, &origin, SimTime::ZERO, &mut rng)
            .is_none());
    }

    #[test]
    fn larger_objects_take_longer() {
        let mut origin = Origin::new();
        let ca = CaId::from_name("SizeCA");
        origin.publish_manifest(ca, vec![0u8; 10_000_000]); // 10 MB
        let small_ca = CaId::from_name("SmallCA");
        origin.publish_manifest(small_ca, vec![0u8; 100]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut edge = EdgeServer::new(Region::NorthAmerica, SimDuration::ZERO);
        let mut big = 0.0;
        let mut small = 0.0;
        for _ in 0..50 {
            big += edge
                .pull(
                    &ContentKey::Manifest { ca },
                    &origin,
                    SimTime::ZERO,
                    &mut rng,
                )
                .unwrap()
                .1
                .latency
                .as_secs_f64();
            small += edge
                .pull(
                    &ContentKey::Manifest { ca: small_ca },
                    &origin,
                    SimTime::ZERO,
                    &mut rng,
                )
                .unwrap()
                .1
                .latency
                .as_secs_f64();
        }
        assert!(big > small * 2.0, "10 MB must be much slower than 100 B");
    }
}
