//! CDN billing: tiered, per-region traffic pricing (paper §VII-C).
//!
//! The CA is the content provider; it pays the CDN operator for every byte
//! RAs pull. Prices follow the CloudFront volume-discount ladder in
//! [`crate::regions`].

use crate::regions::{Region, ALL_REGIONS, TIER_BOUNDS};
use std::collections::BTreeMap;

/// Per-request surcharge in USD (HTTPS request pricing, ~$0.75 per million).
pub const REQUEST_FEE_USD: f64 = 0.75e-6;

/// Accumulates one billing cycle's traffic and computes the CA's bill.
#[derive(Debug, Clone, Default)]
pub struct TrafficLedger {
    bytes: BTreeMap<Region, u64>,
    requests: BTreeMap<Region, u64>,
}

impl TrafficLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        TrafficLedger::default()
    }

    /// Records one download of `bytes` served in `region`.
    pub fn record(&mut self, region: Region, bytes: u64) {
        *self.bytes.entry(region).or_default() += bytes;
        *self.requests.entry(region).or_default() += 1;
    }

    /// Records `count` identical downloads at once (the aggregated fast path
    /// for the 230-million-RA cost simulations).
    pub fn record_bulk(&mut self, region: Region, bytes_each: u64, count: u64) {
        *self.bytes.entry(region).or_default() += bytes_each * count;
        *self.requests.entry(region).or_default() += count;
    }

    /// Total bytes across regions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.values().sum()
    }

    /// Total requests across regions.
    pub fn total_requests(&self) -> u64 {
        self.requests.values().sum()
    }

    /// Bytes served in one region.
    pub fn bytes_in(&self, region: Region) -> u64 {
        self.bytes.get(&region).copied().unwrap_or(0)
    }

    /// The bandwidth portion of the bill in USD (tiered, per region).
    pub fn bandwidth_cost_usd(&self) -> f64 {
        ALL_REGIONS
            .iter()
            .map(|r| tiered_cost_usd(*r, self.bytes_in(*r)))
            .sum()
    }

    /// The per-request portion of the bill in USD.
    pub fn request_cost_usd(&self) -> f64 {
        self.total_requests() as f64 * REQUEST_FEE_USD
    }

    /// The full bill. The paper's Fig. 6 counts bandwidth only (request
    /// fees are a separate line item), so both parts are exposed.
    pub fn total_cost_usd(&self, include_request_fees: bool) -> f64 {
        let mut c = self.bandwidth_cost_usd();
        if include_request_fees {
            c += self.request_cost_usd();
        }
        c
    }

    /// Resets for the next billing cycle.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.requests.clear();
    }
}

/// CloudFront-style *aggregate* tiering: the volume tier is determined by
/// total usage across all regions, and each slab is billed at a blend of the
/// regional rates weighted by each region's share of the traffic. This is
/// how the real price sheet measured tiers and is the model used for the
/// Fig. 6 / Table II bills.
pub fn aggregate_tiered_cost_usd(per_region_bytes: &[(Region, u64)]) -> f64 {
    const GB: f64 = 1e9;
    let total: u64 = per_region_bytes.iter().map(|(_, b)| b).sum();
    if total == 0 {
        return 0.0;
    }
    let shares: Vec<(Region, f64)> = per_region_bytes
        .iter()
        .map(|(r, b)| (*r, *b as f64 / total as f64))
        .collect();
    let blended_rate = |tier: usize| -> f64 {
        shares
            .iter()
            .map(|(r, s)| s * r.price_tiers_usd_per_gb()[tier])
            .sum()
    };
    let mut remaining = total;
    let mut prev_bound = 0u64;
    let mut cost = 0.0;
    for (i, bound) in TIER_BOUNDS.iter().enumerate() {
        let slab = (bound - prev_bound).min(remaining);
        cost += slab as f64 / GB * blended_rate(i);
        remaining -= slab;
        prev_bound = *bound;
        if remaining == 0 {
            return cost;
        }
    }
    cost + remaining as f64 / GB * blended_rate(6)
}

/// Applies the volume-discount ladder for one region.
pub fn tiered_cost_usd(region: Region, bytes: u64) -> f64 {
    const GB: f64 = 1e9;
    let prices = region.price_tiers_usd_per_gb();
    let mut remaining = bytes;
    let mut prev_bound = 0u64;
    let mut cost = 0.0;
    for (i, bound) in TIER_BOUNDS.iter().enumerate() {
        let tier_cap = bound - prev_bound;
        let in_tier = remaining.min(tier_cap);
        cost += in_tier as f64 / GB * prices[i];
        remaining -= in_tier;
        prev_bound = *bound;
        if remaining == 0 {
            return cost;
        }
    }
    cost + remaining as f64 / GB * prices[6]
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;
    const TB: u64 = 1000 * GB;

    #[test]
    fn first_tier_price() {
        // 1 TB in NA at $0.085/GB = $85.
        let c = tiered_cost_usd(Region::NorthAmerica, TB);
        assert!((c - 85.0).abs() < 1e-6, "got {c}");
    }

    #[test]
    fn crossing_a_tier_boundary() {
        // 20 TB NA: 10 TB @ .085 + 10 TB @ .080 = 850 + 800 = 1650.
        let c = tiered_cost_usd(Region::NorthAmerica, 20 * TB);
        assert!((c - 1650.0).abs() < 1e-6, "got {c}");
    }

    #[test]
    fn huge_volume_hits_cheapest_tier() {
        // 10 PB NA: marginal rate must be $0.020/GB.
        let base = tiered_cost_usd(Region::NorthAmerica, 10 * 1024 * TB);
        let plus = tiered_cost_usd(Region::NorthAmerica, 10 * 1024 * TB + GB);
        assert!((plus - base - 0.020).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_zero_cost() {
        assert_eq!(tiered_cost_usd(Region::Europe, 0), 0.0);
    }

    #[test]
    fn ledger_accumulates_per_region() {
        let mut l = TrafficLedger::new();
        l.record(Region::NorthAmerica, GB);
        l.record_bulk(Region::SouthAmerica, GB, 2);
        assert_eq!(l.total_bytes(), 3 * GB);
        assert_eq!(l.total_requests(), 3);
        // 1 GB NA @ .085 + 2 GB SA @ .250 = 0.085 + 0.5.
        assert!((l.bandwidth_cost_usd() - 0.585).abs() < 1e-9);
    }

    #[test]
    fn request_fees_optional() {
        let mut l = TrafficLedger::new();
        l.record_bulk(Region::NorthAmerica, 20, 1_000_000);
        let without = l.total_cost_usd(false);
        let with = l.total_cost_usd(true);
        assert!((with - without - 0.75).abs() < 1e-9, "1M requests = $0.75");
    }

    #[test]
    fn clear_resets() {
        let mut l = TrafficLedger::new();
        l.record(Region::Japan, GB);
        l.clear();
        assert_eq!(l.total_bytes(), 0);
        assert_eq!(l.bandwidth_cost_usd(), 0.0);
    }

    #[test]
    fn aggregate_tiering_cheaper_than_per_region() {
        // Splitting 40 TB across 4 regions per-region keeps everything in
        // tier 0; aggregate tiering pushes 30 TB into tier 1.
        let split = [
            (Region::NorthAmerica, 10 * TB),
            (Region::Europe, 10 * TB),
            (Region::AsiaPacific, 10 * TB),
            (Region::India, 10 * TB),
        ];
        let per_region: f64 = split.iter().map(|(r, b)| tiered_cost_usd(*r, *b)).sum();
        let aggregate = aggregate_tiered_cost_usd(&split);
        assert!(aggregate < per_region, "{aggregate} vs {per_region}");
    }

    #[test]
    fn aggregate_tiering_single_region_matches_ladder() {
        let only = [(Region::NorthAmerica, 20 * TB)];
        let agg = aggregate_tiered_cost_usd(&only);
        let ladder = tiered_cost_usd(Region::NorthAmerica, 20 * TB);
        assert!((agg - ladder).abs() < 1e-6);
    }

    #[test]
    fn aggregate_tiering_empty_is_zero() {
        assert_eq!(aggregate_tiered_cost_usd(&[]), 0.0);
        assert_eq!(aggregate_tiered_cost_usd(&[(Region::Japan, 0)]), 0.0);
    }

    #[test]
    fn monotonic_in_volume() {
        let mut prev = 0.0;
        for tb in [1, 5, 20, 100, 400, 900, 4000, 9000] {
            let c = tiered_cost_usd(Region::AsiaPacific, tb * TB);
            assert!(c > prev);
            prev = c;
        }
    }
}
