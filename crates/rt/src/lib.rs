//! # ritm-rt — a std-only readiness-based runtime
//!
//! The paper's middlebox/CDN deployment only pays off if one edge or RA
//! process can hold open connections from very many clients at once. The
//! blocking `TcpServer` in `ritm-proto` burns an OS thread per connection;
//! this crate provides the event-driven alternative the serving stack is
//! built on, using nothing outside `std` (the build environment has no
//! crates.io access, so `mio`/`tokio` are not options):
//!
//! * [`Reactor`] — readiness scheduling for `set_nonblocking` `std::net`
//!   sockets. `std` exposes no selector (`epoll`/`kqueue`), so readiness is
//!   discovered the only portable way: *attempt the non-blocking syscall*.
//!   A task whose I/O returns [`std::io::ErrorKind::WouldBlock`] parks its
//!   waker in the reactor; the executor's idle path periodically wakes all
//!   parked wakers (a level-triggered poll tick), each woken task
//!   re-attempts its syscall, and tasks that are still not ready simply
//!   park again. No readiness is ever *stored*, so no edge can be lost —
//!   the cost is one failed syscall per parked task per tick. The tick is
//!   **adaptive**: sub-millisecond while woken tasks make progress,
//!   decaying toward [`MAX_POLL_INTERVAL`] (~50ms) across consecutive
//!   no-progress sweeps, so a fleet of idle connections costs ~20 sweeps
//!   per second instead of ~2000 (see [`reactor`]).
//! * [`Executor`] / [`Handle`] — a small single- or dual-thread task
//!   executor with real [`std::task::Waker`]s (via [`std::task::Wake`]),
//!   so ordinary `async fn` connection handlers run unchanged. The thread
//!   budget is capped at 2: the point of the event-driven stack is that
//!   *connections* do not cost threads. One executor doubles as a shared
//!   [`Runtime`]: several servers (RA + CA + edge) spawn onto the same
//!   reactor/executor pair and together still cost ≤2 OS threads.
//! * [`codec::FrameReader`] / [`codec::FrameWriter`] — incremental codecs
//!   for the `u32 len ‖ body` envelope framing: decoding resumes across
//!   arbitrarily-split partial reads and encoding resumes across short
//!   writes, so one in-flight frame never blocks an OS thread.
//! * [`io`] — the adapter between the two: wraps a `WouldBlock`-signalling
//!   closure as a future that parks in the reactor.
//! * [`net`] — async `accept` / `read_some` / `write_all` over
//!   non-blocking `std::net` sockets, built on [`io`]; what `ritm-tls`
//!   uses to drive handshake engines as tasks.
//!
//! The crate is deliberately protocol-agnostic (it knows frame *lengths*,
//! not RITM envelopes); `ritm-proto` builds its `EventServer` and
//! pipelined `EventTransport` on top.

pub mod codec;
pub mod executor;
pub mod net;
pub mod pool;
pub mod reactor;

pub use codec::{FrameRead, FrameReader, FrameWrite, FrameWriter};
pub use executor::{Executor, Handle, Runtime};
pub use pool::BufPool;
pub use reactor::{Reactor, ReactorStats, DEFAULT_POLL_INTERVAL, MAX_POLL_INTERVAL};

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

/// One attempt at a non-blocking operation: either it completed with `T`,
/// or the underlying syscall said [`std::io::ErrorKind::WouldBlock`].
/// I/O *errors* are a completion (`Ready(Err(..))` in the typical usage),
/// not a reason to park.
#[derive(Debug)]
pub enum IoPoll<T> {
    /// The operation completed (successfully or with a terminal error the
    /// caller folded into `T`).
    Ready(T),
    /// The socket was not ready; park until the next readiness tick.
    WouldBlock,
}

/// Future returned by [`io`]: re-attempts `op` on every poll and parks in
/// the reactor while the socket is not ready.
pub struct IoFuture<F> {
    reactor: Arc<Reactor>,
    op: F,
    /// Whether this future has parked at least once — distinguishes a
    /// *new* park (activity: snap the adaptive tick back) from a woken
    /// task re-parking because its socket is still not ready (the
    /// no-progress case the idle backoff exists for).
    parked: bool,
}

impl<T, F> Future for IoFuture<F>
where
    F: FnMut() -> IoPoll<T> + Unpin,
{
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let this = self.get_mut();
        match (this.op)() {
            IoPoll::Ready(v) => {
                if this.parked {
                    // A readiness hit on a previously-parked task: real
                    // progress — keep the tick sub-millisecond.
                    this.reactor.note_activity();
                }
                Poll::Ready(v)
            }
            IoPoll::WouldBlock => {
                if !this.parked {
                    // First park = new I/O work arrived; snap the adaptive
                    // tick back so it is serviced promptly.
                    this.parked = true;
                    this.reactor.note_activity();
                }
                // Level-triggered: re-register on every miss. A tick that
                // fires between the failed syscall and this park is not a
                // lost wakeup — the next tick re-polls every parked task.
                this.reactor.park(cx.waker());
                Poll::Pending
            }
        }
    }
}

/// Adapts a non-blocking attempt into a future: `op` runs on every poll;
/// [`IoPoll::WouldBlock`] parks the task in `reactor` until the next
/// readiness tick.
pub fn io<T, F>(reactor: &Arc<Reactor>, op: F) -> IoFuture<F>
where
    F: FnMut() -> IoPoll<T> + Unpin,
{
    IoFuture {
        reactor: Arc::clone(reactor),
        op,
        parked: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    #[test]
    fn io_future_parks_until_ready() {
        let exec = Executor::new(1);
        let attempts = Arc::new(AtomicU32::new(0));
        let done = Arc::new(AtomicU32::new(0));
        {
            let reactor = exec.handle().reactor();
            let attempts = Arc::clone(&attempts);
            let done = Arc::clone(&done);
            exec.handle().spawn(async move {
                let v = io(&reactor, || {
                    // Not ready for the first few polls: the reactor's tick
                    // must keep re-offering readiness.
                    if attempts.fetch_add(1, Ordering::SeqCst) < 3 {
                        IoPoll::WouldBlock
                    } else {
                        IoPoll::Ready(7u32)
                    }
                })
                .await;
                done.store(v, Ordering::SeqCst);
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(done.load(Ordering::SeqCst), 7);
        assert!(attempts.load(Ordering::SeqCst) >= 4);
        exec.shutdown();
    }
}
