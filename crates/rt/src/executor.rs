//! A small executor: 1–2 worker threads, real wakers, reactor ticks.
//!
//! Tasks are `async` blocks boxed behind an [`std::task::Wake`]-based
//! waker. The run queue is a mutex-protected deque with a condvar; when
//! the queue is empty but tasks are parked on I/O, workers wait with a
//! timeout and wake every parked task on expiry — the reactor's
//! level-triggered readiness tick rides the executor's idle path, so the
//! whole runtime costs exactly the configured worker threads and nothing
//! more. The wait timeout is the reactor's *adaptive* sweep interval
//! (see [`crate::reactor`]): sub-millisecond while woken tasks make
//! progress, decaying toward ~50ms across consecutive no-progress sweeps.
//!
//! One executor is also one **shared runtime**: any number of servers can
//! spawn their accept loops and connections onto the same [`Handle`]
//! ([`Runtime`] is the intent-revealing alias), so an RA, a CA, and a CDN
//! edge together still cost at most [`MAX_WORKERS`] OS threads.

use crate::reactor::{Reactor, DEFAULT_POLL_INTERVAL};
use std::collections::VecDeque;
use std::future::Future;
use std::panic::AssertUnwindSafe;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on worker threads. The event-driven stack's contract is that
/// concurrency comes from multiplexing, not threads; two workers keep one
/// free to run service logic while the other ticks the reactor.
pub const MAX_WORKERS: usize = 2;

/// Intent-revealing alias for an [`Executor`] used as one process-wide
/// runtime shared by several listeners (RA + CA + edge on one
/// reactor/executor pair).
pub type Runtime = Executor;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct Task {
    /// `Some` while the task is live; taken to `None` on completion (or a
    /// panicked poll). The mutex also serializes polls of one task across
    /// workers.
    future: Mutex<Option<BoxFuture>>,
    /// Whether the task is already in the run queue (collapses redundant
    /// wakes into one queue entry).
    queued: AtomicBool,
    shared: Arc<Shared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            let shared = Arc::clone(&self.shared);
            shared.enqueue(self);
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    reactor: Arc<Reactor>,
    /// Live (spawned, not yet completed) tasks.
    live: AtomicUsize,
    shutdown: AtomicBool,
    /// Base readiness-tick interval; the reactor's idle streak scales the
    /// actual wait (see [`Reactor::sweep_interval`]).
    poll_interval: Duration,
    /// Worker threads this executor was started with.
    worker_count: usize,
}

impl Shared {
    fn enqueue(&self, task: Arc<Task>) {
        self.queue.lock().expect("run queue lock").push_back(task);
        self.available.notify_one();
    }
}

/// A cloneable handle for spawning tasks and reaching the reactor —
/// what long-lived tasks (e.g. an accept loop) capture to spawn more.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// Spawns `future` onto the executor. Tasks spawned after
    /// [`Executor::shutdown`] began are still run to completion — shutdown
    /// drains, it does not abort.
    pub fn spawn(&self, future: impl Future<Output = ()> + Send + 'static) {
        self.shared.live.fetch_add(1, Ordering::SeqCst);
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            queued: AtomicBool::new(true),
            shared: Arc::clone(&self.shared),
        });
        self.shared.enqueue(task);
    }

    /// The reactor tasks park their wakers in (see [`crate::io`]).
    pub fn reactor(&self) -> Arc<Reactor> {
        Arc::clone(&self.shared.reactor)
    }

    /// Live (spawned, not yet completed) task count.
    pub fn live_tasks(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// Worker threads backing this handle's executor — what a server
    /// spawned onto a shared runtime reports as its thread budget.
    pub fn thread_count(&self) -> usize {
        self.shared.worker_count
    }
}

/// The executor: owns the worker threads.
pub struct Executor {
    handle: Handle,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Starts an executor with `threads` workers, clamped to
    /// `1..=`[`MAX_WORKERS`], using the default readiness tick.
    pub fn new(threads: usize) -> Self {
        Self::with_poll_interval(threads, DEFAULT_POLL_INTERVAL)
    }

    /// Starts an executor with an explicit readiness-tick interval
    /// (shorter = lower I/O latency, more failed syscalls while idle).
    pub fn with_poll_interval(threads: usize, poll_interval: Duration) -> Self {
        let worker_count = threads.clamp(1, MAX_WORKERS);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            reactor: Arc::new(Reactor::new()),
            live: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            poll_interval,
            worker_count,
        });
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker(&shared))
            })
            .collect();
        Executor {
            handle: Handle { shared },
            workers,
        }
    }

    /// The spawning handle.
    pub fn handle(&self) -> Handle {
        self.handle.clone()
    }

    /// Worker thread count.
    pub fn thread_count(&self) -> usize {
        self.workers.len()
    }

    /// Drains and stops: waits until every live task has completed, then
    /// joins the workers. Tasks parked on I/O keep receiving readiness
    /// ticks throughout, so a task that exits when its `closing` flag is
    /// set (the [`IoPoll::Ready`](crate::IoPoll::Ready) path) observes the
    /// flag within one tick. A task that never completes makes this hang —
    /// the caller owns its tasks' termination condition.
    pub fn shutdown(self) {
        self.handle.shared.shutdown.store(true, Ordering::SeqCst);
        self.handle.shared.available.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// What a worker decided to do after draining or waiting on the queue.
enum Step {
    Run(Arc<Task>),
    /// Run a readiness tick; carries the interval the worker waited
    /// (fed back into the reactor's sweep accounting).
    Sweep(Duration),
}

fn worker(shared: &Arc<Shared>) {
    // Reused across sweeps: this buffer and the reactor's park list swap
    // roles each tick, so an idle-but-parked runtime allocates nothing.
    let mut sweep_buf: Vec<Waker> = Vec::new();
    loop {
        let step: Step = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(t) = queue.pop_front() {
                    break Step::Run(t);
                }
                if shared.shutdown.load(Ordering::SeqCst) && shared.live.load(Ordering::SeqCst) == 0
                {
                    return;
                }
                if shared.reactor.waiters() > 0 || shared.shutdown.load(Ordering::SeqCst) {
                    // Timed wait: on expiry run a readiness tick (and
                    // re-observe shutdown promptly). The wait adapts:
                    // consecutive no-progress sweeps stretch it toward
                    // MAX_POLL_INTERVAL; any readiness hit or new park
                    // snaps it back to the configured base.
                    let interval = shared.reactor.sweep_interval(shared.poll_interval);
                    let (guard, _timeout) = shared
                        .available
                        .wait_timeout(queue, interval)
                        .unwrap_or_else(PoisonError::into_inner);
                    queue = guard;
                    if queue.is_empty() && shared.reactor.waiters() > 0 {
                        break Step::Sweep(interval);
                    }
                } else {
                    queue = shared
                        .available
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        };
        match step {
            Step::Run(task) => run_task(shared, task),
            Step::Sweep(interval) => {
                // One level-triggered tick: every parked task re-attempts
                // its syscall. Wakers re-enqueue through the normal path;
                // a woken task that finds its socket ready (or a task
                // parking for the first time) calls `note_activity`, which
                // resets the streak `note_sweep` is lengthening here.
                shared.reactor.note_sweep(interval);
                shared.reactor.take_parked_into(&mut sweep_buf);
                for waker in sweep_buf.drain(..) {
                    waker.wake();
                }
            }
        }
    }
}

fn run_task(shared: &Arc<Shared>, task: Arc<Task>) {
    // Clear `queued` before polling so a wake arriving mid-poll re-queues
    // the task rather than being lost.
    task.queued.store(false, Ordering::Release);
    let mut slot = task.future.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(future) = slot.as_mut() else {
        return; // completed by an earlier queue entry
    };
    let waker = Waker::from(Arc::clone(&task));
    let mut cx = Context::from_waker(&waker);
    // A panicking task must cost only itself, not the worker: catch the
    // unwind and retire the task. The guard outlives the catch, so the
    // slot mutex is never poisoned by the panic.
    let polled = std::panic::catch_unwind(AssertUnwindSafe(|| future.as_mut().poll(&mut cx)));
    match polled {
        Ok(Poll::Pending) => {}
        Ok(Poll::Ready(())) | Err(_) => {
            *slot = None;
            drop(slot);
            shared.live.fetch_sub(1, Ordering::SeqCst);
            // A draining shutdown may be waiting on live == 0.
            shared.available.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn spawned_tasks_run_and_shutdown_drains() {
        let exec = Executor::new(2);
        assert_eq!(exec.thread_count(), 2);
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            exec.handle().spawn(async move {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        exec.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn thread_budget_is_capped() {
        let exec = Executor::new(64);
        assert_eq!(exec.thread_count(), MAX_WORKERS);
        exec.shutdown();
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let exec = Executor::new(1);
        let ran = Arc::new(AtomicU32::new(0));
        exec.handle().spawn(async {
            panic!("task boom");
        });
        {
            let ran = Arc::clone(&ran);
            exec.handle().spawn(async move {
                ran.store(1, Ordering::SeqCst);
            });
        }
        exec.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn handle_reports_the_shared_runtime_thread_budget() {
        let exec = Executor::new(2);
        assert_eq!(exec.handle().thread_count(), 2);
        let single = Executor::new(1);
        assert_eq!(single.handle().thread_count(), 1);
        exec.shutdown();
        single.shutdown();
    }

    #[test]
    fn idle_parked_task_backs_off_the_tick_and_activity_snaps_back() {
        let exec = Executor::new(1);
        let reactor = exec.handle().reactor();
        let stop = Arc::new(AtomicBool::new(false));
        {
            let reactor = Arc::clone(&reactor);
            let stop = Arc::clone(&stop);
            exec.handle().spawn(async move {
                crate::io(&reactor, move || {
                    if stop.load(Ordering::SeqCst) {
                        crate::IoPoll::Ready(())
                    } else {
                        crate::IoPoll::WouldBlock
                    }
                })
                .await;
            });
        }
        // Long enough for the streak to climb 500µs → 50ms and take a few
        // fully-backed-off sweeps.
        std::thread::sleep(Duration::from_millis(400));
        let stats = reactor.stats();
        assert!(
            stats.backoff_sweeps > 0,
            "idle decay never reached the cap: {stats:?}"
        );
        assert!(
            stats.last_interval_micros >= 10_000,
            "idle sweeps still sub-10ms: {stats:?}"
        );
        // A genuinely idle runtime must sweep ~20×/s, not ~2000×/s.
        assert!(
            stats.sweeps < 100,
            "an idle runtime swept {} times in 400ms",
            stats.sweeps
        );
        stop.store(true, Ordering::SeqCst);
        exec.shutdown();
        // The readiness hit on the parked task counts as activity.
        assert!(reactor.stats().activity_marks >= 2);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let exec = Executor::new(2);
        let counter = Arc::new(AtomicU32::new(0));
        {
            let handle = exec.handle();
            let counter = Arc::clone(&counter);
            exec.handle().spawn(async move {
                for _ in 0..4 {
                    let counter = Arc::clone(&counter);
                    handle.spawn(async move {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        exec.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
