//! Incremental codecs for `u32 len ‖ body` frame envelopes.
//!
//! The blocking transports read a frame with `read_exact` — fine when the
//! thread may sleep in the kernel, useless on a non-blocking socket where
//! any read can return a prefix of a frame (or `WouldBlock` mid-prefix).
//! [`FrameReader`] accumulates bytes across any interleaving of partial
//! reads and not-ready signals and emits whole frames (length prefix
//! included, byte-identical to what the peer encoded); [`FrameWriter`]
//! drains queued frames across short writes and `WouldBlock`. Neither
//! knows anything about what the body means — framing only.
//!
//! Both ends are built not to allocate per frame on a steady-state
//! connection: the reader keeps its buffer across frames (copying small
//! frames out into pooled buffers, handing off oversized ones so a single
//! large frame never pins its capacity — see
//! [`DEFAULT_RETAIN_CAPACITY`]), and the writer queues *segments* — owned
//! frames, or an inline header plus an `Arc`-shared body that is written
//! in place via vectored I/O and never copied. Drained owned segments are
//! recycled into a [`BufPool`] when one is attached.

use crate::pool::BufPool;
use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::sync::Arc;

/// Length-prefix size: a big-endian `u32` body length.
pub const PREFIX_LEN: usize = 4;

/// Capacity (bytes) a [`FrameReader`] retains across frames. A completed
/// frame at most this large is copied out and the buffer kept warm; a
/// larger frame's buffer is handed off to the caller instead, so one
/// megabyte `DeltaPage` does not pin a megabyte per idle connection.
pub const DEFAULT_RETAIN_CAPACITY: usize = 64 * 1024;

/// Longest header [`FrameWriter::queue_shared`] accepts (inline storage):
/// `u32 len ‖ version ‖ u32 request-id` is 9 bytes; a little slack keeps
/// the constant honest if a header grows a field.
pub const MAX_SHARED_HEADER_LEN: usize = 12;

/// Most segments one vectored write gathers.
const MAX_IOVECS: usize = 8;

/// Outcome of one [`FrameReader::poll_frame`] attempt.
#[derive(Debug)]
pub enum FrameRead {
    /// One whole frame (length prefix included).
    Frame(Vec<u8>),
    /// The socket is not ready; resume later — partial progress is kept.
    WouldBlock,
    /// Clean end of stream at a frame boundary.
    Eof,
    /// The stream failed: an I/O error, EOF mid-frame, or a length prefix
    /// past the reader's cap.
    Err(std::io::Error),
}

/// Incremental frame decoder: feed it a (non-blocking) reader as often as
/// readiness allows; it resumes exactly where the last attempt stopped.
#[derive(Debug)]
pub struct FrameReader {
    max_body_len: usize,
    /// The current frame's buffer, sized to what is known of the frame so
    /// far (the prefix, then prefix + body); reads land directly in its
    /// tail — no intermediate copy, no per-poll scratch to zero.
    buf: Vec<u8>,
    /// Bytes of `buf` actually filled.
    filled: usize,
    /// Frames at most this large are copied out and `buf` retained;
    /// larger frames take `buf` with them (the shrink policy).
    retain_capacity: usize,
    /// Source of the copied-out frame buffers, when attached.
    pool: Option<BufPool>,
}

impl FrameReader {
    /// A reader that rejects frames whose body length exceeds
    /// `max_body_len` (before allocating for the body).
    pub fn new(max_body_len: usize) -> Self {
        FrameReader {
            max_body_len,
            buf: Vec::new(),
            filled: 0,
            retain_capacity: DEFAULT_RETAIN_CAPACITY,
            pool: None,
        }
    }

    /// Like [`new`](FrameReader::new), drawing the buffers it hands out
    /// from `pool` (return them with [`BufPool::put`] once decoded to
    /// close the loop).
    pub fn with_pool(max_body_len: usize, pool: BufPool) -> Self {
        FrameReader {
            pool: Some(pool),
            ..FrameReader::new(max_body_len)
        }
    }

    /// Bytes of the in-progress frame buffered so far (0 at boundaries).
    pub fn buffered(&self) -> usize {
        self.filled
    }

    /// Capacity (bytes) the reader currently pins between frames. Bounded
    /// by [`DEFAULT_RETAIN_CAPACITY`] at frame boundaries however large
    /// past frames were.
    pub fn resident_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Attempts to complete the next frame from `io`. Safe to call again
    /// after [`FrameRead::WouldBlock`] — progress is kept across calls.
    /// After [`FrameRead::Err`] the stream is unusable (the frame boundary
    /// is lost).
    pub fn poll_frame(&mut self, io: &mut impl Read) -> FrameRead {
        loop {
            // Total bytes this frame needs, as far as the prefix reveals.
            let target = if self.filled < PREFIX_LEN {
                PREFIX_LEN
            } else {
                let len = u32::from_be_bytes(self.buf[..PREFIX_LEN].try_into().expect("4 bytes"))
                    as usize;
                if len > self.max_body_len {
                    return FrameRead::Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        "frame length prefix exceeds cap",
                    ));
                }
                PREFIX_LEN + len
            };
            if self.filled >= PREFIX_LEN && self.filled == target {
                self.filled = 0;
                let frame = if self.buf.capacity() > self.retain_capacity {
                    // Oversized frame: hand the grown buffer off with it
                    // and start small again, rather than pinning the
                    // capacity on an idle connection forever.
                    std::mem::take(&mut self.buf)
                } else {
                    let mut out = match &self.pool {
                        Some(pool) => pool.get(),
                        None => Vec::new(),
                    };
                    out.extend_from_slice(&self.buf[..target]);
                    self.buf.clear();
                    out
                };
                return FrameRead::Frame(frame);
            }
            if self.buf.len() != target {
                self.buf.resize(target, 0);
            }
            match io.read(&mut self.buf[self.filled..target]) {
                Ok(0) => {
                    return if self.filled == 0 {
                        FrameRead::Eof
                    } else {
                        FrameRead::Err(std::io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "stream ended mid-frame",
                        ))
                    };
                }
                Ok(n) => self.filled += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return FrameRead::WouldBlock,
                Err(e) => return FrameRead::Err(e),
            }
        }
    }
}

/// Outcome of one [`FrameWriter::poll_write`] attempt.
#[derive(Debug)]
pub enum FrameWrite {
    /// Every queued frame is fully on the wire.
    Done,
    /// The socket is not ready; resume later — the write offset is kept.
    WouldBlock,
    /// The stream failed mid-frame.
    Err(std::io::Error),
}

/// One queued run of bytes: a whole owned frame, a shared response body,
/// or a small inline header stamped in front of one.
#[derive(Debug)]
enum Seg {
    Owned(Vec<u8>),
    Shared(Arc<[u8]>),
    Inline {
        len: u8,
        bytes: [u8; MAX_SHARED_HEADER_LEN],
    },
}

impl Seg {
    fn as_slice(&self) -> &[u8] {
        match self {
            Seg::Owned(v) => v,
            Seg::Shared(b) => b,
            Seg::Inline { len, bytes } => &bytes[..*len as usize],
        }
    }
}

/// Incremental frame encoder-side: queue whole frames, drain them across
/// short writes and not-ready signals. Adjacent segments drain through one
/// vectored write, so a header + shared body go out in a single syscall
/// without a coalescing copy.
#[derive(Debug, Default)]
pub struct FrameWriter {
    queue: VecDeque<Seg>,
    /// Bytes of the front segment already written.
    offset: usize,
    written: u64,
    /// Queued-but-unwritten bytes across all frames (the backpressure
    /// signal: a peer that stops reading makes this grow).
    buffered: usize,
    /// Where fully-drained owned buffers are recycled, when attached.
    pool: Option<BufPool>,
}

impl FrameWriter {
    /// An empty writer.
    pub fn new() -> Self {
        FrameWriter::default()
    }

    /// An empty writer recycling fully-written owned frames into `pool`.
    pub fn with_pool(pool: BufPool) -> Self {
        FrameWriter {
            pool: Some(pool),
            ..FrameWriter::default()
        }
    }

    /// Queues one encoded frame (length prefix included) for writing.
    pub fn queue(&mut self, frame: Vec<u8>) {
        self.buffered += frame.len();
        self.queue.push_back(Seg::Owned(frame));
    }

    /// Queues a frame split as `header ‖ body`, where the body bytes are
    /// shared: they are written from the `Arc` in place — one encoded
    /// response serves any number of connections without a copy per
    /// connection. The header (at most [`MAX_SHARED_HEADER_LEN`] bytes —
    /// the per-connection part: length, version, request id) is stored
    /// inline.
    ///
    /// # Panics
    ///
    /// Panics if `header` exceeds [`MAX_SHARED_HEADER_LEN`].
    pub fn queue_shared(&mut self, header: &[u8], body: Arc<[u8]>) {
        assert!(
            header.len() <= MAX_SHARED_HEADER_LEN,
            "shared-frame header exceeds inline storage"
        );
        self.buffered += header.len() + body.len();
        if !header.is_empty() {
            let mut bytes = [0u8; MAX_SHARED_HEADER_LEN];
            bytes[..header.len()].copy_from_slice(header);
            self.queue.push_back(Seg::Inline {
                len: header.len() as u8,
                bytes,
            });
        }
        self.queue.push_back(Seg::Shared(body));
    }

    /// Whether any queued bytes remain unwritten.
    pub fn pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Queued bytes not yet handed to the OS — what a server caps to shed
    /// connections whose peers stop reading.
    pub fn buffered_bytes(&self) -> usize {
        self.buffered
    }

    /// Total bytes fully handed to the OS so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Pushes queued bytes into `io` until done or not ready. Safe to call
    /// again after [`FrameWrite::WouldBlock`] — the offset into the
    /// current segment is kept. Up to `MAX_IOVECS` queued segments go
    /// out per vectored write.
    pub fn poll_write(&mut self, io: &mut impl Write) -> FrameWrite {
        loop {
            // Retire fully-written front segments (recycling owned
            // buffers) so the gather below always starts mid-segment or
            // at a fresh one.
            while self
                .queue
                .front()
                .is_some_and(|seg| seg.as_slice().len() <= self.offset)
            {
                let seg = self.queue.pop_front().expect("front checked");
                self.offset = 0;
                self.recycle(seg);
            }
            if self.queue.is_empty() {
                return FrameWrite::Done;
            }
            let result = {
                let mut slices: [IoSlice; MAX_IOVECS] = std::array::from_fn(|_| IoSlice::new(&[]));
                let mut count = 0;
                for (i, seg) in self.queue.iter().take(MAX_IOVECS).enumerate() {
                    let s = seg.as_slice();
                    slices[count] = IoSlice::new(if i == 0 { &s[self.offset..] } else { s });
                    count += 1;
                }
                io.write_vectored(&slices[..count])
            };
            match result {
                Ok(0) => {
                    return FrameWrite::Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    self.written += n as u64;
                    self.buffered -= n;
                    self.advance(n);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return FrameWrite::WouldBlock,
                Err(e) => return FrameWrite::Err(e),
            }
        }
    }

    /// Consumes `n` freshly-written bytes off the front of the queue,
    /// popping (and recycling) every segment the write fully covered.
    fn advance(&mut self, mut n: usize) {
        while n > 0 {
            let front_len = self
                .queue
                .front()
                .expect("wrote more bytes than were queued")
                .as_slice()
                .len();
            let remaining = front_len - self.offset;
            if n < remaining {
                self.offset += n;
                return;
            }
            n -= remaining;
            self.offset = 0;
            let seg = self.queue.pop_front().expect("front checked");
            self.recycle(seg);
        }
    }

    fn recycle(&mut self, seg: Seg) {
        if let (Seg::Owned(buf), Some(pool)) = (seg, &self.pool) {
            pool.put(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(body: &[u8]) -> Vec<u8> {
        let mut f = (body.len() as u32).to_be_bytes().to_vec();
        f.extend_from_slice(body);
        f
    }

    /// A reader serving a script of byte chunks interleaved with
    /// `WouldBlock` signals (`None` entries).
    struct Scripted {
        script: VecDeque<Option<Vec<u8>>>,
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.script.pop_front() {
                Some(Some(bytes)) => {
                    assert!(bytes.len() <= buf.len(), "script chunk exceeds ask");
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(None) => Err(ErrorKind::WouldBlock.into()),
                None => Ok(0), // EOF
            }
        }
    }

    #[test]
    fn one_byte_at_a_time_with_wouldblock_between_every_byte() {
        let frames = [frame(b"hello"), frame(b""), frame(&[0xABu8; 300])];
        let all: Vec<u8> = frames.concat();
        let mut script: VecDeque<Option<Vec<u8>>> = VecDeque::new();
        for b in &all {
            script.push_back(None);
            script.push_back(Some(vec![*b]));
        }
        let mut io = Scripted { script };
        let mut reader = FrameReader::new(1 << 20);
        let mut out = Vec::new();
        loop {
            match reader.poll_frame(&mut io) {
                FrameRead::Frame(f) => out.push(f),
                FrameRead::WouldBlock => continue,
                FrameRead::Eof => break,
                FrameRead::Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(out, frames);
    }

    #[test]
    fn eof_mid_frame_is_an_error_not_a_clean_end() {
        let mut whole = frame(b"truncated");
        whole.truncate(whole.len() - 2);
        let mut io = Scripted {
            script: whole.iter().map(|b| Some(vec![*b])).collect(),
        };
        let mut reader = FrameReader::new(1 << 20);
        loop {
            match reader.poll_frame(&mut io) {
                FrameRead::Err(e) => {
                    assert_eq!(e.kind(), ErrorKind::UnexpectedEof);
                    break;
                }
                FrameRead::Frame(_) | FrameRead::Eof => panic!("must error"),
                FrameRead::WouldBlock => continue,
            }
        }
    }

    #[test]
    fn oversized_prefix_is_rejected_before_body_allocation() {
        let mut io = Scripted {
            script: VecDeque::from([Some((u32::MAX).to_be_bytes().to_vec())]),
        };
        let mut reader = FrameReader::new(1 << 20);
        match reader.poll_frame(&mut io) {
            FrameRead::Err(e) => assert_eq!(e.kind(), ErrorKind::InvalidData),
            other => panic!("expected error, got {other:?}"),
        }
    }

    /// Splits frames into the prefix-then-body chunks the reader asks
    /// for (the scripted reader never over-delivers).
    fn scripted(frames: &[Vec<u8>]) -> Scripted {
        let mut script = VecDeque::new();
        for f in frames {
            script.push_back(Some(f[..PREFIX_LEN].to_vec()));
            if f.len() > PREFIX_LEN {
                script.push_back(Some(f[PREFIX_LEN..].to_vec()));
            }
        }
        Scripted { script }
    }

    #[test]
    fn reader_retains_small_buffers_and_sheds_large_ones() {
        let small = frame(&[1u8; 100]);
        let large = frame(&vec![2u8; DEFAULT_RETAIN_CAPACITY + 1]);
        let mut io = scripted(&[small.clone(), small.clone(), large.clone(), small.clone()]);
        let mut reader = FrameReader::new(1 << 24);
        let mut out = Vec::new();
        loop {
            match reader.poll_frame(&mut io) {
                FrameRead::Frame(f) => out.push(f),
                FrameRead::WouldBlock => continue,
                FrameRead::Eof => break,
                FrameRead::Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(out, vec![small.clone(), small.clone(), large, small]);
        // The megagap frame took its buffer with it; at the boundary the
        // reader pins at most a small frame's worth again.
        assert!(
            reader.resident_capacity() <= DEFAULT_RETAIN_CAPACITY,
            "resident {} exceeds retain cap",
            reader.resident_capacity()
        );
    }

    #[test]
    fn pooled_reader_recycles_frame_buffers() {
        let pool = BufPool::default();
        let f = frame(&[9u8; 50]);
        let mut io = scripted(&[f.clone(), f.clone()]);
        let mut reader = FrameReader::with_pool(1 << 20, pool.clone());
        let FrameRead::Frame(first) = reader.poll_frame(&mut io) else {
            panic!("expected a frame");
        };
        assert_eq!(first, f);
        let cap = first.capacity();
        pool.put(first);
        let FrameRead::Frame(second) = reader.poll_frame(&mut io) else {
            panic!("expected a frame");
        };
        assert_eq!(second, f);
        assert_eq!(second.capacity(), cap, "second frame reused the buffer");
        assert_eq!(pool.pooled(), 0);
    }

    /// A writer accepting at most `cap` bytes per call, interleaving
    /// `WouldBlock` on a stride.
    struct Dribble {
        accepted: Vec<u8>,
        cap: usize,
        calls: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls += 1;
            if self.calls.is_multiple_of(3) {
                return Err(ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.cap);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// A writer with a real `write_vectored`, accepting at most `cap`
    /// bytes per call across however many slices that spans — exercises
    /// the multi-segment advance accounting.
    struct Gather {
        accepted: Vec<u8>,
        cap: usize,
    }

    impl Write for Gather {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.write_vectored(&[IoSlice::new(buf)])
        }

        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            let mut left = self.cap;
            let mut n = 0;
            for b in bufs {
                let take = b.len().min(left);
                self.accepted.extend_from_slice(&b[..take]);
                n += take;
                left -= take;
                if left == 0 {
                    break;
                }
            }
            Ok(n)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_and_wouldblock_resume_to_identical_bytes() {
        let frames = [frame(b"alpha"), frame(&[7u8; 129]), frame(b"")];
        let mut writer = FrameWriter::new();
        for f in &frames {
            writer.queue(f.clone());
        }
        let mut io = Dribble {
            accepted: Vec::new(),
            cap: 2,
            calls: 0,
        };
        loop {
            match writer.poll_write(&mut io) {
                FrameWrite::Done => break,
                FrameWrite::WouldBlock => continue,
                FrameWrite::Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(io.accepted, frames.concat());
        assert_eq!(writer.written(), frames.concat().len() as u64);
        assert!(!writer.pending());
        assert_eq!(writer.buffered_bytes(), 0);
    }

    #[test]
    fn buffered_bytes_tracks_the_unwritten_backlog() {
        let mut writer = FrameWriter::new();
        writer.queue(frame(&[1u8; 10]));
        writer.queue(frame(&[2u8; 6]));
        assert_eq!(writer.buffered_bytes(), 14 + 10);
        let mut io = Dribble {
            accepted: Vec::new(),
            cap: 5,
            calls: 0,
        };
        // One partial drain: the backlog shrinks by exactly what the OS
        // accepted, across frame boundaries.
        let _ = writer.poll_write(&mut io);
        assert_eq!(writer.buffered_bytes(), 24 - io.accepted.len());
    }

    #[test]
    fn shared_bodies_interleave_with_owned_frames_byte_identically() {
        let body: Arc<[u8]> = Arc::from(&[0xCDu8; 200][..]);
        let mut header = ((body.len() + 1) as u32).to_be_bytes().to_vec();
        header.push(1); // version byte, part of the frame body
        let owned = frame(b"plain");
        let mut writer = FrameWriter::new();
        writer.queue(owned.clone());
        writer.queue_shared(&header, Arc::clone(&body));
        writer.queue(owned.clone());
        assert_eq!(
            writer.buffered_bytes(),
            2 * owned.len() + header.len() + body.len()
        );
        let mut expected = owned.clone();
        expected.extend_from_slice(&header);
        expected.extend_from_slice(&body);
        expected.extend_from_slice(&owned);
        // Once through a dribbling scalar writer...
        let mut io = Dribble {
            accepted: Vec::new(),
            cap: 3,
            calls: 0,
        };
        loop {
            match writer.poll_write(&mut io) {
                FrameWrite::Done => break,
                FrameWrite::WouldBlock => continue,
                FrameWrite::Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(io.accepted, expected);
        assert_eq!(writer.buffered_bytes(), 0);
        // ...and once through a genuinely vectored one.
        let mut writer = FrameWriter::new();
        writer.queue(owned.clone());
        writer.queue_shared(&header, Arc::clone(&body));
        writer.queue(owned);
        let mut io = Gather {
            accepted: Vec::new(),
            cap: 7,
        };
        loop {
            match writer.poll_write(&mut io) {
                FrameWrite::Done => break,
                FrameWrite::WouldBlock => continue,
                FrameWrite::Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(io.accepted, expected);
        // The drained queue dropped its clone: the body was shared, not
        // copied.
        assert_eq!(Arc::strong_count(&body), 1);
    }

    #[test]
    fn drained_owned_frames_are_recycled_into_the_pool() {
        let pool = BufPool::default();
        let mut writer = FrameWriter::with_pool(pool.clone());
        writer.queue(frame(&[3u8; 40]));
        writer.queue(frame(&[4u8; 40]));
        let mut io = Gather {
            accepted: Vec::new(),
            cap: usize::MAX,
        };
        loop {
            match writer.poll_write(&mut io) {
                FrameWrite::Done => break,
                FrameWrite::WouldBlock => continue,
                FrameWrite::Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(pool.pooled(), 2, "both drained frames returned to pool");
    }
}
