//! Incremental codecs for `u32 len ‖ body` frame envelopes.
//!
//! The blocking transports read a frame with `read_exact` — fine when the
//! thread may sleep in the kernel, useless on a non-blocking socket where
//! any read can return a prefix of a frame (or `WouldBlock` mid-prefix).
//! [`FrameReader`] accumulates bytes across any interleaving of partial
//! reads and not-ready signals and emits whole frames (length prefix
//! included, byte-identical to what the peer encoded); [`FrameWriter`]
//! drains queued frames across short writes and `WouldBlock`. Neither
//! knows anything about what the body means — framing only.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};

/// Length-prefix size: a big-endian `u32` body length.
pub const PREFIX_LEN: usize = 4;

/// Outcome of one [`FrameReader::poll_frame`] attempt.
#[derive(Debug)]
pub enum FrameRead {
    /// One whole frame (length prefix included).
    Frame(Vec<u8>),
    /// The socket is not ready; resume later — partial progress is kept.
    WouldBlock,
    /// Clean end of stream at a frame boundary.
    Eof,
    /// The stream failed: an I/O error, EOF mid-frame, or a length prefix
    /// past the reader's cap.
    Err(std::io::Error),
}

/// Incremental frame decoder: feed it a (non-blocking) reader as often as
/// readiness allows; it resumes exactly where the last attempt stopped.
#[derive(Debug)]
pub struct FrameReader {
    max_body_len: usize,
    /// The current frame's buffer, sized to what is known of the frame so
    /// far (the prefix, then prefix + body); reads land directly in its
    /// tail — no intermediate copy, no per-poll scratch to zero.
    buf: Vec<u8>,
    /// Bytes of `buf` actually filled.
    filled: usize,
}

impl FrameReader {
    /// A reader that rejects frames whose body length exceeds
    /// `max_body_len` (before allocating for the body).
    pub fn new(max_body_len: usize) -> Self {
        FrameReader {
            max_body_len,
            buf: Vec::new(),
            filled: 0,
        }
    }

    /// Bytes of the in-progress frame buffered so far (0 at boundaries).
    pub fn buffered(&self) -> usize {
        self.filled
    }

    /// Attempts to complete the next frame from `io`. Safe to call again
    /// after [`FrameRead::WouldBlock`] — progress is kept across calls.
    /// After [`FrameRead::Err`] the stream is unusable (the frame boundary
    /// is lost).
    pub fn poll_frame(&mut self, io: &mut impl Read) -> FrameRead {
        loop {
            // Total bytes this frame needs, as far as the prefix reveals.
            let target = if self.filled < PREFIX_LEN {
                PREFIX_LEN
            } else {
                let len = u32::from_be_bytes(self.buf[..PREFIX_LEN].try_into().expect("4 bytes"))
                    as usize;
                if len > self.max_body_len {
                    return FrameRead::Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        "frame length prefix exceeds cap",
                    ));
                }
                PREFIX_LEN + len
            };
            if self.filled >= PREFIX_LEN && self.filled == target {
                self.filled = 0;
                return FrameRead::Frame(std::mem::take(&mut self.buf));
            }
            if self.buf.len() != target {
                self.buf.resize(target, 0);
            }
            match io.read(&mut self.buf[self.filled..target]) {
                Ok(0) => {
                    return if self.filled == 0 {
                        FrameRead::Eof
                    } else {
                        FrameRead::Err(std::io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "stream ended mid-frame",
                        ))
                    };
                }
                Ok(n) => self.filled += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return FrameRead::WouldBlock,
                Err(e) => return FrameRead::Err(e),
            }
        }
    }
}

/// Outcome of one [`FrameWriter::poll_write`] attempt.
#[derive(Debug)]
pub enum FrameWrite {
    /// Every queued frame is fully on the wire.
    Done,
    /// The socket is not ready; resume later — the write offset is kept.
    WouldBlock,
    /// The stream failed mid-frame.
    Err(std::io::Error),
}

/// Incremental frame encoder-side: queue whole frames, drain them across
/// short writes and not-ready signals.
#[derive(Debug, Default)]
pub struct FrameWriter {
    queue: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written.
    offset: usize,
    written: u64,
    /// Queued-but-unwritten bytes across all frames (the backpressure
    /// signal: a peer that stops reading makes this grow).
    buffered: usize,
}

impl FrameWriter {
    /// An empty writer.
    pub fn new() -> Self {
        FrameWriter::default()
    }

    /// Queues one encoded frame (length prefix included) for writing.
    pub fn queue(&mut self, frame: Vec<u8>) {
        self.buffered += frame.len();
        self.queue.push_back(frame);
    }

    /// Whether any queued bytes remain unwritten.
    pub fn pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Queued bytes not yet handed to the OS — what a server caps to shed
    /// connections whose peers stop reading.
    pub fn buffered_bytes(&self) -> usize {
        self.buffered
    }

    /// Total bytes fully handed to the OS so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Pushes queued bytes into `io` until done or not ready. Safe to call
    /// again after [`FrameWrite::WouldBlock`] — the offset into the
    /// current frame is kept.
    pub fn poll_write(&mut self, io: &mut impl Write) -> FrameWrite {
        while let Some(front) = self.queue.front() {
            match io.write(&front[self.offset..]) {
                Ok(0) => {
                    return FrameWrite::Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    self.offset += n;
                    self.written += n as u64;
                    self.buffered -= n;
                    if self.offset == front.len() {
                        self.queue.pop_front();
                        self.offset = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return FrameWrite::WouldBlock,
                Err(e) => return FrameWrite::Err(e),
            }
        }
        FrameWrite::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(body: &[u8]) -> Vec<u8> {
        let mut f = (body.len() as u32).to_be_bytes().to_vec();
        f.extend_from_slice(body);
        f
    }

    /// A reader serving a script of byte chunks interleaved with
    /// `WouldBlock` signals (`None` entries).
    struct Scripted {
        script: VecDeque<Option<Vec<u8>>>,
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.script.pop_front() {
                Some(Some(bytes)) => {
                    assert!(bytes.len() <= buf.len(), "script chunk exceeds ask");
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(None) => Err(ErrorKind::WouldBlock.into()),
                None => Ok(0), // EOF
            }
        }
    }

    #[test]
    fn one_byte_at_a_time_with_wouldblock_between_every_byte() {
        let frames = [frame(b"hello"), frame(b""), frame(&[0xABu8; 300])];
        let all: Vec<u8> = frames.concat();
        let mut script: VecDeque<Option<Vec<u8>>> = VecDeque::new();
        for b in &all {
            script.push_back(None);
            script.push_back(Some(vec![*b]));
        }
        let mut io = Scripted { script };
        let mut reader = FrameReader::new(1 << 20);
        let mut out = Vec::new();
        loop {
            match reader.poll_frame(&mut io) {
                FrameRead::Frame(f) => out.push(f),
                FrameRead::WouldBlock => continue,
                FrameRead::Eof => break,
                FrameRead::Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(out, frames);
    }

    #[test]
    fn eof_mid_frame_is_an_error_not_a_clean_end() {
        let mut whole = frame(b"truncated");
        whole.truncate(whole.len() - 2);
        let mut io = Scripted {
            script: whole.iter().map(|b| Some(vec![*b])).collect(),
        };
        let mut reader = FrameReader::new(1 << 20);
        loop {
            match reader.poll_frame(&mut io) {
                FrameRead::Err(e) => {
                    assert_eq!(e.kind(), ErrorKind::UnexpectedEof);
                    break;
                }
                FrameRead::Frame(_) | FrameRead::Eof => panic!("must error"),
                FrameRead::WouldBlock => continue,
            }
        }
    }

    #[test]
    fn oversized_prefix_is_rejected_before_body_allocation() {
        let mut io = Scripted {
            script: VecDeque::from([Some((u32::MAX).to_be_bytes().to_vec())]),
        };
        let mut reader = FrameReader::new(1 << 20);
        match reader.poll_frame(&mut io) {
            FrameRead::Err(e) => assert_eq!(e.kind(), ErrorKind::InvalidData),
            other => panic!("expected error, got {other:?}"),
        }
    }

    /// A writer accepting at most `cap` bytes per call, interleaving
    /// `WouldBlock` on a stride.
    struct Dribble {
        accepted: Vec<u8>,
        cap: usize,
        calls: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls += 1;
            if self.calls.is_multiple_of(3) {
                return Err(ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.cap);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_and_wouldblock_resume_to_identical_bytes() {
        let frames = [frame(b"alpha"), frame(&[7u8; 129]), frame(b"")];
        let mut writer = FrameWriter::new();
        for f in &frames {
            writer.queue(f.clone());
        }
        let mut io = Dribble {
            accepted: Vec::new(),
            cap: 2,
            calls: 0,
        };
        loop {
            match writer.poll_write(&mut io) {
                FrameWrite::Done => break,
                FrameWrite::WouldBlock => continue,
                FrameWrite::Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(io.accepted, frames.concat());
        assert_eq!(writer.written(), frames.concat().len() as u64);
        assert!(!writer.pending());
        assert_eq!(writer.buffered_bytes(), 0);
    }

    #[test]
    fn buffered_bytes_tracks_the_unwritten_backlog() {
        let mut writer = FrameWriter::new();
        writer.queue(frame(&[1u8; 10]));
        writer.queue(frame(&[2u8; 6]));
        assert_eq!(writer.buffered_bytes(), 14 + 10);
        let mut io = Dribble {
            accepted: Vec::new(),
            cap: 5,
            calls: 0,
        };
        // One partial drain: the backlog shrinks by exactly what the OS
        // accepted, across frame boundaries.
        let _ = writer.poll_write(&mut io);
        assert_eq!(writer.buffered_bytes(), 24 - io.accepted.len());
    }
}
