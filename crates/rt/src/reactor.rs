//! Waker parking for not-ready non-blocking sockets.
//!
//! `std` has no selector, so the reactor does not *watch* file descriptors
//! — it schedules re-attempts. A task whose non-blocking syscall returned
//! `WouldBlock` parks its waker here; the executor's idle loop calls
//! [`Reactor::take_parked_into`] every poll tick and wakes everything,
//! which re-enqueues the tasks to re-attempt their syscalls. Tasks that
//! are still not ready park again: level-triggered readiness by
//! re-polling.
//!
//! # Adaptive idle backoff
//!
//! A fixed sub-millisecond tick costs ~2k failed syscalls per second per
//! parked task whenever *anything* is parked — even a fleet of completely
//! idle connections. The reactor therefore tracks a **no-progress streak**:
//! every sweep that produces neither a readiness hit nor a newly-parked
//! task doubles the suggested tick interval ([`Reactor::sweep_interval`]),
//! decaying from the executor's base (default 500µs) toward
//! [`MAX_POLL_INTERVAL`] (~50ms). Any sign of life —
//! [`Reactor::note_activity`], called on a readiness hit or a *new* park —
//! snaps the interval back to the base, so a loaded runtime still sees
//! sub-millisecond latency while an idle one performs ~20 sweeps/second
//! instead of ~2000. The trade: the first byte after a long idle period
//! can wait up to one backed-off tick (~50ms) before being noticed.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::task::Waker;
use std::time::Duration;

/// Default interval between readiness ticks while any task is parked and
/// the runtime is making progress. Small enough that a ready socket waits
/// sub-millisecond.
pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_micros(500);

/// Ceiling the tick interval decays toward while every parked task stays
/// not-ready: an idle runtime sweeps ~20 times per second, total, no
/// matter how many connections are parked.
pub const MAX_POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Cap on the doubling exponent (2^10 × any sane base is far past
/// [`MAX_POLL_INTERVAL`]); keeps the shift well-defined forever.
const MAX_IDLE_SHIFT: u32 = 10;

/// A point-in-time snapshot of the reactor's sweep accounting — what the
/// idle-CPU acceptance tests assert against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReactorStats {
    /// Level-triggered tick sweeps performed so far.
    pub sweeps: u64,
    /// Sweeps performed while the interval was fully backed off (at
    /// [`MAX_POLL_INTERVAL`]) — nonzero means the idle decay engaged.
    pub backoff_sweeps: u64,
    /// Times the streak was reset by a readiness hit or a new park.
    pub activity_marks: u64,
    /// Consecutive no-progress sweeps since the last activity mark.
    pub idle_streak: u32,
    /// The interval (µs) the most recent sweep waited for.
    pub last_interval_micros: u64,
    /// Currently parked tasks.
    pub parked: usize,
}

/// The parking lot for not-ready I/O tasks.
#[derive(Debug, Default)]
pub struct Reactor {
    parked: Mutex<Vec<Waker>>,
    /// Consecutive sweeps with no readiness progress and no new parks.
    idle_streak: AtomicU32,
    sweeps: AtomicU64,
    backoff_sweeps: AtomicU64,
    activity_marks: AtomicU64,
    last_interval_micros: AtomicU64,
}

impl Reactor {
    /// A reactor with no parked tasks.
    pub fn new() -> Self {
        Reactor::default()
    }

    /// Parks `waker` until the next readiness tick. No dedup: waking one
    /// task twice is harmless (the executor's per-task `queued` flag
    /// collapses redundant wakes into one queue entry), and a scan here
    /// would make every tick O(parked²) under the lock.
    pub fn park(&self, waker: &Waker) {
        self.parked
            .lock()
            .expect("reactor parked lock")
            .push(waker.clone());
    }

    /// Number of currently parked tasks (the executor's cue to run timed
    /// waits instead of sleeping indefinitely).
    pub fn waiters(&self) -> usize {
        self.parked.lock().expect("reactor parked lock").len()
    }

    /// Records a sign of life — a syscall that found the socket ready
    /// after having parked, or a task parking for the *first* time — and
    /// snaps the adaptive tick back to the base interval so the new work
    /// is serviced at sub-millisecond latency.
    pub fn note_activity(&self) {
        self.idle_streak.store(0, Ordering::Relaxed);
        self.activity_marks.fetch_add(1, Ordering::Relaxed);
    }

    /// The interval the next idle sweep should wait, given the executor's
    /// configured `base` tick: `base × 2^streak`, capped at
    /// [`MAX_POLL_INTERVAL`] (but never below `base` — an executor
    /// configured *slower* than the cap keeps its explicit interval).
    pub fn sweep_interval(&self, base: Duration) -> Duration {
        let streak = self.idle_streak.load(Ordering::Relaxed).min(MAX_IDLE_SHIFT);
        let scaled = base.saturating_mul(1u32 << streak);
        scaled.min(MAX_POLL_INTERVAL).max(base)
    }

    /// Records one performed sweep that waited `interval`: bumps the
    /// sweep counters and lengthens the no-progress streak (the streak is
    /// reset out-of-band by [`Reactor::note_activity`] when a woken task
    /// makes progress).
    pub fn note_sweep(&self, interval: Duration) {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        self.last_interval_micros
            .store(interval.as_micros() as u64, Ordering::Relaxed);
        if interval >= MAX_POLL_INTERVAL {
            self.backoff_sweeps.fetch_add(1, Ordering::Relaxed);
        }
        let _ = self
            .idle_streak
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(1).min(MAX_IDLE_SHIFT))
            });
    }

    /// A snapshot of the sweep accounting.
    pub fn stats(&self) -> ReactorStats {
        ReactorStats {
            sweeps: self.sweeps.load(Ordering::Relaxed),
            backoff_sweeps: self.backoff_sweeps.load(Ordering::Relaxed),
            activity_marks: self.activity_marks.load(Ordering::Relaxed),
            idle_streak: self.idle_streak.load(Ordering::Relaxed),
            last_interval_micros: self.last_interval_micros.load(Ordering::Relaxed),
            parked: self.waiters(),
        }
    }

    /// Drains every parked waker into `buf` (which must be empty) — the
    /// caller wakes them *outside* any executor lock, then reuses the same
    /// buffer for the next tick. The buffers swap roles each sweep, so an
    /// idle-but-parked runtime makes **zero allocations per sweep** once
    /// both have grown to the fleet size.
    pub fn take_parked_into(&self, buf: &mut Vec<Waker>) {
        debug_assert!(buf.is_empty(), "sweep buffer must be drained before reuse");
        std::mem::swap(&mut *self.parked.lock().expect("reactor parked lock"), buf);
    }

    /// Drains and returns every parked waker. Allocation-free steady state
    /// needs [`Reactor::take_parked_into`]; this remains for one-shot
    /// callers and tests.
    pub fn take_parked(&self) -> Vec<Waker> {
        let mut buf = Vec::new();
        self.take_parked_into(&mut buf);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::task::Wake;

    struct Counter(std::sync::atomic::AtomicU32);

    impl Wake for Counter {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    #[test]
    fn ticks_drain_every_parked_waker() {
        let reactor = Reactor::new();
        let counter = Arc::new(Counter(std::sync::atomic::AtomicU32::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        reactor.park(&waker);
        reactor.park(&waker); // double park = double wake; the executor's
                              // queued flag absorbs it
        assert_eq!(reactor.waiters(), 2);
        for w in reactor.take_parked() {
            w.wake();
        }
        assert_eq!(counter.0.load(std::sync::atomic::Ordering::SeqCst), 2);
        assert_eq!(reactor.waiters(), 0);
    }

    #[test]
    fn sweep_buffer_is_reused_without_reallocating() {
        let reactor = Reactor::new();
        let counter = Arc::new(Counter(std::sync::atomic::AtomicU32::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        let mut buf: Vec<Waker> = Vec::new();
        // Warm both sides of the swap to the fleet size...
        for _ in 0..2 {
            for _ in 0..16 {
                reactor.park(&waker);
            }
            reactor.take_parked_into(&mut buf);
            for w in buf.drain(..) {
                w.wake();
            }
        }
        // ...then steady-state sweeps must keep the warmed capacity: the
        // swap hands the previous sweep's buffer back as the park target.
        for _ in 0..8 {
            for _ in 0..16 {
                reactor.park(&waker);
            }
            reactor.take_parked_into(&mut buf);
            assert!(buf.capacity() >= 16);
            for w in buf.drain(..) {
                w.wake();
            }
        }
        assert_eq!(counter.0.load(std::sync::atomic::Ordering::SeqCst), 160);
    }

    #[test]
    fn idle_streak_decays_interval_and_activity_snaps_back() {
        let reactor = Reactor::new();
        let base = DEFAULT_POLL_INTERVAL;
        assert_eq!(reactor.sweep_interval(base), base);
        // No-progress sweeps double the interval up to the cap...
        for _ in 0..20 {
            reactor.note_sweep(reactor.sweep_interval(base));
        }
        assert_eq!(reactor.sweep_interval(base), MAX_POLL_INTERVAL);
        let stats = reactor.stats();
        assert_eq!(stats.sweeps, 20);
        assert!(stats.backoff_sweeps > 0, "cap must have been reached");
        // ...and any activity snaps straight back to the base.
        reactor.note_activity();
        assert_eq!(reactor.sweep_interval(base), base);
        assert_eq!(reactor.stats().idle_streak, 0);
        assert_eq!(reactor.stats().activity_marks, 1);
    }

    #[test]
    fn explicitly_slow_base_interval_is_never_shortened() {
        let reactor = Reactor::new();
        let slow = Duration::from_millis(200);
        for _ in 0..5 {
            reactor.note_sweep(slow);
        }
        // The cap applies to the *decay*, not to an operator-chosen base.
        assert_eq!(reactor.sweep_interval(slow), slow);
    }
}
