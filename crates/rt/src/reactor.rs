//! Waker parking for not-ready non-blocking sockets.
//!
//! `std` has no selector, so the reactor does not *watch* file descriptors
//! — it schedules re-attempts. A task whose non-blocking syscall returned
//! `WouldBlock` parks its waker here; the executor's idle loop calls
//! [`Reactor::take_parked`] every poll tick and wakes everything, which
//! re-enqueues the tasks to re-attempt their syscalls. Tasks that are
//! still not ready park again: level-triggered readiness by re-polling.

use std::sync::Mutex;
use std::task::Waker;
use std::time::Duration;

/// Default interval between readiness ticks while any task is parked.
/// Small enough that a ready socket waits sub-millisecond, large enough
/// that an idle connection costs ~2k failed `read` syscalls per second —
/// not per connection, per *tick sweep* amortized over all of them.
pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_micros(500);

/// The parking lot for not-ready I/O tasks.
#[derive(Debug, Default)]
pub struct Reactor {
    parked: Mutex<Vec<Waker>>,
}

impl Reactor {
    /// A reactor with no parked tasks.
    pub fn new() -> Self {
        Reactor::default()
    }

    /// Parks `waker` until the next readiness tick. No dedup: waking one
    /// task twice is harmless (the executor's per-task `queued` flag
    /// collapses redundant wakes into one queue entry), and a scan here
    /// would make every tick O(parked²) under the lock.
    pub fn park(&self, waker: &Waker) {
        self.parked
            .lock()
            .expect("reactor parked lock")
            .push(waker.clone());
    }

    /// Number of currently parked tasks (the executor's cue to run timed
    /// waits instead of sleeping indefinitely).
    pub fn waiters(&self) -> usize {
        self.parked.lock().expect("reactor parked lock").len()
    }

    /// Drains and returns every parked waker — the caller wakes them
    /// *outside* any executor lock. This is one level-triggered tick.
    pub fn take_parked(&self) -> Vec<Waker> {
        std::mem::take(&mut *self.parked.lock().expect("reactor parked lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::task::Wake;

    struct Counter(std::sync::atomic::AtomicU32);

    impl Wake for Counter {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    #[test]
    fn ticks_drain_every_parked_waker() {
        let reactor = Reactor::new();
        let counter = Arc::new(Counter(std::sync::atomic::AtomicU32::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        reactor.park(&waker);
        reactor.park(&waker); // double park = double wake; the executor's
                              // queued flag absorbs it
        assert_eq!(reactor.waiters(), 2);
        for w in reactor.take_parked() {
            w.wake();
        }
        assert_eq!(counter.0.load(std::sync::atomic::Ordering::SeqCst), 2);
        assert_eq!(reactor.waiters(), 0);
    }
}
