//! A small free-list of reusable byte buffers.
//!
//! The event-driven serving stack allocates the same shapes over and over:
//! a request frame per round trip, a scratch buffer per encoded flight.
//! [`BufPool`] recycles those `Vec<u8>`s instead — `get` pops a cleared
//! buffer (its capacity warm from previous use), `put` returns one. Two
//! caps bound what the pool may pin: at most `max_pooled` buffers are
//! retained, and a buffer whose capacity exceeds `max_capacity` is dropped
//! rather than pooled, so one oversized frame (a megabyte `DeltaPage`)
//! never parks a megabyte in the free list forever.
//!
//! The pool is `Clone` (handles share one free list) and thread-safe; the
//! lock is held only for a `Vec` push/pop.

use std::sync::{Arc, Mutex};

/// Default cap on pooled buffers per pool.
pub const DEFAULT_MAX_POOLED: usize = 64;

/// Default per-buffer capacity cap: buffers grown past this are dropped on
/// [`BufPool::put`] instead of pooled.
pub const DEFAULT_MAX_BUF_CAPACITY: usize = 64 * 1024;

/// A bounded, shared free-list of `Vec<u8>` scratch buffers.
#[derive(Debug, Clone)]
pub struct BufPool {
    free: Arc<Mutex<Vec<Vec<u8>>>>,
    max_pooled: usize,
    max_capacity: usize,
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new(DEFAULT_MAX_POOLED, DEFAULT_MAX_BUF_CAPACITY)
    }
}

impl BufPool {
    /// A pool retaining at most `max_pooled` buffers, each of capacity at
    /// most `max_capacity` (larger buffers are dropped on [`put`], not
    /// pooled — the shrink policy).
    ///
    /// [`put`]: BufPool::put
    pub fn new(max_pooled: usize, max_capacity: usize) -> Self {
        BufPool {
            free: Arc::new(Mutex::new(Vec::new())),
            max_pooled,
            max_capacity,
        }
    }

    /// Pops a cleared buffer from the free list, or a fresh empty `Vec`
    /// when the pool is dry.
    pub fn get(&self) -> Vec<u8> {
        self.free
            .lock()
            .expect("pool lock poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a buffer to the free list. The buffer is cleared; it is
    /// dropped instead of pooled when the pool is full or the buffer's
    /// capacity exceeds the pool's per-buffer cap.
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > self.max_capacity {
            return;
        }
        buf.clear();
        let mut free = self.free.lock().expect("pool lock poisoned");
        if free.len() < self.max_pooled {
            free.push(buf);
        }
    }

    /// Buffers currently parked in the free list.
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("pool lock poisoned").len()
    }

    /// Total capacity (bytes) parked in the free list — what the pool
    /// currently pins. Bounded by `max_pooled * max_capacity`.
    pub fn pooled_bytes(&self) -> usize {
        self.free
            .lock()
            .expect("pool lock poisoned")
            .iter()
            .map(Vec::capacity)
            .sum()
    }

    /// The per-buffer capacity cap.
    pub fn max_capacity(&self) -> usize {
        self.max_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_reuses_put_buffers_with_warm_capacity() {
        let pool = BufPool::new(4, 1024);
        let mut buf = pool.get();
        assert_eq!(buf.capacity(), 0);
        buf.extend_from_slice(&[7u8; 100]);
        let cap = buf.capacity();
        pool.put(buf);
        assert_eq!(pool.pooled(), 1);
        let reused = pool.get();
        assert!(reused.is_empty());
        assert_eq!(reused.capacity(), cap, "capacity survives the round trip");
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn oversized_and_excess_buffers_are_dropped_not_pooled() {
        let pool = BufPool::new(2, 64);
        // Over the per-buffer capacity cap: dropped.
        pool.put(Vec::with_capacity(1024));
        assert_eq!(pool.pooled(), 0);
        // Over the pool-size cap: the third buffer is dropped.
        pool.put(Vec::with_capacity(16));
        pool.put(Vec::with_capacity(16));
        pool.put(Vec::with_capacity(16));
        assert_eq!(pool.pooled(), 2);
        assert!(pool.pooled_bytes() <= 2 * 64);
    }

    #[test]
    fn clones_share_one_free_list() {
        let pool = BufPool::new(4, 1024);
        let clone = pool.clone();
        clone.put(Vec::with_capacity(8));
        assert_eq!(pool.pooled(), 1);
        assert_eq!(pool.get().capacity(), 8);
    }
}
