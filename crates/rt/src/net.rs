//! Async adapters for `std::net` TCP sockets over the readiness reactor.
//!
//! `std` has no async sockets, so these helpers wrap the blocking types in
//! the crate's [`io`] adapter: every operation attempts the
//! non-blocking syscall, and a `WouldBlock` parks the task until the next
//! readiness tick. All functions require the socket to already be in
//! non-blocking mode (`set_nonblocking(true)`); they treat `Interrupted`
//! like `WouldBlock` (the level-triggered tick retries harmlessly).

use crate::{io, IoPoll, Reactor};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

fn retryable(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
    )
}

/// Accepts one connection from a non-blocking listener. The accepted
/// stream is returned still in *blocking* mode — callers decide.
///
/// # Errors
///
/// Terminal accept errors from the OS.
pub async fn accept(
    reactor: &Arc<Reactor>,
    listener: &TcpListener,
) -> std::io::Result<(TcpStream, SocketAddr)> {
    io(reactor, move || match listener.accept() {
        Ok(pair) => IoPoll::Ready(Ok(pair)),
        Err(e) if retryable(e.kind()) => IoPoll::WouldBlock,
        Err(e) => IoPoll::Ready(Err(e)),
    })
    .await
}

/// Reads whatever bytes are available into `buf`, parking until the socket
/// is readable. `Ok(0)` means the peer closed the connection.
///
/// # Errors
///
/// Terminal read errors from the OS.
pub async fn read_some(
    reactor: &Arc<Reactor>,
    stream: &TcpStream,
    buf: &mut [u8],
) -> std::io::Result<usize> {
    io(reactor, move || match (&*stream).read(buf) {
        Ok(n) => IoPoll::Ready(Ok(n)),
        Err(e) if retryable(e.kind()) => IoPoll::WouldBlock,
        Err(e) => IoPoll::Ready(Err(e)),
    })
    .await
}

/// Writes all of `bytes`, parking across short writes and `WouldBlock`.
///
/// # Errors
///
/// Terminal write errors from the OS; [`std::io::ErrorKind::WriteZero`] if
/// the peer stops accepting bytes.
pub async fn write_all(
    reactor: &Arc<Reactor>,
    stream: &TcpStream,
    bytes: &[u8],
) -> std::io::Result<()> {
    let mut offset = 0;
    io(reactor, move || {
        while offset < bytes.len() {
            match (&*stream).write(&bytes[offset..]) {
                Ok(0) => {
                    return IoPoll::Ready(Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    )))
                }
                Ok(n) => offset += n,
                Err(e) if retryable(e.kind()) => return IoPoll::WouldBlock,
                Err(e) => return IoPoll::Ready(Err(e)),
            }
        }
        IoPoll::Ready(Ok(()))
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn accept_read_write_round_trip() {
        let exec = Executor::new(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let done = Arc::new(AtomicBool::new(false));

        {
            let reactor = exec.handle().reactor();
            exec.handle().spawn(async move {
                let (stream, _) = accept(&reactor, &listener).await.unwrap();
                stream.set_nonblocking(true).unwrap();
                let mut buf = [0u8; 16];
                let n = read_some(&reactor, &stream, &mut buf).await.unwrap();
                write_all(&reactor, &stream, &buf[..n]).await.unwrap();
            });
        }
        {
            let reactor = exec.handle().reactor();
            let done = Arc::clone(&done);
            exec.handle().spawn(async move {
                let stream = TcpStream::connect(addr).unwrap();
                stream.set_nonblocking(true).unwrap();
                write_all(&reactor, &stream, b"ping").await.unwrap();
                let mut buf = [0u8; 16];
                let mut got = Vec::new();
                while got.len() < 4 {
                    let n = read_some(&reactor, &stream, &mut buf).await.unwrap();
                    assert_ne!(n, 0, "peer closed early");
                    got.extend_from_slice(&buf[..n]);
                }
                assert_eq!(got, b"ping");
                done.store(true, Ordering::SeqCst);
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !done.load(Ordering::SeqCst) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(done.load(Ordering::SeqCst), "echo round trip timed out");
        exec.shutdown();
    }
}
