//! Behavioural models of the baseline schemes: attack windows,
//! per-handshake costs, and dissemination capacity.
//!
//! These drive the comparison benches (attack-window and handshake-overhead
//! sweeps) that back §II's criticism of each scheme and §V's "effectively,
//! the attack window is 2Δ" claim for RITM.

/// Parameters of each scheme that determine its revocation attack window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeParams {
    /// CRLs refetched when `next_update_secs` elapses.
    Crl {
        /// CRL publication period.
        next_update_secs: u64,
        /// Entries on the list (drives download size).
        entries: u64,
    },
    /// OCSP responses cached for `response_validity_secs`.
    Ocsp {
        /// Validity of a response.
        response_validity_secs: u64,
    },
    /// Stapled responses refreshed by the server every `staple_age_secs` —
    /// a *server-controlled* parameter (the §II complaint: a compromised
    /// server maximizes it).
    OcspStapling {
        /// Maximum stapled-response age the server config allows.
        staple_age_secs: u64,
    },
    /// Vendor-pushed list updated with software updates.
    CrlSet {
        /// Update push period.
        push_period_secs: u64,
        /// Fraction of all revocations covered (0.35 % reported).
        coverage: f64,
    },
    /// Short-lived certificates: irrevocable for their lifetime.
    ShortLived {
        /// Certificate lifetime.
        lifetime_secs: u64,
    },
    /// RevCast FM broadcast at 421.8 bit/s.
    RevCast {
        /// Broadcast bandwidth in bits/second (421.8 in the paper).
        bandwidth_bps: f64,
        /// Bits per revocation entry on air.
        entry_bits: u64,
    },
    /// Log-based schemes with a maximum-merge-delay.
    LogBased {
        /// Log update (merge) period.
        merge_delay_secs: u64,
    },
    /// RITM with dissemination period Δ.
    Ritm {
        /// Δ in seconds.
        delta_secs: u64,
    },
}

impl SchemeParams {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeParams::Crl { .. } => "CRL",
            SchemeParams::Ocsp { .. } => "OCSP",
            SchemeParams::OcspStapling { .. } => "OCSP Stapling",
            SchemeParams::CrlSet { .. } => "CRLSet",
            SchemeParams::ShortLived { .. } => "Short-Lived Certs",
            SchemeParams::RevCast { .. } => "RevCast",
            SchemeParams::LogBased { .. } => "Log-based",
            SchemeParams::Ritm { .. } => "RITM",
        }
    }

    /// Worst-case window (seconds) during which a client accepts a
    /// certificate that has already been revoked.
    pub fn attack_window_secs(&self) -> u64 {
        match *self {
            // Client fetched the CRL just before the revocation: exposed
            // until the *next* publication plus the fetch.
            SchemeParams::Crl {
                next_update_secs, ..
            } => next_update_secs,
            SchemeParams::Ocsp {
                response_validity_secs,
            } => response_validity_secs,
            SchemeParams::OcspStapling { staple_age_secs } => staple_age_secs,
            SchemeParams::CrlSet {
                push_period_secs, ..
            } => push_period_secs,
            SchemeParams::ShortLived { lifetime_secs } => lifetime_secs,
            // Broadcast reception is near-immediate once on air.
            SchemeParams::RevCast { .. } => 60,
            SchemeParams::LogBased { merge_delay_secs } => merge_delay_secs,
            // §V: publish/poll skew tolerance makes it exactly 2Δ.
            SchemeParams::Ritm { delta_secs } => 2 * delta_secs,
        }
    }

    /// Probability that a given revocation is visible to clients at all
    /// (CRLSet covers only a sliver; everything else is complete).
    pub fn revocation_coverage(&self) -> f64 {
        match *self {
            SchemeParams::CrlSet { coverage, .. } => coverage,
            _ => 1.0,
        }
    }

    /// Extra bytes a client must download *during connection establishment*
    /// to learn the revocation status (0 when the scheme pushes data out of
    /// band or staples it).
    pub fn handshake_extra_bytes(&self, crl_entry_bytes: u64) -> u64 {
        match *self {
            SchemeParams::Crl { entries, .. } => entries * crl_entry_bytes,
            // One OCSP response.
            SchemeParams::Ocsp { .. } => 1_500,
            SchemeParams::OcspStapling { .. } => 0,
            SchemeParams::CrlSet { .. } => 0,
            SchemeParams::ShortLived { .. } => 0,
            SchemeParams::RevCast { .. } => 0,
            // SCT/validity proof fetched from a log.
            SchemeParams::LogBased { .. } => 1_200,
            // The piggybacked status rides existing packets; no extra
            // *connection*, and 500–900 bytes of payload (§VII-D).
            SchemeParams::Ritm { .. } => 0,
        }
    }

    /// Extra *round trips to a third party* during the handshake (the
    /// latency- and privacy-relevant count).
    pub fn extra_connections(&self) -> u32 {
        match self {
            SchemeParams::Crl { .. } => 1,
            SchemeParams::Ocsp { .. } => 1,
            SchemeParams::LogBased { .. } => 1, // client-driven variant
            _ => 0,
        }
    }

    /// Whether a third party learns which server the client visits.
    pub fn leaks_browsing_target(&self) -> bool {
        matches!(
            self,
            SchemeParams::Crl { .. } | SchemeParams::Ocsp { .. } | SchemeParams::LogBased { .. }
        )
    }
}

/// Time for RevCast to broadcast `revocations` entries — its §II bottleneck
/// (421.8 bit/s cannot absorb a Heartbleed event quickly).
pub fn revcast_dissemination_secs(bandwidth_bps: f64, entry_bits: u64, revocations: u64) -> f64 {
    (revocations * entry_bits) as f64 / bandwidth_bps
}

/// Time for RITM to disseminate a batch: one Δ for the pull cycle plus the
/// CDN download (seconds); `download_secs` comes from the Fig. 5 model.
pub fn ritm_dissemination_secs(delta_secs: u64, download_secs: f64) -> f64 {
    delta_secs as f64 + download_secs
}

/// The default parameterization used by the comparison experiments,
/// matching the numbers quoted in §II.
pub fn default_params(ritm_delta: u64) -> Vec<SchemeParams> {
    vec![
        SchemeParams::Crl {
            next_update_secs: 7 * 86_400,
            entries: 339_557,
        },
        SchemeParams::Ocsp {
            response_validity_secs: 4 * 86_400,
        },
        SchemeParams::OcspStapling {
            staple_age_secs: 7 * 86_400,
        },
        SchemeParams::CrlSet {
            push_period_secs: 42 * 86_400,
            coverage: 0.0035,
        },
        SchemeParams::ShortLived {
            lifetime_secs: 4 * 86_400,
        },
        SchemeParams::RevCast {
            bandwidth_bps: 421.8,
            entry_bits: 21 * 8,
        },
        SchemeParams::LogBased {
            merge_delay_secs: 12 * 3_600,
        },
        SchemeParams::Ritm {
            delta_secs: ritm_delta,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ritm_window_is_two_delta() {
        assert_eq!(
            SchemeParams::Ritm { delta_secs: 10 }.attack_window_secs(),
            20
        );
        assert_eq!(
            SchemeParams::Ritm { delta_secs: 86_400 }.attack_window_secs(),
            172_800
        );
    }

    #[test]
    fn ritm_has_smallest_window_at_small_delta() {
        let ritm = SchemeParams::Ritm { delta_secs: 10 };
        for p in default_params(10) {
            if p != ritm {
                assert!(
                    p.attack_window_secs() >= ritm.attack_window_secs(),
                    "{} window smaller than RITM's",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn revcast_chokes_on_heartbleed() {
        // ~40k revocations on the peak Heartbleed day (Fig. 4) at
        // 421.8 bit/s with 21-byte entries takes hours — versus seconds for
        // RITM (one Δ plus a sub-second CDN pull).
        let secs = revcast_dissemination_secs(421.8, 21 * 8, 40_000);
        assert!(
            secs / 3600.0 > 3.0 && secs / 3600.0 < 8.0,
            "{} h",
            secs / 3600.0
        );
        let ritm = ritm_dissemination_secs(10, 0.5);
        assert!(ritm < 15.0);
        assert!(secs / ritm > 1_000.0, "RITM is orders of magnitude faster");
    }

    #[test]
    fn crl_download_is_megabytes() {
        let crl = SchemeParams::Crl {
            next_update_secs: 86_400,
            entries: 339_557,
        };
        // ~22 bytes per DER CRL entry → ~7.5 MB, the paper's largest CRL.
        let bytes = crl.handshake_extra_bytes(22);
        assert!(bytes > 7_000_000, "got {bytes}");
        assert_eq!(
            SchemeParams::Ritm { delta_secs: 10 }.handshake_extra_bytes(22),
            0
        );
    }

    #[test]
    fn privacy_leaks_match_section_ii() {
        assert!(SchemeParams::Ocsp {
            response_validity_secs: 1
        }
        .leaks_browsing_target());
        assert!(SchemeParams::Crl {
            next_update_secs: 1,
            entries: 1
        }
        .leaks_browsing_target());
        assert!(!SchemeParams::Ritm { delta_secs: 1 }.leaks_browsing_target());
        assert!(!SchemeParams::OcspStapling { staple_age_secs: 1 }.leaks_browsing_target());
    }

    #[test]
    fn crlset_coverage_is_partial() {
        let p = SchemeParams::CrlSet {
            push_period_secs: 1,
            coverage: 0.0035,
        };
        assert!(p.revocation_coverage() < 0.01);
        assert_eq!(
            SchemeParams::Ritm { delta_secs: 1 }.revocation_coverage(),
            1.0
        );
    }

    #[test]
    fn server_controlled_staple_age_grows_window() {
        let honest = SchemeParams::OcspStapling {
            staple_age_secs: 86_400,
        };
        let compromised = SchemeParams::OcspStapling {
            staple_age_secs: 30 * 86_400,
        };
        assert!(compromised.attack_window_secs() > honest.attack_window_secs() * 20);
    }
}
