//! The analytic comparison model behind Table IV of the paper.
//!
//! For each revocation mechanism, assuming full deployment, the table gives
//! the storage and the number of connections required so that an arbitrary
//! client can establish a secure connection to an arbitrary server, plus
//! which desired properties the mechanism violates.

/// Deployment scale parameters (`ns, nca, nra, ncl, nrev` in the paper,
/// with `nca ≪ nra < ns ≪ ncl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deployment {
    /// Number of TLS servers.
    pub servers: u64,
    /// Number of CAs.
    pub cas: u64,
    /// Number of RAs.
    pub ras: u64,
    /// Number of clients.
    pub clients: u64,
    /// Number of revocations.
    pub revocations: u64,
}

impl Deployment {
    /// The paper-scale default: today's web PKI with RITM's conservative
    /// RA density (10 clients per RA).
    pub fn paper_scale() -> Self {
        Deployment {
            servers: 50_000_000,
            cas: 254,
            ras: 230_000_000,
            clients: 2_300_000_000,
            revocations: 1_381_992,
        }
    }

    /// Sanity predicate from the table caption: `nca ≪ nra < ns ≪ ncl` is
    /// relaxed here to the orderings that the formulas rely on.
    pub fn is_plausible(&self) -> bool {
        self.cas < self.ras && self.cas < self.servers && self.servers < self.clients
    }
}

/// Storage and connection counts for one scheme (Table IV columns).
/// Units: revocation entries for storage, connections for conn counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overhead {
    /// Total replicated revocation entries across the system.
    pub storage_global: u128,
    /// Entries each client must store.
    pub storage_client: u64,
    /// Total connections to propagate state system-wide.
    pub connections_global: u128,
    /// Connections each client must make.
    pub connections_client: u64,
}

/// The desired properties of §II (Table IV legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Properties {
    /// I: near-instant revocation.
    pub near_instant: bool,
    /// P: privacy.
    pub privacy: bool,
    /// E: efficiency and scalability.
    pub efficiency: bool,
    /// T: transparency and accountability.
    pub transparency: bool,
    /// S: server changes not required.
    pub no_server_changes: bool,
}

impl Properties {
    /// The Table IV "violated properties" string, e.g. `"I, P, E, T"`.
    pub fn violated(&self) -> String {
        let mut v = Vec::new();
        if !self.near_instant {
            v.push("I");
        }
        if !self.privacy {
            v.push("P");
        }
        if !self.efficiency {
            v.push("E");
        }
        if !self.no_server_changes {
            v.push("S");
        }
        if !self.transparency {
            v.push("T");
        }
        if v.is_empty() {
            "-".to_owned()
        } else {
            v.join(", ")
        }
    }
}

/// The schemes compared in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Certificate Revocation Lists.
    Crl,
    /// Browser-pushed partial CRLs (CRLSet/OneCRL).
    CrlSet,
    /// Online Certificate Status Protocol.
    Ocsp,
    /// OCSP stapling.
    OcspStapling,
    /// Log-based, client-driven deployment.
    LogClientDriven,
    /// Log-based, server-driven deployment.
    LogServerDriven,
    /// RevCast FM-radio broadcast.
    RevCast,
    /// This paper.
    Ritm,
}

/// All schemes in the row order of Table IV.
pub const ALL_SCHEMES: [Scheme; 8] = [
    Scheme::Crl,
    Scheme::CrlSet,
    Scheme::Ocsp,
    Scheme::OcspStapling,
    Scheme::LogClientDriven,
    Scheme::LogServerDriven,
    Scheme::RevCast,
    Scheme::Ritm,
];

impl Scheme {
    /// Row label.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Crl => "CRL",
            Scheme::CrlSet => "CRLSet",
            Scheme::Ocsp => "OCSP",
            Scheme::OcspStapling => "OCSP Stapling",
            Scheme::LogClientDriven => "Log (client-driven)",
            Scheme::LogServerDriven => "Log (server-driven)",
            Scheme::RevCast => "RevCast",
            Scheme::Ritm => "RITM",
        }
    }

    /// The Table IV overhead formulas.
    pub fn overhead(&self, d: &Deployment) -> Overhead {
        let nrev = d.revocations as u128;
        let ncl = d.clients as u128;
        let ns = d.servers as u128;
        let nca = d.cas as u128;
        let nra = d.ras as u128;
        match self {
            // Every client holds the CRL and contacts every CA.
            Scheme::Crl => Overhead {
                storage_global: nrev * (ncl + 1),
                storage_client: d.revocations,
                connections_global: ncl * nca,
                connections_client: d.cas,
            },
            // Pushed by one vendor: a single connection per client.
            Scheme::CrlSet => Overhead {
                storage_global: nrev * (ncl + 1),
                storage_client: d.revocations,
                connections_global: ncl,
                connections_client: 1,
            },
            Scheme::Ocsp => Overhead {
                storage_global: nrev,
                storage_client: 0,
                connections_global: ncl * ns,
                connections_client: d.servers,
            },
            Scheme::OcspStapling => Overhead {
                storage_global: nrev + ns,
                storage_client: 0,
                connections_global: ns,
                connections_client: 0,
            },
            Scheme::LogClientDriven => Overhead {
                storage_global: nrev,
                storage_client: 0,
                connections_global: ncl * ns,
                connections_client: d.servers,
            },
            Scheme::LogServerDriven => Overhead {
                storage_global: nrev,
                storage_client: 0,
                connections_global: ns,
                connections_client: 0,
            },
            Scheme::RevCast => Overhead {
                storage_global: nrev * (ncl + 1),
                storage_client: d.revocations,
                connections_global: ncl,
                connections_client: d.revocations,
            },
            Scheme::Ritm => Overhead {
                storage_global: nrev * (nra + 1),
                storage_client: 0,
                connections_global: nca,
                connections_client: 0,
            },
        }
    }

    /// The Table IV property matrix.
    pub fn properties(&self) -> Properties {
        match self {
            Scheme::Crl => Properties {
                near_instant: false,
                privacy: false,
                efficiency: false,
                transparency: false,
                no_server_changes: true,
            },
            Scheme::CrlSet => Properties {
                near_instant: false,
                privacy: true,
                efficiency: false,
                transparency: false,
                no_server_changes: true,
            },
            Scheme::Ocsp => Properties {
                near_instant: false,
                privacy: false,
                efficiency: false,
                transparency: false,
                no_server_changes: true,
            },
            Scheme::OcspStapling => Properties {
                near_instant: false,
                privacy: true,
                efficiency: true,
                transparency: false,
                no_server_changes: false,
            },
            Scheme::LogClientDriven => Properties {
                near_instant: false,
                privacy: false,
                efficiency: false,
                transparency: true,
                no_server_changes: true,
            },
            Scheme::LogServerDriven => Properties {
                near_instant: false,
                privacy: true,
                efficiency: true,
                transparency: true,
                no_server_changes: false,
            },
            Scheme::RevCast => Properties {
                near_instant: true,
                privacy: true,
                efficiency: false,
                transparency: false,
                no_server_changes: true,
            },
            Scheme::Ritm => Properties {
                near_instant: true,
                privacy: true,
                efficiency: true,
                transparency: true,
                no_server_changes: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_plausible() {
        assert!(Deployment::paper_scale().is_plausible());
    }

    #[test]
    fn ritm_violates_nothing() {
        assert_eq!(Scheme::Ritm.properties().violated(), "-");
    }

    #[test]
    fn violated_strings_match_table_iv() {
        assert_eq!(Scheme::Crl.properties().violated(), "I, P, E, T");
        assert_eq!(Scheme::CrlSet.properties().violated(), "I, E, T");
        assert_eq!(Scheme::Ocsp.properties().violated(), "I, P, E, T");
        assert_eq!(Scheme::OcspStapling.properties().violated(), "I, S, T");
        assert_eq!(Scheme::LogClientDriven.properties().violated(), "I, P, E");
        assert_eq!(Scheme::LogServerDriven.properties().violated(), "I, S");
        assert_eq!(Scheme::RevCast.properties().violated(), "E, T");
    }

    #[test]
    fn clients_store_nothing_under_ritm() {
        let d = Deployment::paper_scale();
        let o = Scheme::Ritm.overhead(&d);
        assert_eq!(o.storage_client, 0);
        assert_eq!(o.connections_client, 0);
        assert_eq!(o.connections_global, d.cas as u128);
    }

    #[test]
    fn ritm_global_storage_scales_with_ras_not_clients() {
        let d = Deployment::paper_scale();
        let ritm = Scheme::Ritm.overhead(&d);
        let crl = Scheme::Crl.overhead(&d);
        // nra < ncl, so RITM replicates strictly less than CRL.
        assert!(ritm.storage_global < crl.storage_global);
    }

    #[test]
    fn ocsp_connection_explosion() {
        let d = Deployment::paper_scale();
        let o = Scheme::Ocsp.overhead(&d);
        assert_eq!(o.connections_global, d.clients as u128 * d.servers as u128);
        // RITM's global connection count is trivially small by comparison.
        assert!(Scheme::Ritm.overhead(&d).connections_global < 1_000);
    }

    #[test]
    fn all_schemes_enumerated_once() {
        use std::collections::HashSet;
        let set: HashSet<_> = ALL_SCHEMES.iter().collect();
        assert_eq!(set.len(), 8);
    }
}
