//! # ritm-baselines — the revocation schemes RITM is compared against
//!
//! * [`model`] — the Table IV analytic comparison (storage/connection
//!   formulas and the violated-property matrix, assuming full deployment);
//! * [`simulate`] — behavioural parameters: attack windows, per-handshake
//!   costs, coverage, privacy leakage, and dissemination capacity (e.g.
//!   RevCast's 421.8 bit/s broadcast).

pub mod model;
pub mod simulate;

pub use model::{Deployment, Overhead, Properties, Scheme, ALL_SCHEMES};
pub use simulate::{
    default_params, revcast_dissemination_secs, ritm_dissemination_secs, SchemeParams,
};
