//! Snapshot/publish lifecycle property test: random issuance batches,
//! tampered-batch rollbacks, freshness refreshes, and root rotations are
//! driven through `mirror_mut` (which republishes on drop) and served back
//! through the `StatusServer`. Every served status must validate against
//! its own snapshot's root, served epochs must never regress, and the
//! mirror's structurally-shared tree must stay bit-identical to a dense
//! rebuild oracle of the issuance log.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::ra::{RaConfig, RevocationAgent};
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::tree::{Leaf, MerkleTree};
use ritm_dictionary::{CaDictionary, CaId, RevocationProof, SerialNumber, UpdateError};

const DELTA: u64 = 10;
const T0: u64 = 1_000_000;

/// Dense-rebuild oracle over the issuance log (serials in issuance order,
/// numbered from 1).
fn oracle_of(log: &[SerialNumber]) -> MerkleTree {
    let mut tree = MerkleTree::new();
    tree.extend_leaves(
        log.iter()
            .enumerate()
            .map(|(i, s)| Leaf::new(*s, i as u64 + 1)),
    );
    tree.rebuild();
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lifecycle_serves_self_consistent_statuses(
        ops in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(0u32..4_000, 1..25)),
            1..16,
        ),
    ) {
        let mut rng = StdRng::seed_from_u64(31);
        // Short chain so refreshes regularly rotate the root.
        let mut ca = CaDictionary::new(
            CaId::from_name("LifecycleCA"),
            SigningKey::from_seed([3u8; 32]),
            DELTA,
            4,
            &mut rng,
            T0,
        );
        let ca_id = ca.ca();
        let key = ca.verifying_key();
        let mut ra = RevocationAgent::new(RaConfig { delta: DELTA, ..Default::default() });
        ra.follow_ca(ca_id, key, *ca.signed_root()).unwrap();
        let server = ra.status_server();

        let mut log: Vec<SerialNumber> = Vec::new();
        let mut now = T0;
        let mut last_epoch = server.snapshot(&ca_id).expect("genesis published").epoch();

        for (action, payload) in &ops {
            now += 1;
            match action % 4 {
                0 | 1 => {
                    // Issuance batch (random serials; middle insertions and
                    // appends both occur).
                    let serials: Vec<SerialNumber> =
                        payload.iter().map(|&v| SerialNumber::from_u24(v)).collect();
                    if let Some(iss) = ca.insert(&serials, &mut rng, now) {
                        ra.mirror_mut(&ca_id).unwrap().apply_issuance(&iss, now).unwrap();
                        log.extend(iss.serials.iter().copied());
                    }
                }
                2 => {
                    // Tampered batch: the mirror must roll the application
                    // back (remove_sorted_batch path), reject, and then
                    // accept the honest bytes.
                    let serials: Vec<SerialNumber> =
                        payload.iter().map(|&v| SerialNumber::from_u24(v)).collect();
                    if let Some(iss) = ca.insert(&serials, &mut rng, now) {
                        let mut tampered = iss.clone();
                        tampered.serials[0] = SerialNumber::from_u24(0xF0_0000);
                        let err = ra
                            .mirror_mut(&ca_id)
                            .unwrap()
                            .apply_issuance(&tampered, now)
                            .unwrap_err();
                        prop_assert!(matches!(
                            err,
                            UpdateError::RootMismatch | UpdateError::DuplicateSerial
                        ));
                        ra.mirror_mut(&ca_id).unwrap().apply_issuance(&iss, now).unwrap();
                        log.extend(iss.serials.iter().copied());
                    }
                }
                _ => {
                    // Periodic refresh: freshness statement, or a root
                    // rotation once the short chain is exhausted.
                    now += DELTA;
                    let msg = ca.refresh(&mut rng, now);
                    ra.mirror_mut(&ca_id).unwrap().apply_refresh(&msg, now).unwrap();
                }
            }

            // The published snapshot tracks the oracle and never regresses.
            let snap = server.snapshot(&ca_id).expect("published");
            prop_assert!(snap.epoch() >= last_epoch, "served epoch regressed");
            last_epoch = snap.epoch();
            let oracle = oracle_of(&log);
            prop_assert_eq!(snap.signed_root().root, oracle.root());
            prop_assert_eq!(snap.len(), oracle.len());

            // Served statuses validate against their own snapshot's root,
            // agree with the model, and carry audit paths bit-identical to
            // the dense oracle's.
            let mut queries: Vec<SerialNumber> = payload
                .iter()
                .take(4)
                .map(|&v| SerialNumber::from_u24(v.wrapping_mul(3) % 5_000))
                .collect();
            if let Some(first) = log.first() {
                queries.push(*first);
            }
            for q in &queries {
                let status = server.status_for(&ca_id, q).expect("mirrored CA");
                let outcome = status
                    .validate(q, &key, DELTA, now)
                    .expect("served status must validate against its own root");
                prop_assert_eq!(outcome.is_revoked(), log.contains(q), "verdict diverged");
                let from_oracle = RevocationProof::generate(&oracle, q);
                prop_assert_eq!(
                    status.proof.to_bytes(),
                    from_oracle.to_bytes(),
                    "audit path diverged from dense oracle"
                );
            }
        }
    }
}
