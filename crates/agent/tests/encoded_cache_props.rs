//! Encoded-response cache staleness property: after ANY interleaving of
//! issuance batches, freshness-only refreshes, and serves, a response
//! served from the `StatusServer`'s encoded cache must decode to exactly
//! the current snapshot's signed root and freshness statement — never to
//! an older one. This is the invariant the generation-keyed cache exists
//! to uphold: epochs alone cannot key the cache (a freshness refresh
//! changes the served bytes without advancing the epoch), so the cell's
//! publication generation must.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::StatusServer;
use ritm_crypto::digest::Digest20;
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, FreshnessStatement, MirrorDictionary, SerialNumber};
use ritm_proto::{RitmResponse, PROTOCOL_VERSION};

const DELTA: u64 = 10;
const T0: u64 = 1_000_000;

/// One step of the interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Insert `n` fresh serials and publish the new snapshot (epoch and
    /// generation both advance).
    Batch(u8),
    /// Republish with a new freshness statement, same epoch and tree
    /// (only the generation advances — the adversarial case).
    Refresh,
    /// Serve one serial through the encoded cache and check its root.
    Serve(u8),
    /// Serve a 3-cert single-CA chain through the encoded multi cache.
    ServeChain(u8, bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1..8u8).prop_map(Op::Batch),
        Just(Op::Refresh),
        (0..96u8).prop_map(Op::Serve),
        ((0..96u8), any::<bool>()).prop_map(|(s, c)| Op::ServeChain(s, c)),
    ]
}

/// Decodes a cached shared body (`kind ‖ fields`) the way a peer would:
/// prefix the envelope version byte and run the normal body decoder.
fn decode_shared(body: &[u8]) -> RitmResponse {
    let mut framed = Vec::with_capacity(1 + body.len());
    framed.push(PROTOCOL_VERSION);
    framed.extend_from_slice(body);
    RitmResponse::decode_body(&framed).expect("cached body must decode")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cached_encoded_responses_are_never_stale(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut rng = StdRng::seed_from_u64(61);
        let mut ca = CaDictionary::new(
            CaId::from_name("EncPropCA"),
            SigningKey::from_seed([6u8; 32]),
            DELTA,
            64,
            &mut rng,
            T0,
        );
        let ca_id = ca.ca();
        let mut m =
            MirrorDictionary::new(ca_id, ca.verifying_key(), *ca.signed_root()).unwrap();
        m.set_delta(DELTA);
        let server = StatusServer::new();
        prop_assert!(server.publish(m.snapshot()));

        let mut now = T0;
        let mut next_serial = 0u32;
        for op in ops {
            match op {
                Op::Batch(n) => {
                    now += 1;
                    let serials: Vec<SerialNumber> = (0..n as u32)
                        .map(|i| SerialNumber::from_u24(next_serial + i))
                        .collect();
                    next_serial += n as u32;
                    let iss = ca.insert(&serials, &mut rng, now).unwrap();
                    m.apply_issuance(&iss, now).unwrap();
                    prop_assert!(server.publish(m.snapshot()));
                }
                Op::Refresh => {
                    now += 1;
                    let snap = server.snapshot(&ca_id).unwrap();
                    let fresher =
                        FreshnessStatement::new(Digest20::hash(now.to_be_bytes()));
                    prop_assert!(server.publish_refresh(
                        &ca_id,
                        *snap.signed_root(),
                        fresher
                    ));
                }
                Op::Serve(s) => {
                    let serial = SerialNumber::from_u24(s as u32);
                    let body = server.encoded_status(&ca_id, &serial).unwrap();
                    let RitmResponse::Status(payload) = decode_shared(&body) else {
                        panic!("expected a status response");
                    };
                    let current = server.snapshot(&ca_id).unwrap();
                    prop_assert_eq!(
                        &payload.statuses[0].signed_root,
                        current.signed_root(),
                        "cached root is stale"
                    );
                    prop_assert_eq!(
                        &payload.statuses[0].freshness,
                        current.freshness(),
                        "cached freshness is stale"
                    );
                }
                Op::ServeChain(s, compress) => {
                    let chain: Vec<(CaId, SerialNumber)> = (0..3u32)
                        .map(|i| (ca_id, SerialNumber::from_u24(s as u32 + i)))
                        .collect();
                    let body =
                        server.encoded_multi_status(&chain, compress).unwrap();
                    let RitmResponse::Status(payload) = decode_shared(&body) else {
                        panic!("expected a status response");
                    };
                    let current = server.snapshot(&ca_id).unwrap();
                    // Leaf status and (if compressed) the multi entry must
                    // both carry the live root and freshness.
                    prop_assert_eq!(
                        &payload.statuses[0].signed_root,
                        current.signed_root()
                    );
                    prop_assert_eq!(
                        &payload.statuses[0].freshness,
                        current.freshness()
                    );
                    for multi in &payload.multi {
                        prop_assert_eq!(&multi.signed_root, current.signed_root());
                        prop_assert_eq!(&multi.freshness, current.freshness());
                    }
                }
            }
        }
    }
}
