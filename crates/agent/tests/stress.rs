//! Concurrency stress tests for the RA's shared state: the Eq. 4 connection
//! table is hit from many packet-processing threads in a production
//! middlebox, so it must stay consistent under contention.

use ritm_agent::state::{Stage, StateTable};
use ritm_dictionary::{CaId, SerialNumber};
use ritm_net::tcp::{FourTuple, SocketAddr};

fn tuple(thread_id: u16, conn: u16) -> FourTuple {
    FourTuple {
        client: SocketAddr::new(0x0a00_0000 + thread_id as u32, conn),
        server: SocketAddr::new(2, 443),
    }
}

#[test]
fn state_table_survives_contention() {
    let table = StateTable::new();
    const THREADS: u16 = 8;
    const CONNS: u16 = 500;

    std::thread::scope(|s| {
        for th in 0..THREADS {
            let table = &table;
            s.spawn(move || {
                for conn in 0..CONNS {
                    let t = tuple(th, conn);
                    table.insert(t);
                    table.update(&t, |st| {
                        st.stage = Stage::ServerHello;
                        st.ca = Some(CaId::from_name("StressCA"));
                        st.serial = Some(SerialNumber::from_u24(conn as u32));
                        st.last_status = 1_000 + conn as u64;
                    });
                    assert!(table.contains(&t));
                    // Every other connection closes immediately.
                    if conn % 2 == 0 {
                        assert!(table.remove(&t).is_some());
                    }
                }
            });
        }
    });

    // Exactly the odd connections remain, each with its final state.
    assert_eq!(table.len(), (THREADS as usize) * (CONNS as usize) / 2);
    for th in 0..THREADS {
        for conn in (1..CONNS).step_by(2) {
            let st = table.get(&tuple(th, conn)).expect("odd connections kept");
            assert_eq!(st.stage, Stage::ServerHello);
            assert_eq!(st.serial, Some(SerialNumber::from_u24(conn as u32)));
            assert_eq!(st.last_status, 1_000 + conn as u64);
        }
    }
}

#[test]
fn concurrent_eviction_is_linearizable() {
    let table = StateTable::new();
    for conn in 0..1_000u16 {
        let t = tuple(0, conn);
        table.insert(t);
        table.update(&t, |st| st.last_status = conn as u64 + 1);
    }
    std::thread::scope(|s| {
        // Evictors and writers race.
        for _ in 0..4 {
            let table = &table;
            s.spawn(move || {
                table.evict_idle(501);
            });
        }
        let table = &table;
        s.spawn(move || {
            for conn in 0..1_000u16 {
                table.update(&tuple(0, conn), |st| st.stage = Stage::Established);
            }
        });
    });
    // Everything below the cutoff is gone (writers never resurrect entries).
    for conn in 0..500u16 {
        assert!(
            !table.contains(&tuple(0, conn)),
            "conn {conn} must be evicted"
        );
    }
    for conn in 500..1_000u16 {
        assert!(table.contains(&tuple(0, conn)), "conn {conn} must survive");
    }
}
