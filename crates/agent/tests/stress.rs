//! Concurrency stress tests for the RA's shared state: the Eq. 4 connection
//! table is hit from many packet-processing threads in a production
//! middlebox, so it must stay consistent under contention — and the
//! snapshot-published proof path must serve concurrent readers correct,
//! monotonically-fresh statuses while a writer applies revocation batches.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::ra::{RaConfig, RevocationAgent};
use ritm_agent::state::{Stage, StateTable};
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, SerialNumber};
use ritm_net::tcp::{FourTuple, SocketAddr};
use std::sync::atomic::{AtomicU64, Ordering};

fn tuple(thread_id: u16, conn: u16) -> FourTuple {
    FourTuple {
        client: SocketAddr::new(0x0a00_0000 + thread_id as u32, conn),
        server: SocketAddr::new(2, 443),
    }
}

#[test]
fn state_table_survives_contention() {
    let table = StateTable::new();
    const THREADS: u16 = 8;
    const CONNS: u16 = 500;

    std::thread::scope(|s| {
        for th in 0..THREADS {
            let table = &table;
            s.spawn(move || {
                for conn in 0..CONNS {
                    let t = tuple(th, conn);
                    table.insert(t);
                    table.update(&t, |st| {
                        st.stage = Stage::ServerHello;
                        st.ca = Some(CaId::from_name("StressCA"));
                        st.serial = Some(SerialNumber::from_u24(conn as u32));
                        st.last_status = 1_000 + conn as u64;
                    });
                    assert!(table.contains(&t));
                    // Every other connection closes immediately.
                    if conn % 2 == 0 {
                        assert!(table.remove(&t).is_some());
                    }
                }
            });
        }
    });

    // Exactly the odd connections remain, each with its final state.
    assert_eq!(table.len(), (THREADS as usize) * (CONNS as usize) / 2);
    for th in 0..THREADS {
        for conn in (1..CONNS).step_by(2) {
            let st = table.get(&tuple(th, conn)).expect("odd connections kept");
            assert_eq!(st.stage, Stage::ServerHello);
            assert_eq!(st.serial, Some(SerialNumber::from_u24(conn as u32)));
            assert_eq!(st.last_status, 1_000 + conn as u64);
        }
    }
}

#[test]
fn snapshot_readers_race_one_writer_without_stale_roots() {
    // One writer revokes in batches and republishes snapshots; N reader
    // threads serve proofs from the shared StatusServer the whole time.
    // Invariants checked on every read:
    //  * the composed status always verifies against its own signed root;
    //  * no reader ever observes a root older than one it already saw
    //    (per-reader monotonicity);
    //  * no reader ever observes a root older than the writer's latest
    //    *published* batch (no stale root past the swap).
    const BATCHES: u64 = 30;
    const BATCH_SIZE: u32 = 20;
    const READERS: usize = 8;
    const T0: u64 = 1_000_000;

    let mut rng = StdRng::seed_from_u64(97);
    let mut ca = CaDictionary::new(
        CaId::from_name("RaceCA"),
        SigningKey::from_seed([4u8; 32]),
        10,
        1 << 12,
        &mut rng,
        T0,
    );
    let ca_id = ca.ca();
    let ca_key = ca.verifying_key();
    let mut ra: RevocationAgent = RevocationAgent::new(RaConfig::default());
    ra.follow_ca(ca_id, ca_key, *ca.signed_root()).unwrap();

    let server = ra.status_server();
    // Size of the newest batch the writer has *published* (guard dropped).
    let published = AtomicU64::new(0);
    let done = AtomicU64::new(0);

    std::thread::scope(|s| {
        let published = &published;
        let done = &done;
        let server_ref = &server;

        s.spawn(move || {
            for b in 0..BATCHES {
                let serials: Vec<SerialNumber> = (0..BATCH_SIZE)
                    .map(|i| SerialNumber::from_u24(b as u32 * BATCH_SIZE + i))
                    .collect();
                let now = T0 + b + 1;
                let iss = ca.insert(&serials, &mut rng, now).expect("fresh serials");
                ra.mirror_mut(&ca_id)
                    .expect("mirrored")
                    .apply_issuance(&iss, now)
                    .expect("valid issuance");
                // The mirror_mut guard dropped: the snapshot is published.
                published.store((b + 1) * BATCH_SIZE as u64, Ordering::SeqCst);
            }
            done.store(1, Ordering::SeqCst);
        });

        for r in 0..READERS {
            s.spawn(move || {
                let mut newest_seen = 0u64;
                let mut query = r as u32; // start readers on different serials
                let mut reads = 0u64;
                loop {
                    let floor = published.load(Ordering::SeqCst);
                    let finished = done.load(Ordering::SeqCst) == 1;
                    let serial = SerialNumber::from_u24(query % (BATCHES as u32 * BATCH_SIZE));
                    let status = server_ref
                        .status_for(&ca_id, &serial)
                        .expect("CA is mirrored");
                    let size = status.signed_root.size;
                    assert!(
                        size >= floor,
                        "stale root served past the swap: size {size} < published {floor}"
                    );
                    assert!(
                        size >= newest_seen,
                        "root regressed for one reader: {size} < {newest_seen}"
                    );
                    newest_seen = size;
                    // Full client-side validation at the status's own time:
                    // signature, proof against root, freshness.
                    let now = status.signed_root.timestamp + 1;
                    let outcome = status
                        .validate(&serial, &ca_key, 10, now)
                        .expect("served status must verify");
                    // Every serial below the root's size is revoked.
                    assert_eq!(
                        outcome.is_revoked(),
                        u64::from(query % (BATCHES as u32 * BATCH_SIZE)) < size
                    );
                    query = query.wrapping_add(7);
                    reads += 1;
                    if finished && reads >= 200 {
                        break;
                    }
                }
                assert!(newest_seen >= BATCHES * BATCH_SIZE as u64 / 2);
            });
        }
    });

    // After the race every reader saw the final epoch's data eventually;
    // the cache served hot serials across readers.
    let stats = server.cache_stats();
    assert!(stats.hits + stats.misses > 0);
    let final_snap = server.snapshot(&ca_id).expect("published");
    assert_eq!(final_snap.len() as u64, BATCHES * BATCH_SIZE as u64);
}

#[test]
fn concurrent_eviction_is_linearizable() {
    let table = StateTable::new();
    for conn in 0..1_000u16 {
        let t = tuple(0, conn);
        table.insert(t);
        table.update(&t, |st| st.last_status = conn as u64 + 1);
    }
    std::thread::scope(|s| {
        // Evictors and writers race.
        for _ in 0..4 {
            let table = &table;
            s.spawn(move || {
                table.evict_idle(501);
            });
        }
        let table = &table;
        s.spawn(move || {
            for conn in 0..1_000u16 {
                table.update(&tuple(0, conn), |st| st.stage = Stage::Established);
            }
        });
    });
    // Everything below the cutoff is gone (writers never resurrect entries).
    for conn in 0..500u16 {
        assert!(
            !table.contains(&tuple(0, conn)),
            "conn {conn} must be evicted"
        );
    }
    for conn in 500..1_000u16 {
        assert!(table.contains(&tuple(0, conn)), "conn {conn} must survive");
    }
}
