//! # ritm-agent — the Revocation Agent middlebox (paper §III, §VI)
//!
//! The RA is RITM's central component: an in-path middlebox that
//!
//! * mirrors CA dictionaries by pulling from the CDN every Δ ([`sync`]),
//! * inspects TLS traffic with a two-stage DPI ([`dpi`]),
//! * tracks supported connections in the Eq. (4) state table ([`state`]),
//! * piggybacks revocation statuses onto server→client traffic — once at
//!   ServerHello time and then at least every Δ — adjusting TCP sequence
//!   numbers for the injected bytes ([`ra`]),
//! * and monitors CAs for equivocation ([`monitor`]).

pub mod dpi;
pub mod monitor;
pub mod ra;
pub mod state;
pub mod sync;

pub use dpi::{classify, Classification, ServerFlight};
pub use monitor::{ConsistencyMonitor, MisbehaviorReport};
pub use ra::{RaConfig, RaStats, RevocationAgent, StatusPayload};
pub use state::{ConnState, Stage, StateTable};
pub use sync::SyncReport;
