//! # ritm-agent — the Revocation Agent middlebox (paper §III, §VI)
//!
//! The RA is RITM's central component: an in-path middlebox that
//!
//! * mirrors CA dictionaries by pulling from the CDN every Δ ([`sync`]),
//! * inspects TLS traffic with a two-stage DPI ([`dpi`]),
//! * tracks supported connections in the Eq. (4) state table ([`state`]),
//! * piggybacks revocation statuses onto server→client traffic — once at
//!   ServerHello time and then at least every Δ — adjusting TCP sequence
//!   numbers for the injected bytes ([`ra`]),
//! * serves proofs lock-free from `Arc`-shared, epoch-stamped dictionary
//!   snapshots ([`serve`]): writers publish a new snapshot per epoch,
//!   readers never block on issuance or refresh,
//! * reuses audit paths for hot serials across concurrent flows through a
//!   concurrent epoch-keyed proof cache ([`cache`]), invalidated exactly
//!   when the mirrored root advances,
//! * exposes that read path as a wire-protocol endpoint ([`service`])
//!   servable over any `ritm-proto` transport,
//! * and monitors CAs for equivocation and its own cache health
//!   ([`monitor`]).
//!
//! The sync path speaks only the versioned `ritm-proto` envelopes: see
//! [`RevocationAgent::sync_via`] and the `StatusPayload` re-export (the
//! payload type itself now lives in `ritm-proto`, where every wire format
//! belongs).

pub mod cache;
pub mod dpi;
pub mod intercept;
pub mod monitor;
pub mod persist;
pub mod ra;
pub mod serve;
pub mod service;
pub mod state;
pub mod sync;

pub use cache::{CacheStats, EpochKeyedCache, ProofCache, ShardedEpochCache, ShardedProofCache};
pub use dpi::{classify, classify_records, Classification, ServerFlight, StreamClassifier};
pub use intercept::{FlowStage, FlowTable, InterceptConfig, InterceptStats, TcpBuffer};
pub use monitor::{ConsistencyMonitor, MisbehaviorReport, RaHealthReport};
pub use persist::{MirrorSnapshot, ResumeError};
pub use ra::{MirrorWriteGuard, RaConfig, RaStats, RevocationAgent, StatusPayload};
pub use serve::StatusServer;
pub use service::StatusService;
pub use state::{ConnState, Stage, StateTable};
pub use sync::{RetryPolicy, SyncPolicy, SyncReport};
