//! The Revocation Agent — RITM's middlebox (paper §III "Validation", §VI).
//!
//! The RA watches TCP segments on its path. For RITM-supported TLS
//! connections it tracks Eq. (4) state, extracts the server certificate
//! from the handshake, and piggybacks a [`ritm_dictionary::RevocationStatus`] onto
//! server-to-client traffic: once on the ServerHello flight (step 4) and
//! then at least every Δ for the connection's lifetime (step 6). All other
//! traffic is forwarded untouched.

use crate::dpi::{classify, Classification};
use crate::serve::StatusServer;
use crate::state::{Stage, StateTable};
use ritm_cdn::regions::Region;
use ritm_dictionary::{
    CaId, FreshnessStatement, MirrorDictionary, MirrorEngine, SerialNumber, SignedRoot,
};
use ritm_net::middlebox::Middlebox;
use ritm_net::tcp::{Direction, TcpSegment};
use ritm_net::time::{SimDuration, SimTime};
pub use ritm_proto::StatusPayload;
use ritm_tls::record::{ContentType, TlsRecord};
use std::collections::HashMap;
use std::sync::Arc;

/// RA configuration.
#[derive(Debug, Clone)]
pub struct RaConfig {
    /// Dissemination period Δ in seconds.
    pub delta: u64,
    /// Region (decides which edge server the RA pulls from and how its
    /// traffic is billed).
    pub region: Region,
    /// Prove the whole chain instead of just the leaf (§VIII "Certificate
    /// chains").
    pub prove_full_chain: bool,
    /// Compress same-CA chain runs into one
    /// [`ritm_dictionary::MultiRevocationStatus`]
    /// (shared multiproof + single root/freshness) instead of independent
    /// statuses. Only affects chains of ≥2 certificates.
    pub compress_chain_proofs: bool,
}

impl Default for RaConfig {
    fn default() -> Self {
        RaConfig {
            delta: 10,
            region: Region::Europe,
            prove_full_chain: false,
            compress_chain_proofs: true,
        }
    }
}

/// Counters the RA keeps (feeds the §VII-D throughput discussion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RaStats {
    /// Non-TLS packets forwarded on the fast path.
    pub non_tls_packets: u64,
    /// TLS packets inspected.
    pub tls_packets: u64,
    /// RITM-supported connections tracked.
    pub supported_connections: u64,
    /// Revocation statuses injected.
    pub statuses_sent: u64,
    /// Statuses from upstream RAs left in place (multi-RA rule, §VIII).
    pub statuses_left_in_place: u64,
    /// Stale upstream statuses replaced with fresher ones (multi-RA rule).
    pub statuses_replaced: u64,
}

/// The Revocation Agent, generic over the mirror engine it runs
/// ([`MirrorDictionary`] by default); the RA code depends only on the
/// [`MirrorEngine`] trait, so alternative backends (sharded mirrors,
/// disk-backed stores) slot in without touching the packet path.
///
/// # Read/write split
///
/// The RA is the *writer*: it owns the mirrors and applies issuances and
/// refreshes through [`RevocationAgent::mirror_mut`], whose guard
/// republishes an immutable [`ritm_dictionary::DictionarySnapshot`] on
/// drop. Proof serving is the *read* side, delegated to an `Arc`-shared
/// [`StatusServer`] ([`RevocationAgent::status_server`]): `build_status`
/// works from `&self`, and any number of threads holding the server handle
/// can serve concurrent handshake flows without ever blocking on (or
/// being blocked by) dictionary updates.
pub struct RevocationAgent<M: MirrorEngine = MirrorDictionary> {
    /// Configuration.
    pub config: RaConfig,
    pub(crate) mirrors: HashMap<CaId, M>,
    /// The lock-free read side: per-CA snapshot cells + shared proof cache.
    server: Arc<StatusServer>,
    /// Eq. (4) connection table.
    pub table: StateTable,
    /// Session-id → certificate identity, learned from full handshakes, so
    /// *resumed* connections (which never carry a Certificate message) can
    /// still be served statuses (§III, "RITM supports two mechanisms of TLS
    /// resumption").
    session_cache: HashMap<Vec<u8>, (CaId, SerialNumber)>,
    /// Operational counters.
    pub stats: RaStats,
}

impl<M: MirrorEngine> core::fmt::Debug for RevocationAgent<M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RevocationAgent")
            .field("mirrors", &self.mirrors.len())
            .field("connections", &self.table.len())
            .field("proof_cache", &self.server.cache_stats())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Write access to one mirror, handed out by
/// [`RevocationAgent::mirror_mut`]. On drop, if the mirror's epoch, signed
/// root, or freshness changed, the guard builds a fresh snapshot **off the
/// read path** and publishes it RCU-style — readers keep serving the old
/// snapshot until the swap and never observe a half-applied update.
pub struct MirrorWriteGuard<'a, M: MirrorEngine> {
    mirror: &'a mut M,
    server: Arc<StatusServer>,
    before: (u64, SignedRoot, FreshnessStatement),
}

impl<M: MirrorEngine> core::ops::Deref for MirrorWriteGuard<'_, M> {
    type Target = M;

    fn deref(&self) -> &M {
        self.mirror
    }
}

impl<M: MirrorEngine> core::ops::DerefMut for MirrorWriteGuard<'_, M> {
    fn deref_mut(&mut self) -> &mut M {
        self.mirror
    }
}

impl<M: MirrorEngine> Drop for MirrorWriteGuard<'_, M> {
    fn drop(&mut self) {
        // Never publish while unwinding: the mirror may be mid-mutation,
        // and snapshotting a half-applied state would hand every reader
        // proofs that no longer match the published root (or double-panic).
        if std::thread::panicking() {
            return;
        }
        let after = (
            self.mirror.epoch(),
            *self.mirror.current_signed_root(),
            *self.mirror.current_freshness(),
        );
        if after == self.before {
            return;
        }
        if after.0 == self.before.0 {
            // Same epoch ⇒ the tree (and every audit path) is unchanged:
            // a freshness-only refresh or root rotation. Republish sharing
            // the already-frozen tree; if the cell rejects it as stale (or
            // the CA was never published), fall through to a full publish,
            // which with the structurally-shared tree is itself only
            // O(chunks) Arc bumps.
            if self
                .server
                .publish_refresh(&self.mirror.engine_ca(), after.1, after.2)
            {
                return;
            }
        }
        let installed = self.server.publish(self.mirror.snapshot());
        // This RA is the only writer for its mirrors and mirror epochs are
        // monotonic, so the writer's own publish is never stale.
        debug_assert!(installed, "writer's own snapshot rejected as stale");
    }
}

impl RevocationAgent<MirrorDictionary> {
    /// Creates an RA over in-memory [`MirrorDictionary`] mirrors — the
    /// default engine. (Defined on the concrete default so plain
    /// `RevocationAgent::new(..)` call sites infer the engine type.)
    pub fn new(config: RaConfig) -> Self {
        Self::with_engine(config)
    }
}

impl<M: MirrorEngine> RevocationAgent<M> {
    /// Creates an RA with no mirrored dictionaries yet, over any
    /// [`MirrorEngine`] backend.
    pub fn with_engine(config: RaConfig) -> Self {
        RevocationAgent {
            config,
            mirrors: HashMap::new(),
            server: Arc::new(StatusServer::new()),
            table: StateTable::new(),
            session_cache: HashMap::new(),
            stats: RaStats::default(),
        }
    }

    /// Starts mirroring a CA's dictionary (bootstrap via manifest, §VIII)
    /// and publishes its genesis snapshot for readers.
    ///
    /// # Errors
    ///
    /// Propagates [`ritm_dictionary::UpdateError`] if the genesis root does
    /// not verify.
    pub fn follow_ca(
        &mut self,
        ca: CaId,
        key: ritm_crypto::ed25519::VerifyingKey,
        genesis: ritm_dictionary::SignedRoot,
    ) -> Result<(), ritm_dictionary::UpdateError> {
        let mut mirror = M::bootstrap(ca, key, genesis)?;
        mirror.set_delta(self.config.delta);
        self.install_mirror(ca, mirror);
        Ok(())
    }

    /// Installs an already-built mirror (harnesses delivering state out of
    /// band — warm standbys, tests, experiments) and publishes its current
    /// snapshot. Any previously-cached proofs for the CA are purged: a
    /// fresh mirror restarts its epoch counter, and leftover higher-epoch
    /// entries would otherwise shadow the new epochs.
    pub fn install_mirror(&mut self, ca: CaId, mirror: M) {
        if self.mirrors.contains_key(&ca) {
            self.server.retire(&ca);
        }
        // The cell was just retired (or never existed), so this publish
        // creates it and cannot be rejected as stale.
        let installed = self.server.publish(mirror.snapshot());
        debug_assert!(installed, "fresh mirror's snapshot rejected as stale");
        self.mirrors.insert(ca, mirror);
    }

    /// Read access to a mirror.
    pub fn mirror(&self, ca: &CaId) -> Option<&M> {
        self.mirrors.get(ca)
    }

    /// Write access to a mirror — used by the sync module and by harnesses
    /// that deliver updates out of band (tests, experiments). The returned
    /// guard republishes the CA's snapshot on drop if anything changed, so
    /// concurrent readers pick up the new epoch at the next load.
    pub fn mirror_mut(&mut self, ca: &CaId) -> Option<MirrorWriteGuard<'_, M>> {
        let server = Arc::clone(&self.server);
        let mirror = self.mirrors.get_mut(ca)?;
        let before = (
            mirror.epoch(),
            *mirror.current_signed_root(),
            *mirror.current_freshness(),
        );
        Some(MirrorWriteGuard {
            mirror,
            server,
            before,
        })
    }

    /// CAs currently mirrored.
    pub fn followed_cas(&self) -> impl Iterator<Item = &CaId> {
        self.mirrors.keys()
    }

    /// The `Arc`-shared lock-free read side. Clone the handle into as many
    /// threads as needed; each serves statuses from the latest published
    /// snapshots while this RA keeps applying updates.
    pub fn status_server(&self) -> Arc<StatusServer> {
        Arc::clone(&self.server)
    }

    /// Proof-cache counter snapshot (also surfaced via
    /// [`crate::monitor::RaHealthReport`]).
    pub fn proof_cache_stats(&self) -> crate::cache::CacheStats {
        self.server.cache_stats()
    }

    /// Builds the status payload for a chain of `(issuer, serial)` pairs.
    /// Returns `None` when the leaf's CA is not mirrored (the RA then stays
    /// silent rather than injecting garbage).
    ///
    /// Works from `&self`: proofs are served from the published snapshots
    /// through the epoch-keyed proof cache, so read-only callers (and any
    /// thread holding [`RevocationAgent::status_server`]) never contend
    /// with mirror updates. The signed root and freshness compose from the
    /// same snapshot as the proof, so the status always verifies against
    /// its own root.
    pub fn build_status(&self, chain: &[(CaId, SerialNumber)]) -> Option<StatusPayload> {
        if chain.is_empty() {
            return None;
        }
        let certs: &[(CaId, SerialNumber)] = if self.config.prove_full_chain {
            chain
        } else {
            &chain[..1]
        };
        self.server
            .build_status(certs, self.config.compress_chain_proofs)
    }

    /// Handles the multi-RA rule (§VIII): given the TLS records of a
    /// server→client payload, decide whether to add our status, replace an
    /// upstream RA's, or leave it alone. Returns the rebuilt payload and
    /// the number of bytes the payload grew by.
    fn inject_status(&mut self, records: Vec<TlsRecord>, payload: StatusPayload) -> (Vec<u8>, i64) {
        let our_root = *payload.primary_root().expect("non-empty payload");
        let mut records = records;
        let mut existing: Option<(usize, StatusPayload)> = None;
        for (i, rec) in records.iter().enumerate() {
            if rec.content_type == ContentType::RitmStatus {
                if let Ok(p) = StatusPayload::from_bytes(&rec.payload) {
                    if p.primary_root().is_some() {
                        existing = Some((i, p));
                        break;
                    }
                }
            }
        }
        let before: usize = records.iter().map(TlsRecord::encoded_len).sum();
        match existing {
            Some((i, theirs)) => {
                let their_root = *theirs.primary_root().expect("checked non-empty");
                // "replaces a revocation status only if its own version of
                // the dictionary is more recent".
                let ours_newer = our_root.size > their_root.size
                    || (our_root.size == their_root.size
                        && our_root.timestamp > their_root.timestamp);
                if ours_newer {
                    records[i] = TlsRecord::new(ContentType::RitmStatus, payload.to_bytes());
                    self.stats.statuses_replaced += 1;
                } else {
                    self.stats.statuses_left_in_place += 1;
                }
            }
            None => {
                // Prepend rather than append: in an abbreviated handshake
                // the same flight carries the server Finished, and the
                // client must see the status before it deems the handshake
                // complete (it buffers statuses that precede the
                // Certificate, so prepending is safe for full handshakes
                // too).
                records.insert(
                    0,
                    TlsRecord::new(ContentType::RitmStatus, payload.to_bytes()),
                );
                self.stats.statuses_sent += 1;
            }
        }
        let rebuilt = TlsRecord::encode_stream(&records);
        let delta = rebuilt.len() as i64 - before as i64;
        (rebuilt, delta)
    }

    fn handle_segment(&mut self, mut seg: TcpSegment, now: SimTime) -> Vec<TcpSegment> {
        let now_secs = now.as_secs();
        let tuple = seg.tuple;
        let tracked = self.table.contains(&tuple);

        // Teardown first: forward the FIN/RST (translated) and drop state.
        let closing = seg.flags.fin || seg.flags.rst;

        let class = classify(&seg.payload);
        match (&class, seg.direction) {
            (Classification::NotTls, _) => {
                self.stats.non_tls_packets += 1;
            }
            _ => {
                self.stats.tls_packets += 1;
            }
        }

        match (class, seg.direction) {
            (Classification::ClientHello { ritm: true, .. }, Direction::ToServer)
                // §III step 2: create Eq. (4) state; pass the ClientHello on
                // unchanged.
                if !tracked => {
                    self.table.insert(tuple);
                    self.stats.supported_connections += 1;
                }
            (Classification::ServerFlight(flight), Direction::ToClient) if tracked => {
                // §III step 4: extract CA + serial, build and append status.
                // For an abbreviated (resumed) handshake no certificate is
                // on the wire, so fall back to the session cache.
                let identity = match flight.leaf {
                    Some((ca, serial)) => {
                        if !flight.session_id.is_empty() {
                            self.session_cache
                                .insert(flight.session_id.clone(), (ca, serial));
                        }
                        Some((ca, serial))
                    }
                    None => self.session_cache.get(&flight.session_id).copied(),
                };
                if let Some((ca, serial)) = identity {
                    self.table.update(&tuple, |s| {
                        s.ca = Some(ca);
                        s.serial = Some(serial);
                        s.stage = Stage::ServerHello;
                    });
                    let chain = if flight.chain.is_empty() {
                        vec![(ca, serial)]
                    } else {
                        flight.chain.clone()
                    };
                    if let Some(payload) = self.build_status(&chain) {
                        if let Ok(records) = TlsRecord::parse_stream(&seg.payload) {
                            // Translate with the *pre-injection* offset, then
                            // grow the payload and account for the growth.
                            self.table.update(&tuple, |s| s.translator.translate(&mut seg));
                            let (rebuilt, grew) = self.inject_status(records, payload);
                            seg.payload = rebuilt;
                            if grew > 0 {
                                self.table.update(&tuple, |s| {
                                    s.translator.record_injection(grew as usize);
                                    s.last_status = now_secs;
                                });
                            }
                            if closing {
                                self.table.remove(&tuple);
                            }
                            return vec![seg];
                        }
                    }
                } else if !flight.session_id.is_empty() {
                    self.table.update(&tuple, |s| s.stage = Stage::ServerHello);
                }
            }
            (Classification::Finished, Direction::ToClient) if tracked => {
                // §III step 6: server Finished → connection established.
                self.table.update(&tuple, |s| s.stage = Stage::Established);
            }
            (_, Direction::ToClient) if tracked => {
                // §III step 6: piggyback a fresh status every Δ on the first
                // server→client packet past the deadline.
                let due = self.table.get(&tuple).is_some_and(|s| {
                    s.stage == Stage::Established
                        && s.last_status > 0
                        && now_secs.saturating_sub(s.last_status) >= self.config.delta
                });
                if due {
                    let chain = self.table.get(&tuple).and_then(|s| {
                        s.ca.zip(s.serial).map(|(ca, sn)| vec![(ca, sn)])
                    });
                    if let Some(chain) = chain {
                        if let Some(payload) = self.build_status(&chain) {
                            if let Ok(records) = TlsRecord::parse_stream(&seg.payload) {
                                self.table.update(&tuple, |s| s.translator.translate(&mut seg));
                                let (rebuilt, grew) = self.inject_status(records, payload);
                                seg.payload = rebuilt;
                                if grew > 0 {
                                    self.table.update(&tuple, |s| {
                                        s.translator.record_injection(grew as usize);
                                        s.last_status = now_secs;
                                    });
                                }
                                if closing {
                                    self.table.remove(&tuple);
                                }
                                return vec![seg];
                            }
                        }
                    }
                }
            }
            _ => {}
        }

        // Default path: translate sequence numbers if we ever injected, and
        // forward.
        if tracked {
            self.table
                .update(&tuple, |s| s.translator.translate(&mut seg));
        }
        if closing {
            self.table.remove(&tuple);
        }
        vec![seg]
    }
}

impl<M: MirrorEngine> Middlebox for RevocationAgent<M> {
    fn process(&mut self, segment: TcpSegment, now: SimTime) -> Vec<TcpSegment> {
        self.handle_segment(segment, now)
    }

    fn processing_delay(&self, segment: &TcpSegment) -> SimDuration {
        // Charged per Table III: TLS detection ~3 µs on every packet;
        // handshake packets of supported connections additionally pay
        // certificate parsing (~20 µs) and proof construction (~67 µs).
        if !ritm_tls::record::looks_like_tls(&segment.payload) {
            SimDuration::from_micros(3)
        } else if self.table.contains(&segment.tuple) {
            SimDuration::from_micros(3 + 20 + 67)
        } else {
            SimDuration::from_micros(5)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::CaDictionary;
    use ritm_net::tcp::{FourTuple, SocketAddr, TcpFlags};
    use ritm_tls::extensions::Extension;
    use ritm_tls::handshake::{ClientHello, HandshakeMessage, ServerHello};

    const T0: u64 = 1_000_000;

    fn tuple() -> FourTuple {
        FourTuple {
            client: SocketAddr::new(1, 9012),
            server: SocketAddr::new(2, 443),
        }
    }

    struct Fixture {
        ca: CaDictionary,
        ra: RevocationAgent,
        rng: StdRng,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(21);
        let mut ca = CaDictionary::new(
            CaId::from_name("CA1"),
            SigningKey::from_seed([1u8; 32]),
            10,
            1 << 16,
            &mut rng,
            T0,
        );
        let mut ra = RevocationAgent::new(RaConfig {
            delta: 10,
            ..Default::default()
        });
        ra.follow_ca(ca.ca(), ca.verifying_key(), *ca.signed_root())
            .unwrap();
        // Revoke a couple of serials and mirror them.
        let serials: Vec<SerialNumber> = (100..110u32).map(SerialNumber::from_u24).collect();
        let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
        ra.mirror_mut(&ca.ca())
            .unwrap()
            .apply_issuance(&iss, T0 + 1)
            .unwrap();
        Fixture { ca, ra, rng }
    }

    fn client_hello_segment(ritm: bool) -> TcpSegment {
        let mut extensions = vec![];
        if ritm {
            extensions.push(Extension::ritm_request());
        }
        let msg = HandshakeMessage::ClientHello(ClientHello {
            version: 0x0303,
            random: [1u8; 32],
            session_id: vec![],
            cipher_suites: vec![0xc02f],
            extensions,
        });
        let rec = TlsRecord::new(ContentType::Handshake, HandshakeMessage::encode_all(&[msg]));
        TcpSegment::data(tuple(), Direction::ToServer, 0, 0, rec.to_bytes())
    }

    fn server_flight_segment(ca: &CaDictionary, serial: u32) -> TcpSegment {
        let cert = ritm_tls::certificate::Certificate::issue(
            &SigningKey::from_seed([1u8; 32]),
            ca.ca(),
            SerialNumber::from_u24(serial),
            "example.com",
            0,
            u64::MAX,
            SigningKey::from_seed([2u8; 32]).verifying_key(),
            false,
        );
        let msgs = [
            HandshakeMessage::ServerHello(ServerHello {
                version: 0x0303,
                random: [2u8; 32],
                session_id: vec![5; 32],
                cipher_suite: 0xc02f,
                extensions: vec![],
            }),
            HandshakeMessage::Certificate(ritm_tls::certificate::CertificateChain(vec![cert])),
            HandshakeMessage::ServerHelloDone,
        ];
        let rec = TlsRecord::new(ContentType::Handshake, HandshakeMessage::encode_all(&msgs));
        TcpSegment::data(tuple(), Direction::ToClient, 0, 0, rec.to_bytes())
    }

    fn extract_status(seg: &TcpSegment) -> Option<StatusPayload> {
        let records = TlsRecord::parse_stream(&seg.payload).ok()?;
        records
            .iter()
            .find(|r| r.content_type == ContentType::RitmStatus)
            .and_then(|r| StatusPayload::from_bytes(&r.payload).ok())
    }

    #[test]
    fn client_hello_creates_state() {
        let mut f = fixture();
        let out =
            f.ra.process(client_hello_segment(true), SimTime::from_secs(T0 + 2));
        assert_eq!(out.len(), 1);
        assert!(f.ra.table.contains(&tuple()));
        assert_eq!(f.ra.stats.supported_connections, 1);
        let s = f.ra.table.get(&tuple()).unwrap();
        assert_eq!(s.stage, Stage::ClientHello);
        assert_eq!(s.last_status, 0);
        assert!(s.ca.is_none() && s.serial.is_none());
    }

    #[test]
    fn non_ritm_client_hello_ignored() {
        let mut f = fixture();
        let out =
            f.ra.process(client_hello_segment(false), SimTime::from_secs(T0 + 2));
        assert_eq!(out.len(), 1);
        assert!(!f.ra.table.contains(&tuple()));
    }

    #[test]
    fn server_flight_gets_status_injected() {
        let mut f = fixture();
        f.ra.process(client_hello_segment(true), SimTime::from_secs(T0 + 2));
        let flight = server_flight_segment(&f.ca, 500); // 500 not revoked
        let before_len = flight.payload.len();
        let out = f.ra.process(flight, SimTime::from_secs(T0 + 2));
        assert_eq!(out.len(), 1);
        assert!(out[0].payload.len() > before_len, "status appended");
        let payload = extract_status(&out[0]).expect("status record present");
        assert_eq!(payload.statuses.len(), 1);
        // The status validates for the presented serial.
        let outcome = payload.statuses[0]
            .validate(
                &SerialNumber::from_u24(500),
                &f.ca.verifying_key(),
                10,
                T0 + 2,
            )
            .unwrap();
        assert!(!outcome.is_revoked());

        // State advanced per Eq. (4).
        let s = f.ra.table.get(&tuple()).unwrap();
        assert_eq!(s.stage, Stage::ServerHello);
        assert_eq!(s.ca, Some(f.ca.ca()));
        assert_eq!(s.serial, Some(SerialNumber::from_u24(500)));
        assert_eq!(s.last_status, T0 + 2);
        assert!(s.translator.injected() > 0);
    }

    #[test]
    fn revoked_serial_gets_presence_proof() {
        let mut f = fixture();
        f.ra.process(client_hello_segment(true), SimTime::from_secs(T0 + 2));
        let out = f.ra.process(
            server_flight_segment(&f.ca, 105), // 105 IS revoked
            SimTime::from_secs(T0 + 2),
        );
        let payload = extract_status(&out[0]).unwrap();
        let outcome = payload.statuses[0]
            .validate(
                &SerialNumber::from_u24(105),
                &f.ca.verifying_key(),
                10,
                T0 + 2,
            )
            .unwrap();
        assert!(outcome.is_revoked(), "client learns the cert is revoked");
    }

    #[test]
    fn untracked_flight_untouched() {
        let mut f = fixture();
        // No ClientHello seen: the RA must not touch the flight.
        let flight = server_flight_segment(&f.ca, 500);
        let out = f.ra.process(flight.clone(), SimTime::from_secs(T0 + 2));
        assert_eq!(out, vec![flight]);
    }

    #[test]
    fn unknown_ca_stays_silent() {
        let mut f = fixture();
        f.ra.process(client_hello_segment(true), SimTime::from_secs(T0 + 2));
        // Flight signed by a CA the RA does not mirror.
        let mut rng = StdRng::seed_from_u64(99);
        let other_ca = CaDictionary::new(
            CaId::from_name("UnknownCA"),
            SigningKey::from_seed([9u8; 32]),
            10,
            64,
            &mut rng,
            T0,
        );
        let cert = ritm_tls::certificate::Certificate::issue(
            &SigningKey::from_seed([9u8; 32]),
            other_ca.ca(),
            SerialNumber::from_u24(1),
            "x.com",
            0,
            u64::MAX,
            SigningKey::from_seed([2u8; 32]).verifying_key(),
            false,
        );
        let msgs = [
            HandshakeMessage::ServerHello(ServerHello {
                version: 0x0303,
                random: [2u8; 32],
                session_id: vec![],
                cipher_suite: 0xc02f,
                extensions: vec![],
            }),
            HandshakeMessage::Certificate(ritm_tls::certificate::CertificateChain(vec![cert])),
        ];
        let rec = TlsRecord::new(ContentType::Handshake, HandshakeMessage::encode_all(&msgs));
        let seg = TcpSegment::data(tuple(), Direction::ToClient, 0, 0, rec.to_bytes());
        let out = f.ra.process(seg.clone(), SimTime::from_secs(T0 + 2));
        assert!(extract_status(&out[0]).is_none(), "no status injected");
    }

    #[test]
    fn periodic_refresh_after_delta() {
        let mut f = fixture();
        f.ra.process(client_hello_segment(true), SimTime::from_secs(T0 + 2));
        f.ra.process(
            server_flight_segment(&f.ca, 500),
            SimTime::from_secs(T0 + 2),
        );
        // Server Finished establishes the connection.
        let fin = TlsRecord::new(
            ContentType::Handshake,
            HandshakeMessage::encode_all(&[HandshakeMessage::Finished([0u8; 12])]),
        );
        f.ra.process(
            TcpSegment::data(tuple(), Direction::ToClient, 900, 0, fin.to_bytes()),
            SimTime::from_secs(T0 + 3),
        );
        assert_eq!(f.ra.table.get(&tuple()).unwrap().stage, Stage::Established);

        // Mirror must stay fresh for the refresh to carry a valid statement.
        let msg = f.ca.refresh(&mut f.rng, T0 + 13);
        f.ra.mirror_mut(&f.ca.ca())
            .unwrap()
            .apply_refresh(&msg, T0 + 13)
            .unwrap();

        // Data packet before Δ elapses: untouched.
        let data = TlsRecord::new(ContentType::ApplicationData, vec![7; 100]);
        let out = f.ra.process(
            TcpSegment::data(tuple(), Direction::ToClient, 1000, 0, data.to_bytes()),
            SimTime::from_secs(T0 + 5),
        );
        assert!(extract_status(&out[0]).is_none());

        // Data packet after Δ: fresh status piggybacked.
        let out = f.ra.process(
            TcpSegment::data(tuple(), Direction::ToClient, 1200, 0, data.to_bytes()),
            SimTime::from_secs(T0 + 13),
        );
        let payload = extract_status(&out[0]).expect("refresh status");
        let outcome = payload.statuses[0]
            .validate(
                &SerialNumber::from_u24(500),
                &f.ca.verifying_key(),
                10,
                T0 + 13,
            )
            .unwrap();
        assert!(!outcome.is_revoked());
        assert_eq!(f.ra.table.get(&tuple()).unwrap().last_status, T0 + 13);
    }

    #[test]
    fn sequence_numbers_translated_after_injection() {
        let mut f = fixture();
        f.ra.process(client_hello_segment(true), SimTime::from_secs(T0 + 2));
        let out = f.ra.process(
            server_flight_segment(&f.ca, 500),
            SimTime::from_secs(T0 + 2),
        );
        let injected = f.ra.table.get(&tuple()).unwrap().translator.injected();
        assert!(injected > 0);
        assert_eq!(out[0].seq, 0, "first flight keeps its seq");

        // Subsequent server→client segment: seq shifted up.
        let data = TlsRecord::new(ContentType::ApplicationData, vec![1; 10]);
        let seg = TcpSegment::data(tuple(), Direction::ToClient, 5000, 42, data.to_bytes());
        let out = f.ra.process(seg, SimTime::from_secs(T0 + 3));
        assert_eq!(out[0].seq, 5000 + injected);

        // Client→server ack: shifted down.
        let ack = TcpSegment::data(tuple(), Direction::ToServer, 42, 6000 + injected, vec![]);
        let out = f.ra.process(ack, SimTime::from_secs(T0 + 3));
        assert_eq!(out[0].ack, 6000);
    }

    #[test]
    fn fin_removes_state() {
        let mut f = fixture();
        f.ra.process(client_hello_segment(true), SimTime::from_secs(T0 + 2));
        assert!(f.ra.table.contains(&tuple()));
        let mut fin = TcpSegment::data(tuple(), Direction::ToServer, 1, 1, vec![]);
        fin.flags = TcpFlags {
            fin: true,
            ..Default::default()
        };
        f.ra.process(fin, SimTime::from_secs(T0 + 4));
        assert!(!f.ra.table.contains(&tuple()));
    }

    #[test]
    fn non_tls_fast_path_counts() {
        let mut f = fixture();
        let seg = TcpSegment::data(tuple(), Direction::ToServer, 0, 0, b"plain http".to_vec());
        let out = f.ra.process(seg.clone(), SimTime::from_secs(T0));
        assert_eq!(out, vec![seg]);
        assert_eq!(f.ra.stats.non_tls_packets, 1);
        assert_eq!(f.ra.stats.tls_packets, 0);
    }

    #[test]
    fn second_ra_leaves_fresher_status_alone() {
        // Two RAs on the path: the downstream one must not duplicate or
        // clobber an equally-fresh status (§VIII "Multiple RAs").
        let mut f = fixture();
        f.ra.process(client_hello_segment(true), SimTime::from_secs(T0 + 2));
        let out = f.ra.process(
            server_flight_segment(&f.ca, 500),
            SimTime::from_secs(T0 + 2),
        );

        // Build a second RA mirroring the same CA at the same version.
        let mut ra2 = RevocationAgent::new(RaConfig {
            delta: 10,
            ..Default::default()
        });
        // Bootstrap ra2 from scratch: genesis + replay.
        let mut rng = StdRng::seed_from_u64(22);
        let mut ca2 = CaDictionary::new(
            CaId::from_name("CA1x"),
            SigningKey::from_seed([1u8; 32]),
            10,
            64,
            &mut rng,
            T0,
        );
        let _ = &mut ca2;
        ra2.follow_ca(
            f.ca.ca(),
            f.ca.verifying_key(),
            f.ca.issuance_since(0).signed_root,
        )
        .err(); // genesis of non-empty dict fails; instead reuse f's mirror
        let mirror = f.ra.mirror(&f.ca.ca()).unwrap().clone();
        ra2.install_mirror(f.ca.ca(), mirror);
        ra2.table.insert(tuple());
        ra2.table.update(&tuple(), |s| {
            s.ca = Some(f.ca.ca());
            s.serial = Some(SerialNumber::from_u24(500));
            s.stage = Stage::ServerHello;
        });

        let before = out[0].payload.len();
        let out2 = ra2.process(out[0].clone(), SimTime::from_secs(T0 + 2));
        assert_eq!(out2[0].payload.len(), before, "no double injection");
        assert_eq!(ra2.stats.statuses_left_in_place, 1);
        assert_eq!(ra2.stats.statuses_sent, 0);
    }

    #[test]
    fn stale_status_replaced_by_fresher_ra() {
        // Upstream RA has an outdated dictionary; downstream RA replaces the
        // status with its fresher one.
        let mut f = fixture();
        // Stale mirror snapshot (version 10 revocations).
        let stale_mirror = f.ra.mirror(&f.ca.ca()).unwrap().clone();

        // CA revokes one more; f.ra catches up, becoming "fresher".
        let iss =
            f.ca.insert(&[SerialNumber::from_u24(999)], &mut f.rng, T0 + 3)
                .unwrap();
        f.ra.mirror_mut(&f.ca.ca())
            .unwrap()
            .apply_issuance(&iss, T0 + 3)
            .unwrap();

        // Upstream (stale) RA injects first.
        let mut stale_ra = RevocationAgent::new(RaConfig {
            delta: 10,
            ..Default::default()
        });
        stale_ra.install_mirror(f.ca.ca(), stale_mirror);
        stale_ra.table.insert(tuple());
        let flight = server_flight_segment(&f.ca, 999);
        let out = stale_ra.process(flight, SimTime::from_secs(T0 + 4));
        let stale_payload = extract_status(&out[0]).unwrap();
        assert_eq!(stale_payload.statuses[0].signed_root.size, 10);

        // Downstream (fresh) RA replaces it.
        f.ra.process(client_hello_segment(true), SimTime::from_secs(T0 + 4));
        f.ra.table.update(&tuple(), |s| {
            s.ca = Some(f.ca.ca());
            s.serial = Some(SerialNumber::from_u24(999));
        });
        let out2 = f.ra.process(out[0].clone(), SimTime::from_secs(T0 + 4));
        let fresh_payload = extract_status(&out2[0]).unwrap();
        assert_eq!(fresh_payload.statuses[0].signed_root.size, 11);
        assert_eq!(f.ra.stats.statuses_replaced, 1);
        // And the fresh status proves 999 revoked.
        let outcome = fresh_payload.statuses[0]
            .validate(
                &SerialNumber::from_u24(999),
                &f.ca.verifying_key(),
                10,
                T0 + 4,
            )
            .unwrap();
        assert!(outcome.is_revoked());
    }

    #[test]
    fn proof_cache_serves_hot_serials_and_invalidates_on_epoch_change() {
        let mut f = fixture();
        let chain = [(f.ca.ca(), SerialNumber::from_u24(105))];

        // First build: miss; repeated builds for the same serial: hits.
        let first = f.ra.build_status(&chain).unwrap();
        for _ in 0..5 {
            let again = f.ra.build_status(&chain).unwrap();
            assert_eq!(again, first, "cached proof must compose the same status");
        }
        let stats = f.ra.proof_cache_stats();
        assert_eq!((stats.hits, stats.misses), (5, 1));

        // A freshness-only refresh does NOT advance the epoch: the cached
        // audit path is still served, composed with the *new* freshness.
        let msg = f.ca.refresh(&mut f.rng, T0 + 11);
        f.ra.mirror_mut(&f.ca.ca())
            .unwrap()
            .apply_refresh(&msg, T0 + 11)
            .unwrap();
        let refreshed = f.ra.build_status(&chain).unwrap();
        assert_eq!(f.ra.proof_cache_stats().hits, 6);
        assert_eq!(refreshed.statuses[0].proof, first.statuses[0].proof);
        assert_eq!(
            &refreshed.statuses[0].freshness,
            f.ra.mirror(&f.ca.ca()).unwrap().freshness(),
            "cached proof must carry live freshness"
        );

        // A new issuance advances the epoch: the stale path must not be
        // served, and the regenerated status verifies against the new root.
        let iss =
            f.ca.insert(&[SerialNumber::from_u24(999)], &mut f.rng, T0 + 12)
                .unwrap();
        f.ra.mirror_mut(&f.ca.ca())
            .unwrap()
            .apply_issuance(&iss, T0 + 12)
            .unwrap();
        let after = f.ra.build_status(&chain).unwrap();
        let stats = f.ra.proof_cache_stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (6, 2),
            "epoch change forces a miss"
        );
        assert_ne!(after.statuses[0].proof, first.statuses[0].proof);
        let outcome = after.statuses[0]
            .validate(
                &SerialNumber::from_u24(105),
                &f.ca.verifying_key(),
                10,
                T0 + 12,
            )
            .expect("regenerated proof verifies against the advanced root");
        assert!(outcome.is_revoked());
    }

    #[test]
    fn status_payload_round_trip() {
        let f = fixture();
        let payload =
            f.ra.build_status(&[(f.ca.ca(), SerialNumber::from_u24(105))])
                .unwrap();
        let back = StatusPayload::from_bytes(&payload.to_bytes()).unwrap();
        assert_eq!(back, payload);
    }
}
