//! The inline interception lane: per-flow TCP reassembly feeding DPI, with
//! status stapling and revoked-flow resets (paper §III steps 4–7, §VI).
//!
//! Where [`crate::ra`] classifies *individual packets* (and is therefore
//! blind to handshakes fragmented across segments), this module holds one
//! flow record per 4-tuple (Eq. 4): a [`TcpBuffer`] per direction
//! reassembles the byte stream in sequence order, a
//! [`StreamClassifier`] classifies across
//! record and segment boundaries, and the flow walks
//! `WaitForClientHello → WaitForServerFlight → Established` (or `Bypass` /
//! `Reset`). On the server's flight the RA looks the chain up in the
//! lock-free [`StatusServer`] snapshot and either
//!
//! * staples a [`StatusPayload`] into the server→client stream as a
//!   dedicated `RitmStatus` record — injected at a record boundary, with
//!   every later segment's sequence numbers translated (§VIII) — or
//! * resets both directions of a *revoked* flow mid-handshake.
//!
//! [`spawn_inline_relay`] bridges real sockets into this segment-granular
//! core: two `ritm-rt` tasks pump bytes between a client-side and a
//! server-side socket, synthesizing [`TcpSegment`]s via
//! [`StreamSegmenter`], so the same `FlowTable` serves both the
//! discrete-event simulator (as a [`Middlebox`]) and the event runtime.

use crate::dpi::{Classification, StreamClassifier};
use crate::ra::StatusPayload;
use crate::serve::StatusServer;
use parking_lot::Mutex;
use ritm_dictionary::{CaId, SerialNumber};
use ritm_net::middlebox::Middlebox;
use ritm_net::tcp::{Direction, FourTuple, StreamSegmenter, TcpFlags, TcpSegment};
use ritm_net::time::{SimDuration, SimTime};
use ritm_rt::net::{read_some, write_all};
use ritm_rt::Handle;
use ritm_tls::record::{ContentType, TlsRecord, MAX_RECORD_LEN};
use std::collections::{BTreeMap, HashMap};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;

/// In-order TCP stream reassembly for one direction of one flow: segments
/// arrive with arbitrary gaps, overlaps, and duplicates; contiguous bytes
/// come out exactly once.
#[derive(Debug, Default)]
pub struct TcpBuffer {
    next_seq: u64,
    pending: BTreeMap<u64, Vec<u8>>,
    initialized: bool,
}

impl TcpBuffer {
    /// Creates an empty buffer; the first inserted segment's sequence
    /// number becomes the stream origin.
    pub fn new() -> Self {
        TcpBuffer::default()
    }

    /// Next in-order sequence number this buffer expects.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Inserts one segment's payload at `seq`, returning whatever bytes
    /// became contiguous (possibly empty while a gap is open).
    pub fn insert(&mut self, seq: u64, payload: &[u8]) -> Vec<u8> {
        if !self.initialized {
            self.next_seq = seq;
            self.initialized = true;
        }
        if !payload.is_empty() && seq + payload.len() as u64 > self.next_seq {
            // Keep only the part we have not delivered yet.
            let (seq, data) = if seq < self.next_seq {
                let skip = (self.next_seq - seq) as usize;
                (self.next_seq, payload[skip..].to_vec())
            } else {
                (seq, payload.to_vec())
            };
            // On overlap keep the longer of the two candidates.
            match self.pending.get(&seq) {
                Some(existing) if existing.len() >= data.len() => {}
                _ => {
                    self.pending.insert(seq, data);
                }
            }
        }
        let mut out = Vec::new();
        while let Some((&seq, _)) = self.pending.first_key_value() {
            if seq > self.next_seq {
                break;
            }
            let (seq, data) = self.pending.pop_first().expect("first entry exists");
            let skip = (self.next_seq - seq) as usize;
            if skip < data.len() {
                out.extend_from_slice(&data[skip..]);
                self.next_seq += (data.len() - skip) as u64;
            }
        }
        out
    }
}

/// Where a tracked flow is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStage {
    /// Client→server bytes are being reassembled until a ClientHello
    /// classifies (or the stream proves non-TLS / non-RITM).
    WaitForClientHello,
    /// A RITM ClientHello passed; awaiting the server's first flight.
    WaitForServerFlight,
    /// Handshake complete; only periodic Δ re-stapling remains.
    Established,
    /// Non-TLS or non-RITM: forward untouched, never inspect again.
    Bypass,
    /// The flow was reset (revoked chain); drop everything.
    Reset,
}

/// One tracked connection: Eq. (4) state plus stream reassembly.
#[derive(Debug)]
struct Flow {
    stage: FlowStage,
    to_server: TcpBuffer,
    to_client: TcpBuffer,
    classify_to_server: StreamClassifier,
    classify_to_client: StreamClassifier,
    translator: ritm_net::tcp::SeqTranslator,
    chain: Vec<(CaId, SerialNumber)>,
    last_status: u64,
    /// Status waiting for a record boundary in the server→client stream.
    pending_status: Option<StatusPayload>,
    /// Last time (seconds) a segment touched this flow, either direction.
    last_seen: u64,
}

impl Flow {
    fn new(now_secs: u64) -> Self {
        Flow {
            stage: FlowStage::WaitForClientHello,
            to_server: TcpBuffer::new(),
            to_client: TcpBuffer::new(),
            classify_to_server: StreamClassifier::new(),
            classify_to_client: StreamClassifier::new(),
            translator: ritm_net::tcp::SeqTranslator::new(),
            chain: Vec::new(),
            last_status: 0,
            pending_status: None,
            last_seen: now_secs,
        }
    }
}

/// Interceptor tuning.
#[derive(Debug, Clone, Copy)]
pub struct InterceptConfig {
    /// Re-staple interval in seconds (the paper's Δ).
    pub delta: u64,
    /// Compress same-CA chain runs into `MultiRevocationStatus` entries.
    pub compress: bool,
    /// Reset flows whose chain contains a revoked certificate (the
    /// hard-fail deployment; `false` still staples the revoked status and
    /// leaves the verdict to the client).
    pub reset_revoked: bool,
    /// Hard cap on tracked flows. Admitting a flow past the cap first
    /// reaps idle entries, then evicts the least-recently-seen flow — a
    /// SYN flood (or half-open churn) can therefore not grow the table
    /// without bound.
    pub max_flows: usize,
    /// Seconds without a segment in either direction before a flow —
    /// half-open handshakes included — is eligible for reaping.
    pub idle_timeout: u64,
}

impl Default for InterceptConfig {
    fn default() -> Self {
        InterceptConfig {
            delta: 10,
            compress: true,
            reset_revoked: true,
            max_flows: 65_536,
            idle_timeout: 60,
        }
    }
}

/// Counters for the interception lane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterceptStats {
    /// Flows that presented a RITM ClientHello and were tracked.
    pub flows_tracked: u64,
    /// Flows that proved non-TLS or non-RITM and were bypassed.
    pub flows_bypassed: u64,
    /// Flows reset because their chain contained a revoked certificate.
    pub flows_reset: u64,
    /// Status payloads stapled into server→client streams.
    pub statuses_injected: u64,
    /// Total bytes those stapled records added.
    pub bytes_injected: u64,
    /// Flows reaped after `idle_timeout` seconds without traffic.
    pub flows_evicted_idle: u64,
    /// Flows evicted least-recently-seen-first because the table hit
    /// `max_flows`.
    pub flows_evicted_capacity: u64,
}

/// The per-flow interception middlebox: a [`Middlebox`] over reassembled
/// flows, stapling statuses from a shared [`StatusServer`] snapshot.
#[derive(Debug)]
pub struct FlowTable {
    status: Arc<StatusServer>,
    config: InterceptConfig,
    flows: HashMap<FourTuple, Flow>,
    /// session id → chain seen at full-handshake time, so resumption
    /// flights (no Certificate message) still get a status verdict.
    session_cache: HashMap<Vec<u8>, Vec<(CaId, SerialNumber)>>,
    stats: InterceptStats,
}

impl FlowTable {
    /// Creates a flow table stapling from `status` snapshots.
    pub fn new(status: Arc<StatusServer>, config: InterceptConfig) -> Self {
        FlowTable {
            status,
            config,
            flows: HashMap::new(),
            session_cache: HashMap::new(),
            stats: InterceptStats::default(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> InterceptStats {
        self.stats
    }

    /// Number of flows currently tracked (any stage).
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// `true` when no flow is tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Reaps every flow idle for at least `idle_timeout` seconds —
    /// half-open handshakes that never completed included — returning how
    /// many were evicted. Runs automatically when admission hits
    /// `max_flows`; call it periodically to bound memory between
    /// admissions too.
    pub fn reap(&mut self, now: SimTime) -> usize {
        self.reap_at(now.as_secs())
    }

    fn reap_at(&mut self, now_secs: u64) -> usize {
        let timeout = self.config.idle_timeout;
        let before = self.flows.len();
        self.flows
            .retain(|_, f| now_secs.saturating_sub(f.last_seen) < timeout);
        let evicted = before - self.flows.len();
        self.stats.flows_evicted_idle += evicted as u64;
        evicted
    }

    /// Makes room for one more flow: reap idle entries first; if the
    /// table is still at `max_flows`, evict the least-recently-seen flow.
    fn admit_one(&mut self, now_secs: u64) {
        if self.flows.len() < self.config.max_flows {
            return;
        }
        self.reap_at(now_secs);
        if self.flows.len() < self.config.max_flows {
            return;
        }
        if let Some(victim) = self
            .flows
            .iter()
            .min_by_key(|(_, f)| f.last_seen)
            .map(|(t, _)| *t)
        {
            self.flows.remove(&victim);
            self.stats.flows_evicted_capacity += 1;
        }
    }

    /// `true` if any certificate of `chain` is revoked in the current
    /// snapshot of its CA's dictionary.
    fn any_revoked(status: &StatusServer, chain: &[(CaId, SerialNumber)]) -> bool {
        chain.iter().any(|(ca, serial)| {
            status
                .snapshot(ca)
                .is_some_and(|snap| snap.contains(serial))
        })
    }

    /// Synthesizes RSTs for both directions of `tuple`.
    fn reset_segments(tuple: FourTuple, flow: &Flow) -> Vec<TcpSegment> {
        let rst = |direction: Direction, seq: u64| TcpSegment {
            tuple,
            direction,
            seq,
            ack: 0,
            flags: TcpFlags {
                rst: true,
                ..TcpFlags::default()
            },
            payload: Vec::new(),
        };
        let mut to_client = rst(Direction::ToClient, flow.to_client.next_seq());
        flow.translator.translate(&mut to_client);
        vec![
            to_client,
            rst(Direction::ToServer, flow.to_server.next_seq()),
        ]
    }

    fn handle_to_server(&mut self, seg: &mut TcpSegment) {
        let flow = self.flows.get_mut(&seg.tuple).expect("flow exists");
        if flow.stage == FlowStage::WaitForClientHello {
            let bytes = flow.to_server.insert(seg.seq, seg.payload.as_slice());
            for c in flow.classify_to_server.push(&bytes) {
                match c {
                    Classification::ClientHello { ritm: true, .. } => {
                        flow.stage = FlowStage::WaitForServerFlight;
                        self.stats.flows_tracked += 1;
                    }
                    Classification::ClientHello { ritm: false, .. } | Classification::NotTls => {
                        flow.stage = FlowStage::Bypass;
                        self.stats.flows_bypassed += 1;
                    }
                    _ => {}
                }
            }
        }
        flow.translator.translate(seg);
    }

    fn handle_to_client(&mut self, seg: &mut TcpSegment, now_secs: u64) -> Option<Vec<TcpSegment>> {
        let flow = self.flows.get_mut(&seg.tuple).expect("flow exists");
        // Reassemble on the server's original sequence space — translation
        // happens on the way out.
        let bytes = flow.to_client.insert(seg.seq, seg.payload.as_slice());
        let classifications = flow.classify_to_client.push(&bytes);
        for c in classifications {
            match c {
                Classification::ServerFlight(flight) => {
                    let chain: Vec<(CaId, SerialNumber)> = if flight.leaf.is_some() {
                        if !flight.session_id.is_empty() {
                            self.session_cache
                                .insert(flight.session_id.clone(), flight.chain.clone());
                        }
                        flight.chain
                    } else {
                        // Abbreviated flight: no Certificate message — the
                        // chain comes from full-handshake memory (Eq. 4).
                        self.session_cache
                            .get(&flight.session_id)
                            .cloned()
                            .unwrap_or_default()
                    };
                    if chain.is_empty() {
                        continue; // nothing to prove for this flow
                    }
                    if self.config.reset_revoked && Self::any_revoked(&self.status, &chain) {
                        flow.stage = FlowStage::Reset;
                        self.stats.flows_reset += 1;
                        return Some(Self::reset_segments(seg.tuple, flow));
                    }
                    flow.chain = chain;
                    flow.pending_status =
                        self.status.build_status(&flow.chain, self.config.compress);
                }
                Classification::Finished if flow.stage == FlowStage::WaitForServerFlight => {
                    flow.stage = FlowStage::Established;
                }
                Classification::NotTls => {
                    flow.stage = FlowStage::Bypass;
                    self.stats.flows_bypassed += 1;
                }
                _ => {}
            }
        }

        // Periodic Δ re-staple on long-lived established flows.
        if flow.stage == FlowStage::Established
            && !flow.chain.is_empty()
            && flow.pending_status.is_none()
            && flow.last_status > 0
            && now_secs.saturating_sub(flow.last_status) >= self.config.delta
        {
            if self.config.reset_revoked && Self::any_revoked(&self.status, &flow.chain) {
                flow.stage = FlowStage::Reset;
                self.stats.flows_reset += 1;
                return Some(Self::reset_segments(seg.tuple, flow));
            }
            flow.pending_status = self.status.build_status(&flow.chain, self.config.compress);
        }

        // Staple only at a record boundary: the classifier's reassembler is
        // empty exactly when the stream ends on a whole record, so the
        // injected record cannot split one of the server's.
        let boundary =
            flow.classify_to_client.buffered() == 0 && !seg.payload.as_slice().is_empty();
        if boundary && flow.pending_status.is_some() {
            let payload = flow.pending_status.take().expect("checked above");
            let encoded = payload.to_bytes();
            if encoded.len() <= MAX_RECORD_LEN {
                let record = TlsRecord::new(ContentType::RitmStatus, encoded).to_bytes();
                // Translate the triggering segment with the pre-injection
                // offset; the status record then occupies the stream right
                // after it (§VIII sequence translation).
                flow.translator.translate(seg);
                let status_seg = TcpSegment {
                    tuple: seg.tuple,
                    direction: Direction::ToClient,
                    seq: seg.seq + seg.payload.len() as u64,
                    ack: seg.ack,
                    flags: TcpFlags::default(),
                    payload: record.clone(),
                };
                flow.translator.record_injection(record.len());
                flow.last_status = now_secs;
                self.stats.statuses_injected += 1;
                self.stats.bytes_injected += record.len() as u64;
                return Some(vec![seg.clone(), status_seg]);
            }
            // Oversized payload (would not fit one record): drop it rather
            // than corrupt the stream. Extremely long chains only.
        }
        flow.translator.translate(seg);
        None
    }
}

impl Middlebox for FlowTable {
    fn process(&mut self, mut segment: TcpSegment, now: SimTime) -> Vec<TcpSegment> {
        let now_secs = now.as_secs();
        let closing = segment.flags.fin || segment.flags.rst;
        let tuple = segment.tuple;

        // First sight of a flow: only a client-side opener starts tracking,
        // and admission may first evict an idle or least-recently-seen flow.
        if !self.flows.contains_key(&tuple) {
            if segment.direction != Direction::ToServer {
                return vec![segment];
            }
            self.admit_one(now_secs);
            self.flows.insert(tuple, Flow::new(now_secs));
        } else if let Some(flow) = self.flows.get_mut(&tuple) {
            flow.last_seen = now_secs;
        }

        let stage = self.flows[&tuple].stage;
        let out = match stage {
            FlowStage::Reset => {
                // A reset flow forwards nothing more in either direction.
                if closing {
                    self.flows.remove(&tuple);
                }
                return Vec::new();
            }
            FlowStage::Bypass => vec![segment],
            _ => match segment.direction {
                Direction::ToServer => {
                    self.handle_to_server(&mut segment);
                    vec![segment]
                }
                Direction::ToClient => match self.handle_to_client(&mut segment, now_secs) {
                    Some(replacement) => replacement,
                    None => vec![segment],
                },
            },
        };
        if closing {
            self.flows.remove(&tuple);
        }
        out
    }

    fn processing_delay(&self, segment: &TcpSegment) -> SimDuration {
        // Table III shape: detection on every packet; parsing + proof
        // lookup only on tracked TLS flows.
        let detection = SimDuration::from_micros(3);
        match self.flows.get(&segment.tuple) {
            Some(f) if f.stage == FlowStage::WaitForServerFlight => {
                detection + SimDuration::from_micros(20) + SimDuration::from_micros(67)
            }
            Some(_) => detection + SimDuration::from_micros(2),
            None => detection,
        }
    }
}

/// Spawns the two relay tasks carrying one intercepted connection: bytes
/// from `client` flow through `table` to `server` and back, as synthesized
/// [`TcpSegment`]s. A [`FlowStage::Reset`] verdict tears both sockets
/// down; EOF on either side half-closes the other.
///
/// # Errors
///
/// Socket setup errors (`set_nonblocking`, `try_clone`).
pub fn spawn_inline_relay(
    handle: &Handle,
    table: Arc<Mutex<FlowTable>>,
    tuple: FourTuple,
    client: TcpStream,
    server: TcpStream,
    now: SimTime,
) -> std::io::Result<()> {
    client.set_nonblocking(true)?;
    server.set_nonblocking(true)?;
    let client_w = client.try_clone()?;
    let server_w = server.try_clone()?;
    spawn_pump(
        handle,
        Arc::clone(&table),
        tuple,
        Direction::ToServer,
        client,
        server_w,
        now,
    );
    spawn_pump(
        handle,
        table,
        tuple,
        Direction::ToClient,
        server,
        client_w,
        now,
    );
    Ok(())
}

/// One direction's pump: read from `from`, run segments through the table,
/// write surviving payloads to `to` (both synthesized directions map to
/// `to` or `from`'s peer — the table only re-emits segments for the pumped
/// direction, plus RSTs which close both sockets).
fn spawn_pump(
    handle: &Handle,
    table: Arc<Mutex<FlowTable>>,
    tuple: FourTuple,
    direction: Direction,
    from: TcpStream,
    to: TcpStream,
    now: SimTime,
) {
    let reactor = handle.reactor();
    handle.spawn(async move {
        let mut segmenter = StreamSegmenter::new(tuple, direction, 0);
        let mut buf = [0u8; 4096];
        loop {
            let n = match read_some(&reactor, &from, &mut buf).await {
                Ok(n) => n,
                Err(_) => break, // peer vanished (e.g. reset by the twin pump)
            };
            let seg = if n == 0 {
                segmenter.fin()
            } else {
                segmenter.push(&buf[..n])
            };
            let outs = table.lock().process(seg, now);
            let mut reset = false;
            for out in &outs {
                if out.flags.rst {
                    reset = true;
                }
            }
            if reset {
                // Revoked mid-handshake: kill both directions at once.
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                break;
            }
            let mut write_failed = false;
            for out in outs {
                if out.payload.is_empty() || out.direction != direction {
                    continue;
                }
                if write_all(&reactor, &to, &out.payload).await.is_err() {
                    write_failed = true;
                    break;
                }
            }
            if write_failed {
                break;
            }
            if n == 0 {
                // EOF: propagate the half-close downstream.
                let _ = to.shutdown(Shutdown::Write);
                break;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::{CaDictionary, MirrorDictionary};
    use ritm_tls::certificate::{Certificate, CertificateChain, TrustAnchors};
    use ritm_tls::connection::{ClientConfig, ServerContext, ServerEvent, TlsClient};
    use ritm_tls::engine::Action;

    const T0: u64 = 1_000_000;
    fn now() -> SimTime {
        SimTime::from_secs(T0 + 2)
    }

    /// Revoked serials are the even ones (the CA setup below revokes
    /// 0, 2, 4, …, 38).
    fn world() -> (CaDictionary, Arc<StatusServer>) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut ca = CaDictionary::new(
            CaId::from_name("InterceptCA"),
            SigningKey::from_seed([1u8; 32]),
            10,
            64,
            &mut rng,
            T0,
        );
        let mut m = MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root()).unwrap();
        m.set_delta(10);
        let serials: Vec<SerialNumber> = (0..20).map(|i| SerialNumber::from_u24(i * 2)).collect();
        let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
        m.apply_issuance(&iss, T0 + 1).unwrap();
        let server = Arc::new(StatusServer::new());
        assert!(server.publish(m.snapshot()));
        (ca, server)
    }

    fn pki(ca: &CaDictionary, serial: u32) -> (CertificateChain, TrustAnchors, SigningKey) {
        let ca_key = SigningKey::from_seed([1u8; 32]);
        let server_key = SigningKey::from_seed([2u8; 32]);
        let leaf = Certificate::issue(
            &ca_key,
            ca.ca(),
            SerialNumber::from_u24(serial),
            "example.com",
            T0,
            T0 + 100_000,
            server_key.verifying_key(),
            false,
        );
        let mut anchors = TrustAnchors::new();
        anchors.add(ca.ca(), ca_key.verifying_key());
        (CertificateChain(vec![leaf]), anchors, ca_key)
    }

    fn tuple() -> FourTuple {
        FourTuple {
            client: ritm_net::tcp::SocketAddr::new(0x0c22_384e, 9012),
            server: ritm_net::tcp::SocketAddr::new(0x624c_3620, 443),
        }
    }

    fn seg(direction: Direction, seq: u64, payload: Vec<u8>) -> TcpSegment {
        TcpSegment {
            tuple: tuple(),
            direction,
            seq,
            ack: 0,
            flags: TcpFlags::default(),
            payload,
        }
    }

    /// Drives a full handshake through the table at segment granularity,
    /// returning the RITM status payloads the client stream carried.
    fn drive_through(
        table: &mut FlowTable,
        client: &mut TlsClient,
        ctx: Arc<ServerContext>,
    ) -> Result<Vec<Vec<u8>>, String> {
        let mut server = ritm_tls::connection::ServerConnection::new(ctx, [1u8; 32]);
        let mut engine_client = Vec::new(); // status payloads seen
        let mut to_server_seq = 0u64;
        let mut to_client_seq = 0u64;
        let mut to_server = vec![client.start()];
        for _ in 0..8 {
            let mut to_client = Vec::new();
            for rec in to_server.drain(..) {
                let bytes = rec.to_bytes();
                let s = seg(Direction::ToServer, to_server_seq, bytes.clone());
                to_server_seq += bytes.len() as u64;
                for out in table.process(s, now()) {
                    if out.flags.rst {
                        return Err("reset".into());
                    }
                    if out.direction != Direction::ToServer || out.payload.is_empty() {
                        continue;
                    }
                    for r in TlsRecord::parse_stream(&out.payload).map_err(|e| e.to_string())? {
                        let (outs, _evs): (Vec<TlsRecord>, Vec<ServerEvent>) = server
                            .process_record(&r, T0 + 2)
                            .map_err(|e| e.to_string())?;
                        to_client.extend(outs);
                    }
                }
            }
            for rec in to_client.drain(..) {
                let bytes = rec.to_bytes();
                let s = seg(Direction::ToClient, to_client_seq, bytes.clone());
                to_client_seq += bytes.len() as u64;
                for out in table.process(s, now()) {
                    if out.flags.rst {
                        return Err("reset".into());
                    }
                    if out.direction != Direction::ToClient || out.payload.is_empty() {
                        continue;
                    }
                    for r in TlsRecord::parse_stream(&out.payload).map_err(|e| e.to_string())? {
                        let (outs, evs) = client
                            .process_record(&r, T0 + 2)
                            .map_err(|e| e.to_string())?;
                        to_server.extend(outs);
                        for ev in evs {
                            if let ritm_tls::connection::ClientEvent::RitmStatus(p) = ev {
                                engine_client.push(p);
                            }
                        }
                    }
                }
            }
            if client.is_established() && to_server.is_empty() {
                break;
            }
        }
        // Close the flow so a later handshake may reuse the 4-tuple.
        let mut fin = seg(Direction::ToServer, to_server_seq, Vec::new());
        fin.flags.fin = true;
        table.process(fin, now());
        Ok(engine_client)
    }

    fn tuple_n(n: u16) -> FourTuple {
        FourTuple {
            client: ritm_net::tcp::SocketAddr::new(0x0c22_0000 + u32::from(n), 9012),
            server: ritm_net::tcp::SocketAddr::new(0x624c_3620, 443),
        }
    }

    fn opener(t: FourTuple, at: SimTime, table: &mut FlowTable) {
        let s = TcpSegment {
            tuple: t,
            direction: Direction::ToServer,
            seq: 0,
            ack: 0,
            flags: TcpFlags::default(),
            payload: vec![0x16], // one TLS-looking byte: stays half-open
        };
        table.process(s, at);
    }

    #[test]
    fn idle_and_half_open_flows_are_reaped() {
        let (_, status) = world();
        let mut table = FlowTable::new(status, InterceptConfig::default());
        opener(tuple_n(1), SimTime::from_secs(T0), &mut table);
        opener(tuple_n(2), SimTime::from_secs(T0 + 50), &mut table);
        assert_eq!(table.len(), 2);

        // At T0+70 only the first flow crossed the 60 s idle timeout.
        assert_eq!(table.reap(SimTime::from_secs(T0 + 70)), 1);
        assert_eq!(table.len(), 1);
        assert_eq!(table.stats().flows_evicted_idle, 1);

        // Traffic refreshes the survivor; it outlives the next sweep.
        opener(tuple_n(2), SimTime::from_secs(T0 + 100), &mut table);
        assert_eq!(table.reap(SimTime::from_secs(T0 + 130)), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn capacity_evicts_least_recently_seen() {
        let (_, status) = world();
        let config = InterceptConfig {
            max_flows: 2,
            idle_timeout: 1_000,
            ..Default::default()
        };
        let mut table = FlowTable::new(status, config);
        opener(tuple_n(1), SimTime::from_secs(T0), &mut table);
        opener(tuple_n(2), SimTime::from_secs(T0 + 1), &mut table);
        // Refresh flow 1 so flow 2 becomes the LRU victim.
        opener(tuple_n(1), SimTime::from_secs(T0 + 2), &mut table);

        opener(tuple_n(3), SimTime::from_secs(T0 + 3), &mut table);
        assert_eq!(table.len(), 2);
        assert_eq!(table.stats().flows_evicted_capacity, 1);
        assert_eq!(table.stats().flows_evicted_idle, 0);

        // A server-side segment for the evicted tuple is forwarded
        // untracked, not resurrected.
        let resp = table.process(
            TcpSegment {
                tuple: tuple_n(2),
                direction: Direction::ToClient,
                seq: 0,
                ack: 0,
                flags: TcpFlags::default(),
                payload: b"late".to_vec(),
            },
            SimTime::from_secs(T0 + 4),
        );
        assert_eq!(resp.len(), 1);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn admission_prefers_reaping_idle_over_lru_eviction() {
        let (_, status) = world();
        let config = InterceptConfig {
            max_flows: 2,
            idle_timeout: 10,
            ..Default::default()
        };
        let mut table = FlowTable::new(status, config);
        opener(tuple_n(1), SimTime::from_secs(T0), &mut table);
        opener(tuple_n(2), SimTime::from_secs(T0 + 9), &mut table);
        // At T0+15 only flow 1 has crossed the 10 s timeout: admission
        // reaps it rather than LRU-evicting the still-fresh flow 2.
        opener(tuple_n(3), SimTime::from_secs(T0 + 15), &mut table);
        assert_eq!(table.len(), 2);
        assert_eq!(table.stats().flows_evicted_idle, 1);
        assert_eq!(table.stats().flows_evicted_capacity, 0);
        assert!(table.reap(SimTime::from_secs(T0 + 15)) == 0);
    }

    #[test]
    fn tcp_buffer_reorders_and_dedups() {
        let mut b = TcpBuffer::new();
        assert_eq!(b.insert(100, b"ab"), b"ab");
        // Out of order: hold 104.. until 102.. arrives.
        assert_eq!(b.insert(104, b"ef"), b"");
        assert_eq!(b.insert(102, b"cd"), b"cdef");
        // Duplicate and overlapping retransmits deliver nothing new.
        assert_eq!(b.insert(100, b"ab"), b"");
        assert_eq!(b.insert(105, b"fgh"), b"gh");
        assert_eq!(b.next_seq(), 108);
    }

    #[test]
    fn benign_flow_gets_stapled_status() {
        let (ca, status) = world();
        let (chain, anchors, _) = pki(&ca, 1); // odd serial: not revoked
        let mut table = FlowTable::new(status, InterceptConfig::default());
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut client = TlsClient::new(
            ClientConfig {
                server_name: "example.com".into(),
                anchors,
                enable_ritm: true,
            },
            [2u8; 32],
            None,
        );
        let statuses = drive_through(&mut table, &mut client, ctx).unwrap();
        assert!(client.is_established());
        assert_eq!(statuses.len(), 1, "exactly one status stapled");
        let payload = StatusPayload::from_bytes(&statuses[0]).unwrap();
        assert_eq!(payload.covered(), 1);
        let stats = table.stats();
        assert_eq!(stats.flows_tracked, 1);
        assert_eq!(stats.statuses_injected, 1);
        assert_eq!(stats.flows_reset, 0);
        assert!(stats.bytes_injected > 0);
    }

    #[test]
    fn revoked_flow_is_reset_mid_handshake() {
        let (ca, status) = world();
        let (chain, anchors, _) = pki(&ca, 4); // even serial: revoked
        let mut table = FlowTable::new(status, InterceptConfig::default());
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut client = TlsClient::new(
            ClientConfig {
                server_name: "example.com".into(),
                anchors,
                enable_ritm: true,
            },
            [2u8; 32],
            None,
        );
        let err = drive_through(&mut table, &mut client, ctx).unwrap_err();
        assert_eq!(err, "reset");
        assert!(!client.is_established());
        assert_eq!(table.stats().flows_reset, 1);
        assert_eq!(table.stats().statuses_injected, 0);
    }

    #[test]
    fn resumption_flight_still_gets_verdict() {
        let (ca, status) = world();
        let (chain, anchors, _) = pki(&ca, 1);
        let mut table = FlowTable::new(status, InterceptConfig::default());
        let ctx = ServerContext::new(chain, [9u8; 20]);

        // Full handshake: the table memorizes session id → chain.
        let mut client = TlsClient::new(
            ClientConfig {
                server_name: "example.com".into(),
                anchors: anchors.clone(),
                enable_ritm: true,
            },
            [2u8; 32],
            None,
        );
        drive_through(&mut table, &mut client, ctx.clone()).unwrap();
        let session = client.session_state(T0 + 2).unwrap();

        // Resumption: no Certificate message crosses the wire, yet the
        // abbreviated flight is stapled from Eq. (4) memory.
        let mut client2 = TlsClient::new(
            ClientConfig {
                server_name: "example.com".into(),
                anchors,
                enable_ritm: true,
            },
            [4u8; 32],
            Some(session),
        );
        let statuses = drive_through(&mut table, &mut client2, ctx).unwrap();
        assert!(client2.is_established());
        assert_eq!(statuses.len(), 1, "resumption flight stapled too");
        assert_eq!(table.stats().statuses_injected, 2);
    }

    #[test]
    fn non_ritm_flow_is_bypassed_untouched() {
        let (_, status) = world();
        let mut table = FlowTable::new(status, InterceptConfig::default());
        let payload = b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n".to_vec();
        let out = table.process(seg(Direction::ToServer, 0, payload.clone()), now());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, payload);
        assert_eq!(table.stats().flows_bypassed, 1);
        // Response direction of a bypassed flow is also untouched.
        let resp = table.process(seg(Direction::ToClient, 0, b"200 OK".to_vec()), now());
        assert_eq!(resp[0].payload, b"200 OK".to_vec());
        assert_eq!(table.stats().statuses_injected, 0);
    }

    #[test]
    fn fragmented_client_hello_is_still_tracked() {
        // The tentpole scenario classify() alone cannot handle: the
        // ClientHello split mid-record across two segments.
        let (ca, status) = world();
        let (chain, anchors, _) = pki(&ca, 1);
        let mut table = FlowTable::new(status, InterceptConfig::default());
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut client = TlsClient::new(
            ClientConfig {
                server_name: "example.com".into(),
                anchors,
                enable_ritm: true,
            },
            [2u8; 32],
            None,
        );
        let ch = client.start().to_bytes();
        let (a, b) = ch.split_at(ch.len() / 2);
        table.process(seg(Direction::ToServer, 0, a.to_vec()), now());
        table.process(seg(Direction::ToServer, a.len() as u64, b.to_vec()), now());
        assert_eq!(table.stats().flows_tracked, 1);

        // And the server flight arriving byte-by-byte still staples.
        let mut server = ritm_tls::connection::ServerConnection::new(ctx, [1u8; 32]);
        let mut flight = Vec::new();
        for r in TlsRecord::parse_stream(&ch).unwrap() {
            let (outs, _) = server.process_record(&r, T0 + 2).unwrap();
            flight.extend(TlsRecord::encode_stream(&outs));
        }
        let mut stapled = Vec::new();
        for (i, byte) in flight.iter().enumerate() {
            for out in table.process(seg(Direction::ToClient, i as u64, vec![*byte]), now()) {
                stapled.extend_from_slice(&out.payload);
            }
        }
        // The forwarded stream must now contain a RitmStatus record after
        // the flight.
        let records = TlsRecord::parse_stream(&stapled).unwrap();
        assert!(records
            .iter()
            .any(|r| r.content_type == ContentType::RitmStatus));
        assert_eq!(table.stats().statuses_injected, 1);
    }

    #[test]
    fn sequence_numbers_translated_after_injection() {
        let (ca, status) = world();
        let (chain, anchors, _) = pki(&ca, 1);
        let mut table = FlowTable::new(status, InterceptConfig::default());
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut client = TlsClient::new(
            ClientConfig {
                server_name: "example.com".into(),
                anchors,
                enable_ritm: true,
            },
            [2u8; 32],
            None,
        );
        let ch = client.start().to_bytes();
        table.process(seg(Direction::ToServer, 0, ch.clone()), now());
        let mut server = ritm_tls::connection::ServerConnection::new(ctx, [1u8; 32]);
        let mut flight = Vec::new();
        for r in TlsRecord::parse_stream(&ch).unwrap() {
            let (outs, _) = server.process_record(&r, T0 + 2).unwrap();
            flight.extend(TlsRecord::encode_stream(&outs));
        }
        let outs = table.process(seg(Direction::ToClient, 0, flight.clone()), now());
        assert_eq!(outs.len(), 2, "flight + status record");
        let injected = outs[1].payload.len() as u64;
        assert_eq!(
            outs[1].seq,
            flight.len() as u64,
            "status right after flight"
        );
        // The server's next segment is shifted by the injected bytes.
        let next = table.process(
            seg(
                Direction::ToClient,
                flight.len() as u64,
                vec![23, 3, 3, 0, 1, 0],
            ),
            now(),
        );
        assert_eq!(next[0].seq, flight.len() as u64 + injected);
    }

    #[test]
    fn engine_feed_consumes_intercepted_stream() {
        // The stapled stream must remain a valid TLS record stream for the
        // sans-io client engine, arbitrary fragmentation included.
        let (ca, status) = world();
        let (chain, anchors, _) = pki(&ca, 1);
        let mut table = FlowTable::new(status, InterceptConfig::default());
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut engine = ritm_tls::engine::ClientEngine::new(
            ClientConfig {
                server_name: "example.com".into(),
                anchors,
                enable_ritm: true,
            },
            [2u8; 32],
            None,
        );
        let mut server = ritm_tls::connection::ServerConnection::new(ctx, [1u8; 32]);
        let mut to_server_seq = 0u64;
        let mut to_client_seq = 0u64;
        let mut to_server = engine.start().to_bytes();
        let mut statuses = 0;
        for _ in 0..8 {
            let s = seg(Direction::ToServer, to_server_seq, to_server.clone());
            to_server_seq += to_server.len() as u64;
            let mut flight = Vec::new();
            for out in table.process(s, now()) {
                for r in TlsRecord::parse_stream(&out.payload).unwrap() {
                    let (outs, _) = server.process_record(&r, T0 + 2).unwrap();
                    flight.extend(TlsRecord::encode_stream(&outs));
                }
            }
            to_server.clear();
            let s = seg(Direction::ToClient, to_client_seq, flight.clone());
            to_client_seq += flight.len() as u64;
            for out in table.process(s, now()) {
                for action in engine.feed(T0 + 2, &out.payload) {
                    match action {
                        Action::SendBytes(b) => to_server.extend_from_slice(&b),
                        Action::RitmStatus(_) => statuses += 1,
                        Action::Abort { alert } => panic!("aborted: {alert:?}"),
                        _ => {}
                    }
                }
            }
            if engine.is_established() && to_server.is_empty() {
                break;
            }
        }
        assert!(engine.is_established());
        assert_eq!(statuses, 1);
    }
}
