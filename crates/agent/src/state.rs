//! The RA's per-connection state table — Eq. (4) of the paper:
//!
//! ```text
//! sIP, dIP, sPort, dPort, lastStatus, stage, CA, SN
//! ```
//!
//! plus the sequence-number translator required once the RA starts injecting
//! bytes (§VIII). The table is concurrent ([`parking_lot::RwLock`]) because
//! a production RA processes packets on multiple cores; throughput of the
//! lookup path is part of the Table III / §VII-D numbers.

use parking_lot::RwLock;
use ritm_dictionary::{CaId, SerialNumber};
use ritm_net::tcp::{FourTuple, SeqTranslator};
use std::collections::HashMap;

/// The `stage` field of Eq. (4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// ClientHello seen, awaiting ServerHello.
    ClientHello,
    /// ServerHello (and certificate) seen, awaiting Finished.
    ServerHello,
    /// Connection established; periodic refresh applies.
    Established,
}

/// Per-connection RA state.
#[derive(Debug, Clone)]
pub struct ConnState {
    /// The connection 4-tuple.
    pub tuple: FourTuple,
    /// `lastStatus`: time (Unix seconds) the last revocation status was sent
    /// to the client; 0 before the first one.
    pub last_status: u64,
    /// Handshake progress.
    pub stage: Stage,
    /// Issuing CA of the server certificate, once seen.
    pub ca: Option<CaId>,
    /// Serial number of the server certificate, once seen.
    pub serial: Option<SerialNumber>,
    /// Sequence translation for injected bytes.
    pub translator: SeqTranslator,
}

impl ConnState {
    /// Fresh state at ClientHello time (Eq. 4 with `lastStatus = 0`,
    /// `CA = ∅`, `SN = ∅`).
    pub fn new(tuple: FourTuple) -> Self {
        ConnState {
            tuple,
            last_status: 0,
            stage: Stage::ClientHello,
            ca: None,
            serial: None,
            translator: SeqTranslator::new(),
        }
    }
}

/// The concurrent connection table.
#[derive(Debug, Default)]
pub struct StateTable {
    map: RwLock<HashMap<FourTuple, ConnState>>,
}

impl StateTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StateTable::default()
    }

    /// Inserts fresh state for a new RITM-supported connection.
    pub fn insert(&self, tuple: FourTuple) {
        self.map.write().insert(tuple, ConnState::new(tuple));
    }

    /// Snapshot of one connection's state.
    pub fn get(&self, tuple: &FourTuple) -> Option<ConnState> {
        self.map.read().get(tuple).cloned()
    }

    /// `true` if the connection is tracked — the per-packet fast path.
    pub fn contains(&self, tuple: &FourTuple) -> bool {
        self.map.read().contains_key(tuple)
    }

    /// Applies `f` to the state of `tuple`, if tracked.
    pub fn update<T>(&self, tuple: &FourTuple, f: impl FnOnce(&mut ConnState) -> T) -> Option<T> {
        self.map.write().get_mut(tuple).map(f)
    }

    /// Drops state when a connection finishes or times out (§III step 7:
    /// "Whenever a supported connection is finished or timed out, the RA
    /// removes the corresponding state").
    pub fn remove(&self, tuple: &FourTuple) -> Option<ConnState> {
        self.map.write().remove(tuple)
    }

    /// Number of tracked connections.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// `true` when no connection is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Removes every connection whose `last_status` is older than
    /// `cutoff_secs` (idle timeout), returning how many were evicted.
    pub fn evict_idle(&self, cutoff_secs: u64) -> usize {
        let mut map = self.map.write();
        let before = map.len();
        map.retain(|_, s| s.last_status >= cutoff_secs || s.last_status == 0);
        before - map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ritm_net::tcp::SocketAddr;

    fn tuple(n: u16) -> FourTuple {
        FourTuple {
            client: SocketAddr::new(1, n),
            server: SocketAddr::new(2, 443),
        }
    }

    #[test]
    fn insert_get_update_remove() {
        let t = StateTable::new();
        t.insert(tuple(1));
        assert!(t.contains(&tuple(1)));
        assert_eq!(t.get(&tuple(1)).unwrap().stage, Stage::ClientHello);

        t.update(&tuple(1), |s| {
            s.stage = Stage::ServerHello;
            s.ca = Some(CaId::from_name("CA1"));
            s.serial = Some(SerialNumber::from_u24(0x073e10));
            s.last_status = 141_012;
        });
        let s = t.get(&tuple(1)).unwrap();
        assert_eq!(s.stage, Stage::ServerHello);
        assert_eq!(s.last_status, 141_012);

        assert!(t.remove(&tuple(1)).is_some());
        assert!(t.is_empty());
    }

    #[test]
    fn unknown_tuple_is_none() {
        let t = StateTable::new();
        assert!(t.get(&tuple(9)).is_none());
        assert!(t.update(&tuple(9), |_| ()).is_none());
        assert!(t.remove(&tuple(9)).is_none());
    }

    #[test]
    fn eviction_keeps_fresh_and_new() {
        let t = StateTable::new();
        for i in 0..4 {
            t.insert(tuple(i));
        }
        t.update(&tuple(0), |s| s.last_status = 100); // stale
        t.update(&tuple(1), |s| s.last_status = 900); // fresh
                                                      // tuple(2), tuple(3) still at 0 (handshake in progress) — keep.
        let evicted = t.evict_idle(500);
        assert_eq!(evicted, 1);
        assert!(!t.contains(&tuple(0)));
        assert!(t.contains(&tuple(1)));
        assert!(t.contains(&tuple(2)));
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let table = Arc::new(StateTable::new());
        let mut handles = Vec::new();
        for thread in 0..4u16 {
            let t = Arc::clone(&table);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u16 {
                    let tup = tuple(thread * 100 + i);
                    t.insert(tup);
                    t.update(&tup, |s| s.last_status = 1);
                    assert!(t.contains(&tup));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(table.len(), 400);
    }
}
