//! RA ↔ CDN synchronization (paper §III "Dissemination" + §VI: "Every Δ,
//! each RA contacts an edge server via an HTTP GET request to pull new
//! revocations and freshness statements").
//!
//! The per-Δ download volume measured here is exactly what Fig. 7 plots,
//! and the billed traffic feeds Fig. 6 / Table II.

use crate::ra::RevocationAgent;
use ritm_cdn::network::Cdn;
use ritm_cdn::origin::ContentKey;
use ritm_dictionary::{
    CaId, EngineError, MirrorEngine, RefreshMessage, RevocationIssuance, SignedRoot, UpdateError,
    UpdateMessage,
};
use ritm_net::time::{SimDuration, SimTime};

/// Result of one periodic sync pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SyncReport {
    /// Total bytes downloaded this pass (the Fig. 7 y-axis).
    pub bytes_downloaded: u64,
    /// Issuance batches applied.
    pub issuances_applied: u64,
    /// New revocations learned.
    pub revocations_applied: u64,
    /// Freshness statements applied.
    pub freshness_applied: u64,
    /// Desynchronizations repaired via catch-up requests.
    pub catchups: u64,
    /// Messages that failed verification and were discarded.
    pub rejected: u64,
    /// Accumulated download latency.
    pub latency: SimDuration,
}

impl SyncReport {
    fn absorb_pull(&mut self, stats: &ritm_cdn::edge::PullStats) {
        self.bytes_downloaded += stats.bytes;
        self.latency = self.latency + stats.latency;
    }
}

impl<M: MirrorEngine> RevocationAgent<M> {
    /// One periodic pull (every Δ): for each mirrored CA, fetch the latest
    /// issuance bundle and freshness statement from the regional edge, apply
    /// them, and repair any detected desynchronization with a catch-up
    /// request.
    pub fn sync<R: rand::Rng + ?Sized>(
        &mut self,
        cdn: &mut Cdn,
        now: SimTime,
        rng: &mut R,
    ) -> SyncReport {
        let mut report = SyncReport::default();
        let now_secs = now.as_secs();
        let region = self.config.region;
        let cas: Vec<CaId> = self.followed_cas().copied().collect();
        for ca in cas {
            // 1. New revocations.
            if let Some((bytes, stats)) = cdn.pull(region, &ContentKey::Latest { ca }, now, rng) {
                report.absorb_pull(&stats);
                match RevocationIssuance::from_bytes(&bytes) {
                    Ok(iss) => self.apply_with_catchup(ca, iss, cdn, now, rng, &mut report),
                    Err(_) => report.rejected += 1,
                }
            }
            // 2. Freshness statement (or rotated root).
            if let Some((bytes, stats)) = cdn.pull(region, &ContentKey::Freshness { ca }, now, rng)
            {
                report.absorb_pull(&stats);
                match decode_refresh(&bytes) {
                    Some(msg) => {
                        let res = self
                            .mirror_mut(&ca)
                            .expect("followed ca has a mirror")
                            .apply_update(UpdateMessage::Refresh(&msg), now_secs);
                        match res {
                            Ok(()) => report.freshness_applied += 1,
                            Err(_) => report.rejected += 1,
                        }
                    }
                    None => report.rejected += 1,
                }
            }
        }
        report
    }

    fn apply_with_catchup<R: rand::Rng + ?Sized>(
        &mut self,
        ca: CaId,
        issuance: RevocationIssuance,
        cdn: &mut Cdn,
        now: SimTime,
        rng: &mut R,
        report: &mut SyncReport,
    ) {
        let now_secs = now.as_secs();
        let region = self.config.region;
        let have = self
            .mirror(&ca)
            .expect("followed ca has a mirror")
            .consecutive_count();
        let last = issuance.first_number + issuance.serials.len() as u64 - 1;
        if last <= have {
            return; // nothing new in the bundle
        }
        // Trim the already-known prefix (the Latest bundle may overlap).
        let issuance = if issuance.first_number <= have {
            let skip = (have + 1 - issuance.first_number) as usize;
            RevocationIssuance {
                first_number: have + 1,
                serials: issuance.serials[skip..].to_vec(),
                signed_root: issuance.signed_root,
            }
        } else {
            issuance
        };
        let outcome = {
            let mut mirror = self.mirror_mut(&ca).expect("followed ca has a mirror");
            mirror.apply_update(UpdateMessage::Issuance(&issuance), now_secs)
            // Guard drops here, republishing the snapshot if the update
            // landed — before any catch-up round-trip.
        };
        match outcome {
            Ok(()) => {
                report.issuances_applied += 1;
                report.revocations_applied += issuance.serials.len() as u64;
            }
            Err(EngineError::Update(UpdateError::Desynchronized { have, .. })) => {
                // Paper's sync protocol: request everything after `have`.
                if let Some((bytes, stats)) = cdn.pull_since(region, ca, have, rng) {
                    report.absorb_pull(&stats);
                    if let Ok(catchup) = RevocationIssuance::from_bytes(&bytes) {
                        let mut mirror = self.mirror_mut(&ca).expect("mirror");
                        if mirror
                            .apply_update(UpdateMessage::Issuance(&catchup), now_secs)
                            .is_ok()
                        {
                            report.catchups += 1;
                            report.issuances_applied += 1;
                            report.revocations_applied += catchup.serials.len() as u64;
                        } else {
                            report.rejected += 1;
                        }
                    } else {
                        report.rejected += 1;
                    }
                }
            }
            Err(_) => report.rejected += 1,
        }
    }
}

/// Decodes the origin's refresh object (tag byte + body).
fn decode_refresh(bytes: &[u8]) -> Option<RefreshMessage> {
    let (tag, body) = bytes.split_first()?;
    match tag {
        0 => ritm_dictionary::FreshnessStatement::from_bytes(body)
            .ok()
            .map(RefreshMessage::Freshness),
        1 => SignedRoot::from_bytes(body)
            .ok()
            .map(RefreshMessage::NewRoot),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::RaConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_ca::CertificationAuthority;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::SerialNumber;

    const T0: u64 = 1_000_000;

    struct World {
        ca: CertificationAuthority,
        cdn: Cdn,
        ra: RevocationAgent,
        rng: StdRng,
    }

    fn world() -> World {
        let mut rng = StdRng::seed_from_u64(31);
        let mut cdn = Cdn::new(SimDuration::from_secs(5));
        let ca = CertificationAuthority::new(
            "SyncCA",
            SigningKey::from_seed([3u8; 32]),
            10,
            1 << 16,
            &mut cdn,
            &mut rng,
            T0,
        );
        let mut ra = RevocationAgent::new(RaConfig {
            delta: 10,
            ..Default::default()
        });
        ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
            .unwrap();
        World { ca, cdn, ra, rng }
    }

    fn issue_and_revoke(w: &mut World, subjects: core::ops::Range<u32>, now: u64) {
        let key = SigningKey::from_seed([7u8; 32]).verifying_key();
        let serials: Vec<SerialNumber> = subjects
            .map(|i| {
                w.ca.issue_certificate(&format!("s{i}.com"), key, 0, u64::MAX)
                    .serial
            })
            .collect();
        w.ca.revoke(&serials, &mut w.cdn, &mut w.rng, now).unwrap();
    }

    #[test]
    fn sync_applies_new_revocations_and_freshness() {
        let mut w = world();
        issue_and_revoke(&mut w, 0..5, T0 + 1);
        w.ca.refresh(&mut w.cdn, &mut w.rng, T0 + 2).unwrap();

        let report =
            w.ra.sync(&mut w.cdn, SimTime::from_secs(T0 + 2), &mut w.rng);
        assert_eq!(report.issuances_applied, 1);
        assert_eq!(report.revocations_applied, 5);
        assert_eq!(report.freshness_applied, 1);
        assert_eq!(report.rejected, 0);
        assert!(report.bytes_downloaded > 0);
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 5);
        assert_eq!(
            w.ra.mirror(&w.ca.id()).unwrap().signed_root(),
            w.ca.dictionary().signed_root()
        );
    }

    #[test]
    fn repeated_sync_is_idempotent() {
        let mut w = world();
        issue_and_revoke(&mut w, 0..3, T0 + 1);
        w.ra.sync(&mut w.cdn, SimTime::from_secs(T0 + 2), &mut w.rng);
        let second =
            w.ra.sync(&mut w.cdn, SimTime::from_secs(T0 + 3), &mut w.rng);
        assert_eq!(second.issuances_applied, 0, "nothing new to apply");
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 3);
    }

    #[test]
    fn missed_batch_triggers_catchup() {
        let mut w = world();
        // Two batches published while the RA was offline.
        issue_and_revoke(&mut w, 0..4, T0 + 1);
        issue_and_revoke(&mut w, 4..9, T0 + 2);

        let report =
            w.ra.sync(&mut w.cdn, SimTime::from_secs(T0 + 3), &mut w.rng);
        // The Latest bundle only carries the second batch, so the RA detects
        // the gap and issues a catch-up request.
        assert_eq!(report.catchups, 1);
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 9);
    }

    #[test]
    fn overlapping_bundle_is_trimmed() {
        let mut w = world();
        issue_and_revoke(&mut w, 0..4, T0 + 1);
        w.ra.sync(&mut w.cdn, SimTime::from_secs(T0 + 2), &mut w.rng);
        // New batch; the Latest bundle holds only it, no overlap problem —
        // but craft overlap explicitly via issuance_since(0).
        issue_and_revoke(&mut w, 4..6, T0 + 3);
        // Publish the *full* history (overlapping the RA's 4 known entries)
        // as the Latest bundle; the RA must trim the known prefix.
        let full = w.ca.issuance_since(0);
        w.cdn
            .origin
            .publish_raw(ContentKey::Latest { ca: w.ca.id() }, full.to_bytes());
        w.cdn.flush_edges();
        let report =
            w.ra.sync(&mut w.cdn, SimTime::from_secs(T0 + 4), &mut w.rng);
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 6);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn fig7_shape_freshness_dominates_quiet_periods() {
        // During a quiet Δ the pull is ~tens of bytes (freshness +
        // zero-issuance bundle); during a revocation burst it grows with the
        // batch (the Fig. 7 contrast).
        let mut w = world();
        issue_and_revoke(&mut w, 0..1, T0 + 1);
        w.ra.sync(&mut w.cdn, SimTime::from_secs(T0 + 2), &mut w.rng);

        w.ca.refresh(&mut w.cdn, &mut w.rng, T0 + 12).unwrap();
        let quiet =
            w.ra.sync(&mut w.cdn, SimTime::from_secs(T0 + 12), &mut w.rng);

        issue_and_revoke(&mut w, 1..1001, T0 + 21);
        let burst =
            w.ra.sync(&mut w.cdn, SimTime::from_secs(T0 + 22), &mut w.rng);
        assert!(
            burst.bytes_downloaded > 10 * quiet.bytes_downloaded,
            "burst {} vs quiet {}",
            burst.bytes_downloaded,
            quiet.bytes_downloaded
        );
    }

    #[test]
    fn chain_rotation_followed() {
        // A short chain forces NewRoot rotations; the RA must keep up.
        let mut rng = StdRng::seed_from_u64(77);
        let mut cdn = Cdn::new(SimDuration::from_secs(5));
        let mut ca = CertificationAuthority::new(
            "RotCA",
            SigningKey::from_seed([8u8; 32]),
            10,
            3,
            &mut cdn,
            &mut rng,
            T0,
        );
        let mut ra = RevocationAgent::new(RaConfig {
            delta: 10,
            ..Default::default()
        });
        ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
            .unwrap();
        // 5 periods later the chain (length 3) is exhausted → NewRoot.
        let msg = ca.refresh(&mut cdn, &mut rng, T0 + 50).unwrap();
        assert!(matches!(msg, RefreshMessage::NewRoot(_)));
        let report = ra.sync(&mut cdn, SimTime::from_secs(T0 + 50), &mut rng);
        assert_eq!(report.freshness_applied, 1);
        assert_eq!(
            ra.mirror(&ca.id()).unwrap().signed_root(),
            ca.dictionary().signed_root()
        );
    }
}
