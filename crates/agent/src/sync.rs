//! RA ↔ CDN synchronization (paper §III "Dissemination" + §VI: "Every Δ,
//! each RA contacts an edge server via an HTTP GET request to pull new
//! revocations and freshness statements").
//!
//! Since the wire-protocol redesign the RA speaks *only*
//! [`ritm_proto::RitmRequest`] envelopes through a [`Transport`]
//! ([`RevocationAgent::sync_via`]): the same sync pass runs against an
//! in-process `Loopback` over a CDN `EdgeService`, a `ritm-net`
//! simulated path, or a real TCP connection, moving byte-identical frames.
//! The pass is batched into pipelined flights
//! ([`Transport::round_trip_many`]), so on the event-driven transport a
//! sync round keeps every CA's requests in flight at once (~2 RTTs total)
//! while sequential transports run the identical frames one at a time. On
//! an envelope-v2 peer the flight is additionally *multiplexed*: each
//! request carries a request id and the server may answer out of order,
//! so one slow delta (a large `CatchUp`) no longer delays the freshness
//! statements queued behind it — the transport correlates replies by id
//! and the sync logic sees them in request order regardless.
//! The per-Δ download volume measured here is exactly what Fig. 7 plots —
//! now as actual encoded envelope bytes — and the billed traffic feeds
//! Fig. 6 / Table II.

use crate::ra::RevocationAgent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
#[cfg(any(test, feature = "legacy-harness"))]
use ritm_cdn::network::Cdn;
#[cfg(any(test, feature = "legacy-harness"))]
use ritm_cdn::service::EdgeService;
use ritm_dictionary::{
    CaId, EngineError, MirrorEngine, RevocationIssuance, UpdateError, UpdateMessage,
};
use ritm_net::time::{SimDuration, SimTime};
#[cfg(any(test, feature = "legacy-harness"))]
use ritm_proto::Loopback;
use ritm_proto::{ProtoError, RitmRequest, RitmResponse, RoundTrip, Transport, TransportMeta};

/// Bounded retry with exponential backoff and jitter, applied to every
/// round trip of a sync pass. A failed round trip (no decodable response)
/// is re-sent up to [`RetryPolicy::max_attempts`] times total; the pause
/// before attempt *k* is `base · 2^(k-2)` capped at [`RetryPolicy::cap`],
/// with equal jitter (half fixed, half uniform) drawn from a seeded
/// stream so a failing pass replays deterministically. Pauses are charged
/// to the report as simulated time ([`SyncReport::backoff`]), consistent
/// with how every other latency in the stack is accounted.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request, the first included (1 = no retry).
    pub max_attempts: u32,
    /// Backoff unit before the first retry.
    pub base: SimDuration,
    /// Upper bound on a single backoff pause.
    pub cap: SimDuration,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: SimDuration::from_millis(100),
            cap: SimDuration::from_secs(2),
            jitter_seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: every round trip gets exactly one attempt.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// The pause charged before attempt `attempt` (2-based; attempt 1 is
    /// the original send and pauses nothing).
    fn backoff(&self, attempt: u32, rng: &mut StdRng) -> SimDuration {
        let exp = attempt.saturating_sub(2).min(20);
        let raw = (self.base * (1u64 << exp))
            .as_micros()
            .min(self.cap.as_micros());
        let half = raw / 2;
        SimDuration::from_micros(half + rng.gen_range(0..=half.max(1)))
    }
}

/// Everything a sync pass can be tuned on.
#[derive(Debug, Clone, Copy)]
pub struct SyncPolicy {
    /// Per-round-trip retry behaviour.
    pub retry: RetryPolicy,
    /// Serials requested per `CatchUpPaged` page. The default is the
    /// protocol-wide [`ritm_proto::MAX_PAGE_LIMIT`], the largest page a
    /// server will serve — any gap then converges in the fewest pages
    /// that each still fit [`ritm_proto::MAX_FRAME_LEN`].
    pub page_limit: u32,
    /// Hard cap on catch-up pages pulled per CA per pass — a backstop
    /// against a misbehaving server feeding an endless page stream.
    pub max_pages: u32,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy {
            retry: RetryPolicy::default(),
            page_limit: ritm_proto::MAX_PAGE_LIMIT,
            max_pages: 10_000,
        }
    }
}

/// Result of one periodic sync pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SyncReport {
    /// Total response-envelope bytes downloaded this pass (the Fig. 7
    /// y-axis: every byte the RA's access link actually received).
    pub bytes_downloaded: u64,
    /// Total request-envelope bytes uploaded this pass.
    pub bytes_uploaded: u64,
    /// Issuance batches applied.
    pub issuances_applied: u64,
    /// New revocations learned.
    pub revocations_applied: u64,
    /// Freshness statements applied.
    pub freshness_applied: u64,
    /// Desynchronized CAs repaired via catch-up this pass.
    pub catchups: u64,
    /// Catch-up pages applied (a gap spanning several issuance batches
    /// arrives as that many `DeltaPage` responses).
    pub catchup_pages: u64,
    /// Messages that failed verification (or arrived as the wrong response
    /// kind) and were discarded.
    pub rejected: u64,
    /// Round trips that produced no decodable response at all (socket
    /// failure, dropped segments, protocol version the RA cannot parse),
    /// counted per attempt — a request that fails twice and then lands
    /// contributes 2 here and 2 to [`SyncReport::retries`].
    pub transport_failures: u64,
    /// Failed round trips that were re-sent under the retry policy.
    pub retries: u64,
    /// Requests abandoned after exhausting every retry attempt.
    pub gave_up: u64,
    /// Accumulated download latency as the transport observed it,
    /// including [`SyncReport::backoff`].
    pub latency: SimDuration,
    /// Simulated time spent pausing between retry attempts.
    pub backoff: SimDuration,
}

impl SyncReport {
    fn absorb(&mut self, meta: &TransportMeta) {
        self.bytes_downloaded += meta.response_bytes;
        self.bytes_uploaded += meta.request_bytes;
        self.latency = self.latency + meta.latency;
    }
}

/// Sends `reqs` as one pipelined flight, then re-sends only the failed
/// entries (with backoff) until everything has a response or the policy's
/// attempts are exhausted. Returns one slot per request — `None` means
/// abandoned; byte/latency accounting for every successful round trip is
/// already absorbed into `report`.
fn flight_with_retry<T: Transport>(
    transport: &mut T,
    reqs: &[RitmRequest],
    policy: &RetryPolicy,
    rng: &mut StdRng,
    report: &mut SyncReport,
) -> Vec<Option<RoundTrip>> {
    let mut slots: Vec<Option<RoundTrip>> = reqs.iter().map(|_| None).collect();
    let mut pending: Vec<usize> = (0..reqs.len()).collect();
    let mut attempt = 1u32;
    loop {
        let batch: Vec<RitmRequest> = pending.iter().map(|&i| reqs[i].clone()).collect();
        let results = transport.round_trip_many(&batch);
        let mut still = Vec::new();
        for (&i, result) in pending.iter().zip(results) {
            match result {
                Ok(rt) => {
                    report.absorb(&rt.meta);
                    slots[i] = Some(rt);
                }
                // An *error response* is authoritative and lands in the
                // slot above; only transport-level failures retry.
                Err(_) => {
                    report.transport_failures += 1;
                    still.push(i);
                }
            }
        }
        pending = still;
        if pending.is_empty() || attempt >= policy.max_attempts {
            report.gave_up += pending.len() as u64;
            return slots;
        }
        attempt += 1;
        report.retries += pending.len() as u64;
        let pause = policy.backoff(attempt, rng);
        report.backoff = report.backoff + pause;
        report.latency = report.latency + pause;
    }
}

impl<M: MirrorEngine> RevocationAgent<M> {
    /// One periodic pull (every Δ) over the wire protocol: for each
    /// mirrored CA, request the latest issuance bundle and freshness
    /// statement through `transport`, apply them, and repair any detected
    /// desynchronization with a `CatchUp` request.
    ///
    /// The pull is batched into at most two pipelined flights
    /// ([`Transport::round_trip_many`]): every CA's `FetchDelta` and
    /// `FetchFreshness` go out together, then one `CatchUp` per
    /// desynchronized CA. On a pipelining transport (the event-driven
    /// `EventTransport`) a whole sync round therefore costs ~2 RTTs
    /// regardless of how many CAs the RA mirrors; on sequential transports
    /// the batches degrade to the former one-at-a-time behaviour with
    /// byte-identical frames. Per CA the application order is unchanged:
    /// delta, then any catch-up repair, then freshness.
    ///
    /// A missing object ([`ProtoError::NotFound`] — the CA has published
    /// nothing yet) is benign; any other error response, undecodable
    /// message, or failed verification is counted in the report.
    ///
    /// Every round trip runs under the default [`SyncPolicy`]: failed
    /// flights re-send only their failed entries with exponential backoff
    /// and jitter instead of silently dropping the round, and gaps are
    /// repaired with *paged* catch-up, so no gap — however large — can
    /// dead-end in a `ResponseTooLarge` refusal. Use
    /// [`RevocationAgent::sync_via_with`] to tune the policy.
    pub fn sync_via<T: Transport>(&mut self, transport: &mut T, now: SimTime) -> SyncReport {
        self.sync_via_with(transport, now, &SyncPolicy::default())
    }

    /// [`RevocationAgent::sync_via`] with an explicit [`SyncPolicy`].
    pub fn sync_via_with<T: Transport>(
        &mut self,
        transport: &mut T,
        now: SimTime,
        policy: &SyncPolicy,
    ) -> SyncReport {
        let mut report = SyncReport::default();
        let now_secs = now.as_secs();
        let cas: Vec<CaId> = self.followed_cas().copied().collect();
        if cas.is_empty() {
            return report;
        }
        let mut rng = StdRng::seed_from_u64(policy.retry.jitter_seed);

        // Flight 1: delta + freshness for every CA, kept in flight at once.
        let mut reqs = Vec::with_capacity(cas.len() * 2);
        for &ca in &cas {
            reqs.push(RitmRequest::FetchDelta { ca });
            reqs.push(RitmRequest::FetchFreshness { ca });
        }
        let mut flight =
            flight_with_retry(transport, &reqs, &policy.retry, &mut rng, &mut report).into_iter();

        // Apply deltas as their responses come off the flight, deferring
        // freshness until after any catch-up repair for the same CA.
        let mut fresh_pending = Vec::with_capacity(cas.len());
        let mut catchups: Vec<(CaId, u64)> = Vec::new();
        for &ca in &cas {
            let delta = flight.next().expect("one result per request");
            let fresh = flight.next().expect("one result per request");
            if let Some(rt) = delta {
                match rt.response {
                    RitmResponse::Delta(iss) => {
                        if let Some(have) = self.apply_delta(ca, iss, now_secs, &mut report) {
                            catchups.push((ca, have));
                        }
                    }
                    RitmResponse::Error(ProtoError::NotFound) => {}
                    // An endpoint with no Latest bundle at all (the CA's
                    // own service): catch up from what we hold instead.
                    RitmResponse::Error(ProtoError::Unsupported) => {
                        let have = self
                            .mirror(&ca)
                            .expect("followed ca has a mirror")
                            .consecutive_count();
                        catchups.push((ca, have));
                    }
                    _ => report.rejected += 1,
                }
            }
            fresh_pending.push((ca, fresh));
        }

        // Flight 2: the paper's catch-up requests for every CA that
        // detected a gap, paged and pipelined — first page per CA in one
        // flight, then each CA drains its remaining pages.
        if !catchups.is_empty() {
            let reqs: Vec<RitmRequest> = catchups
                .iter()
                .map(|&(ca, have)| RitmRequest::CatchUpPaged {
                    ca,
                    have,
                    limit: policy.page_limit,
                })
                .collect();
            let firsts = flight_with_retry(transport, &reqs, &policy.retry, &mut rng, &mut report);
            for ((ca, _), first) in catchups.into_iter().zip(firsts) {
                self.drain_pages(
                    transport,
                    ca,
                    first,
                    now_secs,
                    policy,
                    &mut rng,
                    &mut report,
                );
            }
        }

        // Freshness statements last, so a repaired mirror judges them
        // against its post-catch-up root.
        for (ca, result) in fresh_pending {
            if let Some(rt) = result {
                match rt.response {
                    RitmResponse::Freshness(msg) => {
                        let res = self
                            .mirror_mut(&ca)
                            .expect("followed ca has a mirror")
                            .apply_update(UpdateMessage::Refresh(&msg), now_secs);
                        match res {
                            Ok(()) => report.freshness_applied += 1,
                            Err(_) => report.rejected += 1,
                        }
                    }
                    RitmResponse::Error(ProtoError::NotFound) => {}
                    _ => report.rejected += 1,
                }
            }
        }
        report
    }

    /// Pulls catch-up pages for one desynchronized CA until the server
    /// reports nothing remaining, applying each as it lands. `first` is
    /// the (already retried) response to the first `CatchUpPaged`; a peer
    /// predating the paged protocol answers it `Malformed`, which falls
    /// back to one unpaged `CatchUp`.
    #[allow(clippy::too_many_arguments)]
    fn drain_pages<T: Transport>(
        &mut self,
        transport: &mut T,
        ca: CaId,
        first: Option<RoundTrip>,
        now_secs: u64,
        policy: &SyncPolicy,
        rng: &mut StdRng,
        report: &mut SyncReport,
    ) {
        let mut result = first;
        let mut applied_any = false;
        let mut pages = 0u32;
        // `None` = retries exhausted, already accounted as gave_up.
        while let Some(rt) = result.take() {
            match rt.response {
                RitmResponse::DeltaPage {
                    issuance,
                    remaining,
                } => {
                    if issuance.serials.is_empty() {
                        // An empty page with `remaining > 0` can never make
                        // progress; empty with 0 means already caught up.
                        if remaining > 0 {
                            report.rejected += 1;
                        }
                        break;
                    }
                    let serials = issuance.serials.len() as u64;
                    let applied = self
                        .mirror_mut(&ca)
                        .expect("followed ca has a mirror")
                        .apply_update(UpdateMessage::Issuance(&issuance), now_secs)
                        .is_ok();
                    if !applied {
                        report.rejected += 1;
                        break;
                    }
                    report.catchup_pages += 1;
                    report.issuances_applied += 1;
                    report.revocations_applied += serials;
                    applied_any = true;
                    pages += 1;
                    if remaining == 0 {
                        break;
                    }
                    if pages >= policy.max_pages {
                        report.rejected += 1;
                        break;
                    }
                    let have = self
                        .mirror(&ca)
                        .expect("followed ca has a mirror")
                        .consecutive_count();
                    result = flight_with_retry(
                        transport,
                        &[RitmRequest::CatchUpPaged {
                            ca,
                            have,
                            limit: policy.page_limit,
                        }],
                        &policy.retry,
                        rng,
                        report,
                    )
                    .pop()
                    .expect("one result per request");
                }
                // A pre-paging peer cannot decode the CatchUpPaged frame:
                // negotiate down to the unpaged form, once.
                RitmResponse::Error(ProtoError::Malformed { .. }) if !applied_any => {
                    let have = self
                        .mirror(&ca)
                        .expect("followed ca has a mirror")
                        .consecutive_count();
                    let fallback = flight_with_retry(
                        transport,
                        &[RitmRequest::CatchUp { ca, have }],
                        &policy.retry,
                        rng,
                        report,
                    )
                    .pop()
                    .expect("one result per request");
                    if let Some(rt) = fallback {
                        if let RitmResponse::Delta(catchup) = rt.response {
                            let serials = catchup.serials.len() as u64;
                            if self
                                .mirror_mut(&ca)
                                .expect("followed ca has a mirror")
                                .apply_update(UpdateMessage::Issuance(&catchup), now_secs)
                                .is_ok()
                            {
                                report.issuances_applied += 1;
                                report.revocations_applied += serials;
                                applied_any = true;
                            } else {
                                report.rejected += 1;
                            }
                        } else {
                            report.rejected += 1;
                        }
                    }
                    break;
                }
                _ => {
                    report.rejected += 1;
                    break;
                }
            }
        }
        if applied_any {
            report.catchups += 1;
        }
    }

    /// Compatibility shim for harnesses that own a [`Cdn`] directly: wraps
    /// it in a borrowed [`EdgeService`] behind an in-process [`Loopback`]
    /// and runs [`RevocationAgent::sync_via`] — the sync itself always
    /// speaks the wire protocol. `rng` seeds the edge's latency sampling.
    ///
    /// Only compiled with the `legacy-harness` feature; default builds are
    /// deprecation-clean.
    #[cfg(feature = "legacy-harness")]
    #[deprecated(note = "build an EdgeService + Transport and call sync_via")]
    pub fn sync<R: rand::Rng + ?Sized>(
        &mut self,
        cdn: &mut Cdn,
        now: SimTime,
        rng: &mut R,
    ) -> SyncReport {
        let service = EdgeService::new(&mut *cdn, self.config.region, rng.next_u64());
        service.set_now(now);
        let mut transport = Loopback::new(service);
        self.sync_via(&mut transport, now)
    }

    /// Applies one pulled issuance bundle. Returns `Some(have)` when the
    /// mirror detected a gap and a `CatchUp { have }` follow-up is needed
    /// (issued by the caller's second flight).
    fn apply_delta(
        &mut self,
        ca: CaId,
        issuance: RevocationIssuance,
        now_secs: u64,
        report: &mut SyncReport,
    ) -> Option<u64> {
        let have = self
            .mirror(&ca)
            .expect("followed ca has a mirror")
            .consecutive_count();
        let last = issuance.first_number + issuance.serials.len() as u64 - 1;
        if last <= have {
            return None; // nothing new in the bundle
        }
        // Trim the already-known prefix (the Latest bundle may overlap).
        let issuance = if issuance.first_number <= have {
            let skip = (have + 1 - issuance.first_number) as usize;
            RevocationIssuance {
                first_number: have + 1,
                serials: issuance.serials[skip..].to_vec(),
                signed_root: issuance.signed_root,
            }
        } else {
            issuance
        };
        let outcome = {
            let mut mirror = self.mirror_mut(&ca).expect("followed ca has a mirror");
            mirror.apply_update(UpdateMessage::Issuance(&issuance), now_secs)
            // Guard drops here, republishing the snapshot if the update
            // landed — before any catch-up round-trip.
        };
        match outcome {
            Ok(()) => {
                report.issuances_applied += 1;
                report.revocations_applied += issuance.serials.len() as u64;
                None
            }
            // Paper's sync protocol: request everything after `have`.
            Err(EngineError::Update(UpdateError::Desynchronized { have, .. })) => Some(have),
            Err(_) => {
                report.rejected += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::RaConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_ca::CertificationAuthority;
    use ritm_cdn::origin::ContentKey;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::{RefreshMessage, SerialNumber};

    const T0: u64 = 1_000_000;

    struct World {
        ca: CertificationAuthority,
        cdn: Cdn,
        ra: RevocationAgent,
        rng: StdRng,
    }

    fn world() -> World {
        let mut rng = StdRng::seed_from_u64(31);
        let mut cdn = Cdn::new(SimDuration::from_secs(5));
        let ca = CertificationAuthority::new(
            "SyncCA",
            SigningKey::from_seed([3u8; 32]),
            10,
            1 << 16,
            &mut cdn,
            &mut rng,
            T0,
        );
        let mut ra = RevocationAgent::new(RaConfig {
            delta: 10,
            ..Default::default()
        });
        ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
            .unwrap();
        World { ca, cdn, ra, rng }
    }

    /// One sync pass over the real protocol: borrowed edge service behind
    /// an in-process loopback transport.
    fn sync(w: &mut World, now: u64) -> SyncReport {
        let region = w.ra.config.region;
        let service = EdgeService::new(&mut w.cdn, region, 17);
        service.set_now(SimTime::from_secs(now));
        let mut transport = Loopback::new(service);
        w.ra.sync_via(&mut transport, SimTime::from_secs(now))
    }

    fn issue_and_revoke(w: &mut World, subjects: core::ops::Range<u32>, now: u64) {
        let key = SigningKey::from_seed([7u8; 32]).verifying_key();
        let serials: Vec<SerialNumber> = subjects
            .map(|i| {
                w.ca.issue_certificate(&format!("s{i}.com"), key, 0, u64::MAX)
                    .serial
            })
            .collect();
        w.ca.revoke(&serials, &mut w.cdn, &mut w.rng, now).unwrap();
    }

    #[test]
    fn sync_applies_new_revocations_and_freshness() {
        let mut w = world();
        issue_and_revoke(&mut w, 0..5, T0 + 1);
        w.ca.refresh(&mut w.cdn, &mut w.rng, T0 + 2).unwrap();

        let report = sync(&mut w, T0 + 2);
        assert_eq!(report.issuances_applied, 1);
        assert_eq!(report.revocations_applied, 5);
        assert_eq!(report.freshness_applied, 1);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.transport_failures, 0);
        assert!(report.bytes_downloaded > 0);
        assert!(report.bytes_uploaded > 0);
        assert!(report.latency > SimDuration::ZERO, "edge latency charged");
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 5);
        assert_eq!(
            w.ra.mirror(&w.ca.id()).unwrap().signed_root(),
            w.ca.dictionary().signed_root()
        );
    }

    #[test]
    fn repeated_sync_is_idempotent() {
        let mut w = world();
        issue_and_revoke(&mut w, 0..3, T0 + 1);
        sync(&mut w, T0 + 2);
        let second = sync(&mut w, T0 + 3);
        assert_eq!(second.issuances_applied, 0, "nothing new to apply");
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 3);
    }

    #[test]
    fn missed_batch_triggers_catchup() {
        let mut w = world();
        // Two batches published while the RA was offline.
        issue_and_revoke(&mut w, 0..4, T0 + 1);
        issue_and_revoke(&mut w, 4..9, T0 + 2);

        let report = sync(&mut w, T0 + 3);
        // The Latest bundle only carries the second batch, so the RA detects
        // the gap and issues a catch-up request.
        assert_eq!(report.catchups, 1);
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 9);
    }

    #[test]
    fn overlapping_bundle_is_trimmed() {
        let mut w = world();
        issue_and_revoke(&mut w, 0..4, T0 + 1);
        sync(&mut w, T0 + 2);
        // New batch; the Latest bundle holds only it, no overlap problem —
        // but craft overlap explicitly via issuance_since(0).
        issue_and_revoke(&mut w, 4..6, T0 + 3);
        // Publish the *full* history (overlapping the RA's 4 known entries)
        // as the Latest bundle; the RA must trim the known prefix.
        let full = w.ca.issuance_since(0);
        w.cdn
            .origin
            .publish_raw(ContentKey::Latest { ca: w.ca.id() }, full.to_bytes());
        w.cdn.flush_edges();
        let report = sync(&mut w, T0 + 4);
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 6);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn fig7_shape_freshness_dominates_quiet_periods() {
        // During a quiet Δ the pull is ~tens of bytes (freshness +
        // zero-issuance bundle); during a revocation burst it grows with the
        // batch (the Fig. 7 contrast). Volumes are now true envelope bytes.
        let mut w = world();
        issue_and_revoke(&mut w, 0..1, T0 + 1);
        sync(&mut w, T0 + 2);

        w.ca.refresh(&mut w.cdn, &mut w.rng, T0 + 12).unwrap();
        let quiet = sync(&mut w, T0 + 12);

        issue_and_revoke(&mut w, 1..1001, T0 + 21);
        let burst = sync(&mut w, T0 + 22);
        assert!(
            burst.bytes_downloaded > 10 * quiet.bytes_downloaded,
            "burst {} vs quiet {}",
            burst.bytes_downloaded,
            quiet.bytes_downloaded
        );
    }

    #[test]
    fn chain_rotation_followed() {
        // A short chain forces NewRoot rotations; the RA must keep up.
        let mut rng = StdRng::seed_from_u64(77);
        let mut cdn = Cdn::new(SimDuration::from_secs(5));
        let mut ca = CertificationAuthority::new(
            "RotCA",
            SigningKey::from_seed([8u8; 32]),
            10,
            3,
            &mut cdn,
            &mut rng,
            T0,
        );
        let mut ra = RevocationAgent::new(RaConfig {
            delta: 10,
            ..Default::default()
        });
        ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
            .unwrap();
        // 5 periods later the chain (length 3) is exhausted → NewRoot.
        let msg = ca.refresh(&mut cdn, &mut rng, T0 + 50).unwrap();
        assert!(matches!(msg, RefreshMessage::NewRoot(_)));
        let service = EdgeService::new(&mut cdn, ra.config.region, 5);
        service.set_now(SimTime::from_secs(T0 + 50));
        let mut transport = Loopback::new(service);
        let report = ra.sync_via(&mut transport, SimTime::from_secs(T0 + 50));
        assert_eq!(report.freshness_applied, 1);
        assert_eq!(
            ra.mirror(&ca.id()).unwrap().signed_root(),
            ca.dictionary().signed_root()
        );
    }

    /// Records the batch size of every flight the RA issues.
    struct Recording<T> {
        inner: T,
        batches: Vec<usize>,
    }

    impl<T: Transport> Transport for Recording<T> {
        fn round_trip(
            &mut self,
            req: &RitmRequest,
        ) -> Result<ritm_proto::RoundTrip, ritm_proto::TransportError> {
            self.batches.push(1);
            self.inner.round_trip(req)
        }

        fn round_trip_many(
            &mut self,
            reqs: &[RitmRequest],
        ) -> Vec<Result<ritm_proto::RoundTrip, ritm_proto::TransportError>> {
            self.batches.push(reqs.len());
            self.inner.round_trip_many(reqs)
        }
    }

    #[test]
    fn sync_round_is_two_pipelined_flights() {
        let mut w = world();
        // Two batches published while the RA was offline: the sync must
        // need a catch-up, and still issue exactly two flights — one
        // delta+freshness batch, one catch-up batch.
        issue_and_revoke(&mut w, 0..4, T0 + 1);
        issue_and_revoke(&mut w, 4..9, T0 + 2);
        let region = w.ra.config.region;
        let service = EdgeService::new(&mut w.cdn, region, 17);
        service.set_now(SimTime::from_secs(T0 + 3));
        let mut transport = Recording {
            inner: Loopback::new(service),
            batches: Vec::new(),
        };
        let report = w.ra.sync_via(&mut transport, SimTime::from_secs(T0 + 3));
        assert_eq!(report.catchups, 1);
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 9);
        assert_eq!(
            transport.batches,
            vec![2, 1],
            "delta+freshness in one flight, catch-up in a second"
        );
    }

    #[test]
    fn flaky_transport_retries_only_failed_requests() {
        // Across a deterministic band of fault seeds the sync must (a) see
        // real injected failures, (b) recover from them by retrying, and
        // (c) leave the mirror fully converged whenever it did not give up.
        let mut saw_failures = false;
        let mut saw_recovery = false;
        for seed in 0..32u64 {
            let mut w = world();
            issue_and_revoke(&mut w, 0..20, T0 + 1);
            w.ca.refresh(&mut w.cdn, &mut w.rng, T0 + 2).unwrap();
            let region = w.ra.config.region;
            let service = EdgeService::new(&mut w.cdn, region, 17);
            service.set_now(SimTime::from_secs(T0 + 2));
            let mut transport = ritm_proto::FaultTransport::new(
                Loopback::new(service),
                ritm_proto::FaultPlan::lossy(0.6),
                seed,
            );
            let report = w.ra.sync_via(&mut transport, SimTime::from_secs(T0 + 2));
            saw_failures |= report.transport_failures > 0;
            if report.transport_failures > 0 && report.gave_up == 0 {
                saw_recovery = true;
                assert!(report.retries > 0, "seed {seed}: failures imply retries");
                assert!(report.backoff > SimDuration::ZERO, "seed {seed}");
            }
            if report.gave_up == 0 {
                assert_eq!(report.issuances_applied, 1, "seed {seed}");
                assert_eq!(report.freshness_applied, 1, "seed {seed}");
                assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 20, "seed {seed}");
            }
        }
        assert!(saw_failures, "the lossy plan injected nothing in 32 runs");
        assert!(saw_recovery, "no run both failed and fully recovered");
    }

    #[test]
    fn dead_transport_gives_up_after_bounded_retry() {
        let mut w = world();
        issue_and_revoke(&mut w, 0..3, T0 + 1);
        let region = w.ra.config.region;
        let service = EdgeService::new(&mut w.cdn, region, 17);
        service.set_now(SimTime::from_secs(T0 + 2));
        let mut plan = ritm_proto::FaultPlan::none();
        plan.drop_request = 1.0;
        let mut transport = ritm_proto::FaultTransport::new(Loopback::new(service), plan, 1);
        let report = w.ra.sync_via(&mut transport, SimTime::from_secs(T0 + 2));
        let attempts = RetryPolicy::default().max_attempts as u64;
        assert_eq!(report.gave_up, 2, "delta + freshness both abandoned");
        assert_eq!(report.retries, 2 * (attempts - 1));
        assert_eq!(report.transport_failures, 2 * attempts);
        assert_eq!(report.issuances_applied, 0);
        assert_eq!(
            w.ra.mirror(&w.ca.id()).unwrap().len(),
            0,
            "mirror untouched"
        );
    }

    #[test]
    fn wide_gap_converges_in_bounded_pages() {
        let mut w = world();
        // Five batches published while the RA was offline; the Latest
        // bundle carries only the last, so catch-up pages through the rest.
        for b in 0..5u32 {
            issue_and_revoke(&mut w, b * 10..(b + 1) * 10, T0 + 1 + b as u64);
        }
        let region = w.ra.config.region;
        let service = EdgeService::new(&mut w.cdn, region, 17);
        service.set_now(SimTime::from_secs(T0 + 9));
        let mut transport = Loopback::new(service);
        let policy = SyncPolicy {
            page_limit: 16,
            ..Default::default()
        };
        let report =
            w.ra.sync_via_with(&mut transport, SimTime::from_secs(T0 + 9), &policy);
        assert_eq!(report.catchups, 1, "one CA repaired");
        assert_eq!(report.catchup_pages, 5, "one page per missed batch");
        assert_eq!(report.rejected, 0);
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 50);
        assert_eq!(
            w.ra.mirror(&w.ca.id()).unwrap().signed_root(),
            w.ca.dictionary().signed_root()
        );
    }

    #[test]
    fn megagap_dead_ends_unpaged_but_converges_paged() {
        // A ~1.6M-serial gap (20-byte serials, 21 wire bytes each) used to
        // dead-end: the unpaged CatchUp response exceeds MAX_FRAME_LEN and
        // the server degrades it to ResponseTooLarge, which the RA could
        // only count as rejected, forever. Paged catch-up converges in
        // MAX_PAGE_LIMIT-sized pages that each fit a frame.
        const N: u64 = 1_600_000;
        const BATCH: u64 = 200_000;
        let mut rng = StdRng::seed_from_u64(41);
        let mut cdn = Cdn::new(SimDuration::from_secs(5));
        // Raw dictionary + direct origin publishes: the certificate
        // registry is irrelevant to the wire-size regression under test.
        let mut ca = ritm_dictionary::CaDictionary::new(
            CaId::from_name("MegaCA"),
            SigningKey::from_seed([6u8; 32]),
            10,
            1 << 16,
            &mut rng,
            T0,
        );
        cdn.origin.register_ca(ca.ca(), ca.verifying_key());
        let mut ra = RevocationAgent::new(RaConfig {
            delta: 10,
            ..Default::default()
        });
        ra.follow_ca(ca.ca(), ca.verifying_key(), *ca.signed_root())
            .unwrap();
        let mut from = 0u64;
        let mut now = T0;
        while from < N {
            let serials: Vec<SerialNumber> = (from..from + BATCH)
                .map(|i| {
                    let mut b = [0u8; 20];
                    b[12..].copy_from_slice(&i.to_be_bytes());
                    SerialNumber::new(&b).unwrap()
                })
                .collect();
            now += 1;
            let iss = ca.insert(&serials, &mut rng, now).unwrap();
            cdn.origin.publish_issuance(ca.ca(), &iss).unwrap();
            from += BATCH;
        }
        let region = ra.config.region;
        let service = EdgeService::new(&mut cdn, region, 17);
        service.set_now(SimTime::from_secs(now));
        let mut transport = Loopback::new(service);

        // The unpaged protocol cannot carry the gap in one response.
        let id = ca.ca();
        let rt = transport
            .round_trip(&RitmRequest::CatchUp { ca: id, have: 0 })
            .unwrap();
        assert!(
            matches!(
                rt.response,
                RitmResponse::Error(ProtoError::ResponseTooLarge { .. })
            ),
            "expected ResponseTooLarge, got a {}-byte response",
            rt.meta.response_bytes
        );

        // The paged sync converges, and the total envelope bytes show the
        // gap really moved — more than any single frame may carry.
        let report = ra.sync_via(&mut transport, SimTime::from_secs(now));
        assert_eq!(report.gave_up, 0);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.catchups, 1);
        assert_eq!(
            report.catchup_pages, 2,
            "1.6M serials at the 2^20 page limit: boundary-aligned 1.0M + 0.6M"
        );
        assert!(
            report.bytes_downloaded > ritm_proto::MAX_FRAME_LEN as u64,
            "downloaded {} bytes",
            report.bytes_downloaded
        );
        assert_eq!(ra.mirror(&id).unwrap().len() as u64, N);
        assert_eq!(ra.mirror(&id).unwrap().signed_root(), ca.signed_root());
    }

    /// Simulates a peer predating the paged protocol: `CatchUpPaged` is an
    /// unknown frame kind to it, answered `Malformed`.
    struct PrePaging<S>(S);

    impl<S: ritm_proto::Service> ritm_proto::Service for PrePaging<S> {
        fn handle(&self, req: RitmRequest) -> RitmResponse {
            match req {
                RitmRequest::CatchUpPaged { .. } => {
                    RitmResponse::Error(ProtoError::Malformed { offset: 5 })
                }
                other => self.0.handle(other),
            }
        }

        fn take_latency(&self) -> SimDuration {
            self.0.take_latency()
        }
    }

    #[test]
    fn pre_paging_peer_falls_back_to_unpaged_catchup() {
        let mut w = world();
        issue_and_revoke(&mut w, 0..4, T0 + 1);
        issue_and_revoke(&mut w, 4..9, T0 + 2);
        let region = w.ra.config.region;
        let service = EdgeService::new(&mut w.cdn, region, 17);
        service.set_now(SimTime::from_secs(T0 + 3));
        let mut transport = Loopback::new(PrePaging(service));
        let report = w.ra.sync_via(&mut transport, SimTime::from_secs(T0 + 3));
        assert_eq!(report.catchups, 1);
        assert_eq!(report.catchup_pages, 0, "no pages from a v1 peer");
        assert_eq!(report.rejected, 0);
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 9);
    }

    #[test]
    #[cfg(feature = "legacy-harness")]
    fn legacy_sync_shim_still_speaks_the_protocol() {
        // The deprecated harness entry point must remain byte-for-byte a
        // protocol sync: same counters as the explicit transport path.
        let mut w = world();
        issue_and_revoke(&mut w, 0..5, T0 + 1);
        w.ca.refresh(&mut w.cdn, &mut w.rng, T0 + 2).unwrap();
        #[allow(deprecated)]
        let report = {
            let mut rng = StdRng::seed_from_u64(99);
            w.ra.sync(&mut w.cdn, SimTime::from_secs(T0 + 2), &mut rng)
        };
        assert_eq!(report.issuances_applied, 1);
        assert_eq!(report.revocations_applied, 5);
        assert_eq!(report.freshness_applied, 1);
        assert!(report.bytes_downloaded > 0 && report.bytes_uploaded > 0);
    }

    #[test]
    fn sync_over_simulated_path_matches_loopback_bytes() {
        // The same sync pass over the ritm-net simulator must move exactly
        // the bytes the loopback moved — the envelopes are the protocol.
        let mut a = world();
        issue_and_revoke(&mut a, 0..7, T0 + 1);
        a.ca.refresh(&mut a.cdn, &mut a.rng, T0 + 2).unwrap();
        let loopback_report = sync(&mut a, T0 + 2);

        let mut b = world();
        issue_and_revoke(&mut b, 0..7, T0 + 1);
        b.ca.refresh(&mut b.cdn, &mut b.rng, T0 + 2).unwrap();
        let region = b.ra.config.region;
        let service = EdgeService::new(b.cdn, region, 17);
        service.set_now(SimTime::from_secs(T0 + 2));
        let mut transport =
            ritm_proto::sim::SimTransport::new(service, SimDuration::from_millis(8));
        let sim_report = b.ra.sync_via(&mut transport, SimTime::from_secs(T0 + 2));

        assert_eq!(
            sim_report.bytes_downloaded,
            loopback_report.bytes_downloaded
        );
        assert_eq!(sim_report.bytes_uploaded, loopback_report.bytes_uploaded);
        assert_eq!(
            sim_report.issuances_applied,
            loopback_report.issuances_applied
        );
        assert_eq!(sim_report.revocations_applied, 7);
        // Latency now includes the simulated propagation on top of the
        // edge's sampled serving time: 8 ms each way for each of the two
        // round trips (delta + freshness).
        assert!(sim_report.latency > loopback_report.latency);
    }
}
