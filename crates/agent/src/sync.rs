//! RA ↔ CDN synchronization (paper §III "Dissemination" + §VI: "Every Δ,
//! each RA contacts an edge server via an HTTP GET request to pull new
//! revocations and freshness statements").
//!
//! Since the wire-protocol redesign the RA speaks *only*
//! [`ritm_proto::RitmRequest`] envelopes through a [`Transport`]
//! ([`RevocationAgent::sync_via`]): the same sync pass runs against an
//! in-process [`Loopback`] over a CDN [`EdgeService`], a `ritm-net`
//! simulated path, or a real TCP connection, moving byte-identical frames.
//! The pass is batched into pipelined flights
//! ([`Transport::round_trip_many`]), so on the event-driven transport a
//! sync round keeps every CA's requests in flight at once (~2 RTTs total)
//! while sequential transports run the identical frames one at a time. On
//! an envelope-v2 peer the flight is additionally *multiplexed*: each
//! request carries a request id and the server may answer out of order,
//! so one slow delta (a large `CatchUp`) no longer delays the freshness
//! statements queued behind it — the transport correlates replies by id
//! and the sync logic sees them in request order regardless.
//! The per-Δ download volume measured here is exactly what Fig. 7 plots —
//! now as actual encoded envelope bytes — and the billed traffic feeds
//! Fig. 6 / Table II.

use crate::ra::RevocationAgent;
use ritm_cdn::network::Cdn;
use ritm_cdn::service::EdgeService;
use ritm_dictionary::{
    CaId, EngineError, MirrorEngine, RevocationIssuance, UpdateError, UpdateMessage,
};
use ritm_net::time::{SimDuration, SimTime};
use ritm_proto::{Loopback, ProtoError, RitmRequest, RitmResponse, Transport, TransportMeta};

/// Result of one periodic sync pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SyncReport {
    /// Total response-envelope bytes downloaded this pass (the Fig. 7
    /// y-axis: every byte the RA's access link actually received).
    pub bytes_downloaded: u64,
    /// Total request-envelope bytes uploaded this pass.
    pub bytes_uploaded: u64,
    /// Issuance batches applied.
    pub issuances_applied: u64,
    /// New revocations learned.
    pub revocations_applied: u64,
    /// Freshness statements applied.
    pub freshness_applied: u64,
    /// Desynchronizations repaired via catch-up requests.
    pub catchups: u64,
    /// Messages that failed verification (or arrived as the wrong response
    /// kind) and were discarded.
    pub rejected: u64,
    /// Round trips that produced no decodable response at all (socket
    /// failure, dropped segments, protocol version the RA cannot parse).
    pub transport_failures: u64,
    /// Accumulated download latency as the transport observed it.
    pub latency: SimDuration,
}

impl SyncReport {
    fn absorb(&mut self, meta: &TransportMeta) {
        self.bytes_downloaded += meta.response_bytes;
        self.bytes_uploaded += meta.request_bytes;
        self.latency = self.latency + meta.latency;
    }
}

impl<M: MirrorEngine> RevocationAgent<M> {
    /// One periodic pull (every Δ) over the wire protocol: for each
    /// mirrored CA, request the latest issuance bundle and freshness
    /// statement through `transport`, apply them, and repair any detected
    /// desynchronization with a `CatchUp` request.
    ///
    /// The pull is batched into at most two pipelined flights
    /// ([`Transport::round_trip_many`]): every CA's `FetchDelta` and
    /// `FetchFreshness` go out together, then one `CatchUp` per
    /// desynchronized CA. On a pipelining transport (the event-driven
    /// `EventTransport`) a whole sync round therefore costs ~2 RTTs
    /// regardless of how many CAs the RA mirrors; on sequential transports
    /// the batches degrade to the former one-at-a-time behaviour with
    /// byte-identical frames. Per CA the application order is unchanged:
    /// delta, then any catch-up repair, then freshness.
    ///
    /// A missing object ([`ProtoError::NotFound`] — the CA has published
    /// nothing yet) is benign; any other error response, undecodable
    /// message, or failed verification is counted in the report.
    pub fn sync_via<T: Transport>(&mut self, transport: &mut T, now: SimTime) -> SyncReport {
        let mut report = SyncReport::default();
        let now_secs = now.as_secs();
        let cas: Vec<CaId> = self.followed_cas().copied().collect();
        if cas.is_empty() {
            return report;
        }

        // Flight 1: delta + freshness for every CA, kept in flight at once.
        let mut reqs = Vec::with_capacity(cas.len() * 2);
        for &ca in &cas {
            reqs.push(RitmRequest::FetchDelta { ca });
            reqs.push(RitmRequest::FetchFreshness { ca });
        }
        let mut flight = transport.round_trip_many(&reqs).into_iter();

        // Apply deltas as their responses come off the flight, deferring
        // freshness until after any catch-up repair for the same CA.
        let mut fresh_pending = Vec::with_capacity(cas.len());
        let mut catchups: Vec<(CaId, u64)> = Vec::new();
        for &ca in &cas {
            let delta = flight.next().expect("one result per request");
            let fresh = flight.next().expect("one result per request");
            match delta {
                Ok(rt) => {
                    report.absorb(&rt.meta);
                    match rt.response {
                        RitmResponse::Delta(iss) => {
                            if let Some(have) = self.apply_delta(ca, iss, now_secs, &mut report) {
                                catchups.push((ca, have));
                            }
                        }
                        RitmResponse::Error(ProtoError::NotFound) => {}
                        _ => report.rejected += 1,
                    }
                }
                Err(_) => report.transport_failures += 1,
            }
            fresh_pending.push((ca, fresh));
        }

        // Flight 2: the paper's catch-up requests for every CA that
        // detected a gap, again pipelined.
        if !catchups.is_empty() {
            let reqs: Vec<RitmRequest> = catchups
                .iter()
                .map(|&(ca, have)| RitmRequest::CatchUp { ca, have })
                .collect();
            let results = transport.round_trip_many(&reqs);
            for ((ca, _), result) in catchups.into_iter().zip(results) {
                match result {
                    Ok(rt) => {
                        report.absorb(&rt.meta);
                        let RitmResponse::Delta(catchup) = rt.response else {
                            report.rejected += 1;
                            continue;
                        };
                        let mut mirror = self.mirror_mut(&ca).expect("followed ca has a mirror");
                        if mirror
                            .apply_update(UpdateMessage::Issuance(&catchup), now_secs)
                            .is_ok()
                        {
                            report.catchups += 1;
                            report.issuances_applied += 1;
                            report.revocations_applied += catchup.serials.len() as u64;
                        } else {
                            report.rejected += 1;
                        }
                    }
                    Err(_) => report.transport_failures += 1,
                }
            }
        }

        // Freshness statements last, so a repaired mirror judges them
        // against its post-catch-up root.
        for (ca, result) in fresh_pending {
            match result {
                Ok(rt) => {
                    report.absorb(&rt.meta);
                    match rt.response {
                        RitmResponse::Freshness(msg) => {
                            let res = self
                                .mirror_mut(&ca)
                                .expect("followed ca has a mirror")
                                .apply_update(UpdateMessage::Refresh(&msg), now_secs);
                            match res {
                                Ok(()) => report.freshness_applied += 1,
                                Err(_) => report.rejected += 1,
                            }
                        }
                        RitmResponse::Error(ProtoError::NotFound) => {}
                        _ => report.rejected += 1,
                    }
                }
                Err(_) => report.transport_failures += 1,
            }
        }
        report
    }

    /// Compatibility shim for harnesses that own a [`Cdn`] directly: wraps
    /// it in a borrowed [`EdgeService`] behind an in-process [`Loopback`]
    /// and runs [`RevocationAgent::sync_via`] — the sync itself always
    /// speaks the wire protocol. `rng` seeds the edge's latency sampling.
    #[deprecated(note = "build an EdgeService + Transport and call sync_via")]
    pub fn sync<R: rand::Rng + ?Sized>(
        &mut self,
        cdn: &mut Cdn,
        now: SimTime,
        rng: &mut R,
    ) -> SyncReport {
        let service = EdgeService::new(&mut *cdn, self.config.region, rng.next_u64());
        service.set_now(now);
        let mut transport = Loopback::new(service);
        self.sync_via(&mut transport, now)
    }

    /// Applies one pulled issuance bundle. Returns `Some(have)` when the
    /// mirror detected a gap and a `CatchUp { have }` follow-up is needed
    /// (issued by the caller's second flight).
    fn apply_delta(
        &mut self,
        ca: CaId,
        issuance: RevocationIssuance,
        now_secs: u64,
        report: &mut SyncReport,
    ) -> Option<u64> {
        let have = self
            .mirror(&ca)
            .expect("followed ca has a mirror")
            .consecutive_count();
        let last = issuance.first_number + issuance.serials.len() as u64 - 1;
        if last <= have {
            return None; // nothing new in the bundle
        }
        // Trim the already-known prefix (the Latest bundle may overlap).
        let issuance = if issuance.first_number <= have {
            let skip = (have + 1 - issuance.first_number) as usize;
            RevocationIssuance {
                first_number: have + 1,
                serials: issuance.serials[skip..].to_vec(),
                signed_root: issuance.signed_root,
            }
        } else {
            issuance
        };
        let outcome = {
            let mut mirror = self.mirror_mut(&ca).expect("followed ca has a mirror");
            mirror.apply_update(UpdateMessage::Issuance(&issuance), now_secs)
            // Guard drops here, republishing the snapshot if the update
            // landed — before any catch-up round-trip.
        };
        match outcome {
            Ok(()) => {
                report.issuances_applied += 1;
                report.revocations_applied += issuance.serials.len() as u64;
                None
            }
            // Paper's sync protocol: request everything after `have`.
            Err(EngineError::Update(UpdateError::Desynchronized { have, .. })) => Some(have),
            Err(_) => {
                report.rejected += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::RaConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_ca::CertificationAuthority;
    use ritm_cdn::origin::ContentKey;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::{RefreshMessage, SerialNumber};

    const T0: u64 = 1_000_000;

    struct World {
        ca: CertificationAuthority,
        cdn: Cdn,
        ra: RevocationAgent,
        rng: StdRng,
    }

    fn world() -> World {
        let mut rng = StdRng::seed_from_u64(31);
        let mut cdn = Cdn::new(SimDuration::from_secs(5));
        let ca = CertificationAuthority::new(
            "SyncCA",
            SigningKey::from_seed([3u8; 32]),
            10,
            1 << 16,
            &mut cdn,
            &mut rng,
            T0,
        );
        let mut ra = RevocationAgent::new(RaConfig {
            delta: 10,
            ..Default::default()
        });
        ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
            .unwrap();
        World { ca, cdn, ra, rng }
    }

    /// One sync pass over the real protocol: borrowed edge service behind
    /// an in-process loopback transport.
    fn sync(w: &mut World, now: u64) -> SyncReport {
        let region = w.ra.config.region;
        let service = EdgeService::new(&mut w.cdn, region, 17);
        service.set_now(SimTime::from_secs(now));
        let mut transport = Loopback::new(service);
        w.ra.sync_via(&mut transport, SimTime::from_secs(now))
    }

    fn issue_and_revoke(w: &mut World, subjects: core::ops::Range<u32>, now: u64) {
        let key = SigningKey::from_seed([7u8; 32]).verifying_key();
        let serials: Vec<SerialNumber> = subjects
            .map(|i| {
                w.ca.issue_certificate(&format!("s{i}.com"), key, 0, u64::MAX)
                    .serial
            })
            .collect();
        w.ca.revoke(&serials, &mut w.cdn, &mut w.rng, now).unwrap();
    }

    #[test]
    fn sync_applies_new_revocations_and_freshness() {
        let mut w = world();
        issue_and_revoke(&mut w, 0..5, T0 + 1);
        w.ca.refresh(&mut w.cdn, &mut w.rng, T0 + 2).unwrap();

        let report = sync(&mut w, T0 + 2);
        assert_eq!(report.issuances_applied, 1);
        assert_eq!(report.revocations_applied, 5);
        assert_eq!(report.freshness_applied, 1);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.transport_failures, 0);
        assert!(report.bytes_downloaded > 0);
        assert!(report.bytes_uploaded > 0);
        assert!(report.latency > SimDuration::ZERO, "edge latency charged");
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 5);
        assert_eq!(
            w.ra.mirror(&w.ca.id()).unwrap().signed_root(),
            w.ca.dictionary().signed_root()
        );
    }

    #[test]
    fn repeated_sync_is_idempotent() {
        let mut w = world();
        issue_and_revoke(&mut w, 0..3, T0 + 1);
        sync(&mut w, T0 + 2);
        let second = sync(&mut w, T0 + 3);
        assert_eq!(second.issuances_applied, 0, "nothing new to apply");
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 3);
    }

    #[test]
    fn missed_batch_triggers_catchup() {
        let mut w = world();
        // Two batches published while the RA was offline.
        issue_and_revoke(&mut w, 0..4, T0 + 1);
        issue_and_revoke(&mut w, 4..9, T0 + 2);

        let report = sync(&mut w, T0 + 3);
        // The Latest bundle only carries the second batch, so the RA detects
        // the gap and issues a catch-up request.
        assert_eq!(report.catchups, 1);
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 9);
    }

    #[test]
    fn overlapping_bundle_is_trimmed() {
        let mut w = world();
        issue_and_revoke(&mut w, 0..4, T0 + 1);
        sync(&mut w, T0 + 2);
        // New batch; the Latest bundle holds only it, no overlap problem —
        // but craft overlap explicitly via issuance_since(0).
        issue_and_revoke(&mut w, 4..6, T0 + 3);
        // Publish the *full* history (overlapping the RA's 4 known entries)
        // as the Latest bundle; the RA must trim the known prefix.
        let full = w.ca.issuance_since(0);
        w.cdn
            .origin
            .publish_raw(ContentKey::Latest { ca: w.ca.id() }, full.to_bytes());
        w.cdn.flush_edges();
        let report = sync(&mut w, T0 + 4);
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 6);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn fig7_shape_freshness_dominates_quiet_periods() {
        // During a quiet Δ the pull is ~tens of bytes (freshness +
        // zero-issuance bundle); during a revocation burst it grows with the
        // batch (the Fig. 7 contrast). Volumes are now true envelope bytes.
        let mut w = world();
        issue_and_revoke(&mut w, 0..1, T0 + 1);
        sync(&mut w, T0 + 2);

        w.ca.refresh(&mut w.cdn, &mut w.rng, T0 + 12).unwrap();
        let quiet = sync(&mut w, T0 + 12);

        issue_and_revoke(&mut w, 1..1001, T0 + 21);
        let burst = sync(&mut w, T0 + 22);
        assert!(
            burst.bytes_downloaded > 10 * quiet.bytes_downloaded,
            "burst {} vs quiet {}",
            burst.bytes_downloaded,
            quiet.bytes_downloaded
        );
    }

    #[test]
    fn chain_rotation_followed() {
        // A short chain forces NewRoot rotations; the RA must keep up.
        let mut rng = StdRng::seed_from_u64(77);
        let mut cdn = Cdn::new(SimDuration::from_secs(5));
        let mut ca = CertificationAuthority::new(
            "RotCA",
            SigningKey::from_seed([8u8; 32]),
            10,
            3,
            &mut cdn,
            &mut rng,
            T0,
        );
        let mut ra = RevocationAgent::new(RaConfig {
            delta: 10,
            ..Default::default()
        });
        ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
            .unwrap();
        // 5 periods later the chain (length 3) is exhausted → NewRoot.
        let msg = ca.refresh(&mut cdn, &mut rng, T0 + 50).unwrap();
        assert!(matches!(msg, RefreshMessage::NewRoot(_)));
        let service = EdgeService::new(&mut cdn, ra.config.region, 5);
        service.set_now(SimTime::from_secs(T0 + 50));
        let mut transport = Loopback::new(service);
        let report = ra.sync_via(&mut transport, SimTime::from_secs(T0 + 50));
        assert_eq!(report.freshness_applied, 1);
        assert_eq!(
            ra.mirror(&ca.id()).unwrap().signed_root(),
            ca.dictionary().signed_root()
        );
    }

    /// Records the batch size of every flight the RA issues.
    struct Recording<T> {
        inner: T,
        batches: Vec<usize>,
    }

    impl<T: Transport> Transport for Recording<T> {
        fn round_trip(
            &mut self,
            req: &RitmRequest,
        ) -> Result<ritm_proto::RoundTrip, ritm_proto::TransportError> {
            self.batches.push(1);
            self.inner.round_trip(req)
        }

        fn round_trip_many(
            &mut self,
            reqs: &[RitmRequest],
        ) -> Vec<Result<ritm_proto::RoundTrip, ritm_proto::TransportError>> {
            self.batches.push(reqs.len());
            self.inner.round_trip_many(reqs)
        }
    }

    #[test]
    fn sync_round_is_two_pipelined_flights() {
        let mut w = world();
        // Two batches published while the RA was offline: the sync must
        // need a catch-up, and still issue exactly two flights — one
        // delta+freshness batch, one catch-up batch.
        issue_and_revoke(&mut w, 0..4, T0 + 1);
        issue_and_revoke(&mut w, 4..9, T0 + 2);
        let region = w.ra.config.region;
        let service = EdgeService::new(&mut w.cdn, region, 17);
        service.set_now(SimTime::from_secs(T0 + 3));
        let mut transport = Recording {
            inner: Loopback::new(service),
            batches: Vec::new(),
        };
        let report = w.ra.sync_via(&mut transport, SimTime::from_secs(T0 + 3));
        assert_eq!(report.catchups, 1);
        assert_eq!(w.ra.mirror(&w.ca.id()).unwrap().len(), 9);
        assert_eq!(
            transport.batches,
            vec![2, 1],
            "delta+freshness in one flight, catch-up in a second"
        );
    }

    #[test]
    fn legacy_sync_shim_still_speaks_the_protocol() {
        // The deprecated harness entry point must remain byte-for-byte a
        // protocol sync: same counters as the explicit transport path.
        let mut w = world();
        issue_and_revoke(&mut w, 0..5, T0 + 1);
        w.ca.refresh(&mut w.cdn, &mut w.rng, T0 + 2).unwrap();
        #[allow(deprecated)]
        let report = {
            let mut rng = StdRng::seed_from_u64(99);
            w.ra.sync(&mut w.cdn, SimTime::from_secs(T0 + 2), &mut rng)
        };
        assert_eq!(report.issuances_applied, 1);
        assert_eq!(report.revocations_applied, 5);
        assert_eq!(report.freshness_applied, 1);
        assert!(report.bytes_downloaded > 0 && report.bytes_uploaded > 0);
    }

    #[test]
    fn sync_over_simulated_path_matches_loopback_bytes() {
        // The same sync pass over the ritm-net simulator must move exactly
        // the bytes the loopback moved — the envelopes are the protocol.
        let mut a = world();
        issue_and_revoke(&mut a, 0..7, T0 + 1);
        a.ca.refresh(&mut a.cdn, &mut a.rng, T0 + 2).unwrap();
        let loopback_report = sync(&mut a, T0 + 2);

        let mut b = world();
        issue_and_revoke(&mut b, 0..7, T0 + 1);
        b.ca.refresh(&mut b.cdn, &mut b.rng, T0 + 2).unwrap();
        let region = b.ra.config.region;
        let service = EdgeService::new(b.cdn, region, 17);
        service.set_now(SimTime::from_secs(T0 + 2));
        let mut transport =
            ritm_proto::sim::SimTransport::new(service, SimDuration::from_millis(8));
        let sim_report = b.ra.sync_via(&mut transport, SimTime::from_secs(T0 + 2));

        assert_eq!(
            sim_report.bytes_downloaded,
            loopback_report.bytes_downloaded
        );
        assert_eq!(sim_report.bytes_uploaded, loopback_report.bytes_uploaded);
        assert_eq!(
            sim_report.issuances_applied,
            loopback_report.issuances_applied
        );
        assert_eq!(sim_report.revocations_applied, 7);
        // Latency now includes the simulated propagation on top of the
        // edge's sampled serving time: 8 ms each way for each of the two
        // round trips (delta + freshness).
        assert!(sim_report.latency > loopback_report.latency);
    }
}
