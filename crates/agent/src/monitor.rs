//! RA-side consistency monitoring (paper §III "Consistency Checking",
//! §V "Misbehaving CA").
//!
//! An RA periodically compares its locally-stored signed roots against
//! copies downloaded from random edge servers or exchanged with peer RAs.
//! Because dictionaries are append-only, comparing the *latest roots of
//! equal size* suffices: any fork forces the CA to keep signing two
//! divergent versions, which this monitor turns into a transferable
//! [`EquivocationProof`] reported to, e.g., software vendors.

use crate::cache::CacheStats;
use crate::ra::{RaStats, RevocationAgent};
use ritm_dictionary::consistency::{EquivocationProof, Observation, RootObservatory};
use ritm_dictionary::{CaId, MirrorEngine, SignedRoot};

/// A misbehavior report ready to hand to a vendor or auditor.
#[derive(Debug, Clone, PartialEq)]
pub struct MisbehaviorReport {
    /// The offending CA.
    pub ca: CaId,
    /// The cryptographic proof.
    pub proof: EquivocationProof,
    /// Where the conflicting root was obtained (free-form: "edge:eu-1",
    /// "peer-ra:203.0.113.7", "client-gossip").
    pub source: String,
}

/// Consistency monitor an RA (or auditor) runs beside its mirrors.
#[derive(Debug, Default)]
pub struct ConsistencyMonitor {
    observatory: RootObservatory,
    reports: Vec<MisbehaviorReport>,
    /// Roots checked so far.
    pub checks: u64,
}

impl ConsistencyMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        ConsistencyMonitor::default()
    }

    /// Registers a CA key so its roots can be validated.
    pub fn register_ca(&mut self, ca: CaId, key: ritm_crypto::ed25519::VerifyingKey) {
        self.observatory.register_ca(ca, key);
    }

    /// Feeds one externally-obtained signed root; returns a report if it
    /// proves equivocation against previous observations.
    pub fn check(&mut self, root: SignedRoot, source: &str) -> Option<MisbehaviorReport> {
        self.checks += 1;
        match self.observatory.observe(root) {
            Observation::Equivocation(proof) => {
                let report = MisbehaviorReport {
                    ca: proof.ca(),
                    proof: *proof,
                    source: source.to_owned(),
                };
                self.reports.push(report.clone());
                Some(report)
            }
            _ => None,
        }
    }

    /// Compares the RA's own mirrors against a peer's roots — the "RAs can
    /// randomly contact … other RAs and compare their locally-stored
    /// statements" procedure. Seeds the observatory with the local view
    /// first so a conflicting peer view is caught.
    pub fn cross_check_with_peer<M: MirrorEngine>(
        &mut self,
        local: &RevocationAgent<M>,
        peer_roots: &[SignedRoot],
        source: &str,
    ) -> Vec<MisbehaviorReport> {
        let cas: Vec<CaId> = local.followed_cas().copied().collect();
        for ca in cas {
            if let Some(mirror) = local.mirror(&ca) {
                self.check(*mirror.current_signed_root(), "local-mirror");
            }
        }
        peer_roots
            .iter()
            .filter_map(|r| self.check(*r, source))
            .collect()
    }

    /// Every report collected so far.
    pub fn reports(&self) -> &[MisbehaviorReport] {
        &self.reports
    }
}

/// A point-in-time operational snapshot of one RA: packet counters plus the
/// hit/miss statistics of both epoch-keyed caches (single-serial audit
/// paths and compressed chain multiproofs). This is what an operator
/// dashboard (or the bench harness) scrapes to see whether hot flows are
/// actually reusing audit paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaHealthReport {
    /// CAs currently mirrored.
    pub mirrored_cas: usize,
    /// Live entries in the Eq. (4) connection table.
    pub tracked_connections: usize,
    /// Packet/status counters.
    pub stats: RaStats,
    /// Proof-cache counters (hits, misses, evictions) for single-serial
    /// audit paths.
    pub proof_cache: CacheStats,
    /// Counters of the compressed chain-multiproof memo (same epoch-keyed
    /// policy; hot chains across concurrent flows reuse one multiproof).
    pub multi_cache: CacheStats,
}

impl RaHealthReport {
    /// Proof-cache hit fraction in `[0, 1]` (single-serial audit paths).
    pub fn cache_hit_rate(&self) -> f64 {
        self.proof_cache.hit_rate()
    }

    /// Multiproof-memo hit fraction in `[0, 1]`.
    pub fn multi_cache_hit_rate(&self) -> f64 {
        self.multi_cache.hit_rate()
    }
}

impl<M: MirrorEngine> RevocationAgent<M> {
    /// Snapshots the RA's operational counters, including both epoch-keyed
    /// caches' hit/miss statistics.
    pub fn health_report(&self) -> RaHealthReport {
        let server = self.status_server();
        RaHealthReport {
            mirrored_cas: self.followed_cas().count(),
            tracked_connections: self.table.len(),
            stats: self.stats,
            proof_cache: server.cache_stats(),
            multi_cache: server.multi_cache_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::{RaConfig, RevocationAgent};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_ca::misbehavior::{EquivocatingCa, View};
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::SerialNumber;

    fn equivocator() -> EquivocatingCa {
        let mut rng = StdRng::seed_from_u64(41);
        let cover: Vec<SerialNumber> = (10..15u32).map(SerialNumber::from_u24).collect();
        EquivocatingCa::new(
            "EvilCA",
            SigningKey::from_seed([6u8; 32]),
            10,
            128,
            SerialNumber::from_u24(1),
            &cover,
            SerialNumber::from_u24(99),
            &mut rng,
            1_000,
        )
    }

    #[test]
    fn edge_cross_check_catches_fork() {
        let ca = equivocator();
        let mut monitor = ConsistencyMonitor::new();
        monitor.register_ca(ca.ca(), ca.verifying_key());

        // RA's own view is the hiding one; the random edge serves honest.
        assert!(monitor
            .check(ca.signed_root(View::Hiding), "local")
            .is_none());
        let report = monitor
            .check(ca.signed_root(View::Honest), "edge:us-east-1")
            .expect("fork detected");
        assert_eq!(report.ca, ca.ca());
        assert!(report.proof.verify(&ca.verifying_key()));
        assert_eq!(report.source, "edge:us-east-1");
        assert_eq!(monitor.reports().len(), 1);
    }

    #[test]
    fn honest_ca_never_reported() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut dict = ritm_dictionary::CaDictionary::new(
            CaId::from_name("HonestCA"),
            SigningKey::from_seed([2u8; 32]),
            10,
            1 << 10,
            &mut rng,
            1_000,
        );
        let mut monitor = ConsistencyMonitor::new();
        monitor.register_ca(dict.ca(), dict.verifying_key());
        for i in 0..5u32 {
            monitor.check(*dict.signed_root(), "edge");
            dict.insert(&[SerialNumber::from_u24(i)], &mut rng, 1_001 + i as u64);
        }
        assert!(monitor.reports().is_empty());
        assert_eq!(monitor.checks, 5);
    }

    #[test]
    fn health_report_surfaces_multiproof_memo_counters() {
        use ritm_crypto::ed25519::SigningKey as Sk;
        let mut rng = StdRng::seed_from_u64(51);
        let mut ca = ritm_dictionary::CaDictionary::new(
            CaId::from_name("HealthCA"),
            Sk::from_seed([5u8; 32]),
            10,
            128,
            &mut rng,
            1_000,
        );
        let mut ra = RevocationAgent::new(RaConfig::default());
        ra.follow_ca(ca.ca(), ca.verifying_key(), *ca.signed_root())
            .unwrap();
        let serials: Vec<SerialNumber> =
            (0..40u32).map(|i| SerialNumber::from_u24(i * 2)).collect();
        let iss = ca.insert(&serials, &mut rng, 1_001).unwrap();
        ra.mirror_mut(&ca.ca())
            .unwrap()
            .apply_issuance(&iss, 1_001)
            .unwrap();

        // A compressed 3-cert chain: the leaf goes through the single-serial
        // cache, the 2-cert run through the multiproof memo. Built twice, so
        // the second pass hits both caches.
        let chain: Vec<(CaId, SerialNumber)> = [1u32, 11, 21]
            .iter()
            .map(|&v| (ca.ca(), SerialNumber::from_u24(v)))
            .collect();
        let server = ra.status_server();
        for _ in 0..2 {
            server.build_status(&chain, true).unwrap();
        }
        let health = ra.health_report();
        assert_eq!((health.proof_cache.hits, health.proof_cache.misses), (1, 1));
        assert_eq!((health.multi_cache.hits, health.multi_cache.misses), (1, 1));
        assert!((health.multi_cache_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn peer_ra_cross_check() {
        let ca = equivocator();
        // Local RA mirrors... we emulate by seeding a monitor with the
        // hiding root through an RA whose mirror we cannot forge; use the
        // direct path: local sees Hiding, peer sends Honest.
        let local = {
            let mut ra = RevocationAgent::new(RaConfig::default());
            // follow_ca with a non-genesis root fails; the monitor path that
            // matters is the peer comparison, so seed with checks directly.
            let _ = &mut ra;
            ra
        };
        let mut monitor = ConsistencyMonitor::new();
        monitor.register_ca(ca.ca(), ca.verifying_key());
        monitor.check(ca.signed_root(View::Hiding), "local-mirror");
        let reports =
            monitor.cross_check_with_peer(&local, &[ca.signed_root(View::Honest)], "peer-ra:7");
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].source, "peer-ra:7");
    }
}
