//! The RA's deep-packet-inspection module (paper §VI).
//!
//! Two stages, matching the Table III cost breakdown: a cheap per-packet
//! *TLS detection* test, and — only for handshake packets of supported
//! connections — *certificate parsing*.

use ritm_dictionary::{CaId, SerialNumber};
use ritm_tls::engine::RecordAssembler;
use ritm_tls::handshake::HandshakeMessage;
use ritm_tls::record::{looks_like_tls, ContentType, TlsRecord};

/// What DPI concluded about one TCP payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Classification {
    /// Not TLS at all — forward untouched (the 340k pkt/s fast path).
    NotTls,
    /// TLS, but nothing the RA acts on (e.g. application data records).
    TlsOther,
    /// Contains a ClientHello; flag says whether the RITM extension is set.
    ClientHello {
        /// RITM extension present?
        ritm: bool,
        /// Session id non-empty (resumption attempt)?
        resumption: bool,
    },
    /// Contains a ServerHello (and possibly the certificate chain in the
    /// same flight).
    ServerFlight(ServerFlight),
    /// Contains a Finished message (handshake completion marker).
    Finished,
}

/// The server's first flight as seen by the RA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerFlight {
    /// Session id echoed by the server.
    pub session_id: Vec<u8>,
    /// Issuer and serial of the leaf certificate, when a chain was present.
    pub leaf: Option<(CaId, SerialNumber)>,
    /// Issuer and serial of every certificate in the chain (§VIII
    /// "Certificate chains": RAs may prove the whole chain).
    pub chain: Vec<(CaId, SerialNumber)>,
}

/// Classifies one TCP payload. This is the RA's per-packet entry point; the
/// `looks_like_tls` prefilter runs first so non-TLS traffic pays only a few
/// comparisons.
pub fn classify(payload: &[u8]) -> Classification {
    if !looks_like_tls(payload) {
        return Classification::NotTls;
    }
    let Ok(records) = TlsRecord::parse_stream(payload) else {
        // Prefilter matched but full parse failed — treat as opaque TLS-ish
        // traffic and stay out of the way (non-invasiveness, §VII-F).
        return Classification::TlsOther;
    };
    classify_records(&records)
}

/// Classifies a batch of already-reassembled records (the loop behind
/// [`classify`], usable when the caller has a record stream rather than a
/// raw packet payload).
pub fn classify_records(records: &[TlsRecord]) -> Classification {
    let mut server_flight: Option<ServerFlight> = None;
    let mut finished = false;
    for rec in records {
        if rec.content_type != ContentType::Handshake {
            continue;
        }
        let Ok(messages) = HandshakeMessage::parse_all(&rec.payload) else {
            return Classification::TlsOther;
        };
        for msg in messages {
            match msg {
                HandshakeMessage::ClientHello(ch) => {
                    return Classification::ClientHello {
                        ritm: ch.has_ritm_extension(),
                        resumption: !ch.session_id.is_empty(),
                    };
                }
                HandshakeMessage::ServerHello(sh) => {
                    server_flight = Some(ServerFlight {
                        session_id: sh.session_id.clone(),
                        leaf: None,
                        chain: Vec::new(),
                    });
                }
                HandshakeMessage::Certificate(chain) => {
                    let parsed: Vec<(CaId, SerialNumber)> =
                        chain.0.iter().map(|c| (c.issuer, c.serial)).collect();
                    let leaf = parsed.first().copied();
                    match &mut server_flight {
                        Some(f) => {
                            f.leaf = leaf;
                            f.chain = parsed;
                        }
                        None => {
                            // Certificate without a preceding ServerHello in
                            // this payload (split across segments).
                            server_flight = Some(ServerFlight {
                                session_id: Vec::new(),
                                leaf,
                                chain: parsed,
                            });
                        }
                    }
                }
                HandshakeMessage::Finished(_) => finished = true,
                _ => {}
            }
        }
    }
    if let Some(f) = server_flight {
        return Classification::ServerFlight(f);
    }
    if finished {
        return Classification::Finished;
    }
    Classification::TlsOther
}

/// Stream-granular classifier for one direction of one flow.
///
/// [`classify`] is per-packet and blind to TCP fragmentation: a ClientHello
/// split across two payloads parses as `TlsOther`/`NotTls` in both. This
/// wrapper reassembles records across pushes (via
/// [`RecordAssembler`]) and carries the server-flight accumulator across
/// record boundaries, so a ServerHello in one segment and the Certificate
/// in the next still produce one [`Classification::ServerFlight`].
#[derive(Debug, Default)]
pub struct StreamClassifier {
    assembler: RecordAssembler,
    flight: Option<ServerFlight>,
    /// Set once the stream proved to be non-TLS; everything after is opaque.
    dead: bool,
}

impl StreamClassifier {
    /// Creates an empty classifier.
    pub fn new() -> Self {
        StreamClassifier::default()
    }

    /// Bytes of an incomplete record still buffered in the reassembler.
    /// Zero exactly when the stream so far ends on a record boundary.
    pub fn buffered(&self) -> usize {
        self.assembler.buffered()
    }

    /// Feeds the next chunk of stream bytes (any fragmentation), returning
    /// every classification that *completed* with this chunk, in order. An
    /// empty result means nothing conclusive yet — keep feeding.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<Classification> {
        if self.dead {
            return vec![Classification::NotTls];
        }
        self.assembler.push(bytes);
        let mut out = Vec::new();
        loop {
            match self.assembler.next_record() {
                Ok(Some(rec)) => self.classify_record(&rec, &mut out),
                Ok(None) => break,
                Err(_) => {
                    // Not TLS at all: flag once and stay out of the way.
                    self.dead = true;
                    out.push(Classification::NotTls);
                    break;
                }
            }
        }
        out
    }

    fn classify_record(&mut self, rec: &TlsRecord, out: &mut Vec<Classification>) {
        if rec.content_type != ContentType::Handshake {
            return;
        }
        let Ok(messages) = HandshakeMessage::parse_all(&rec.payload) else {
            out.push(Classification::TlsOther);
            return;
        };
        for msg in messages {
            match msg {
                HandshakeMessage::ClientHello(ch) => {
                    out.push(Classification::ClientHello {
                        ritm: ch.has_ritm_extension(),
                        resumption: !ch.session_id.is_empty(),
                    });
                }
                HandshakeMessage::ServerHello(sh) => {
                    self.flight = Some(ServerFlight {
                        session_id: sh.session_id.clone(),
                        leaf: None,
                        chain: Vec::new(),
                    });
                }
                HandshakeMessage::Certificate(chain) => {
                    let parsed: Vec<(CaId, SerialNumber)> =
                        chain.0.iter().map(|c| (c.issuer, c.serial)).collect();
                    let leaf = parsed.first().copied();
                    let f = self.flight.get_or_insert_with(|| ServerFlight {
                        session_id: Vec::new(),
                        leaf: None,
                        chain: Vec::new(),
                    });
                    f.leaf = leaf;
                    f.chain = parsed;
                }
                HandshakeMessage::ServerHelloDone => {
                    // The full flight is complete once HelloDone arrives.
                    if let Some(f) = self.flight.take() {
                        out.push(Classification::ServerFlight(f));
                    }
                }
                HandshakeMessage::Finished(_) => {
                    // An abbreviated flight (SH + Finished, no certificate)
                    // completes at the Finished marker instead.
                    if let Some(f) = self.flight.take() {
                        out.push(Classification::ServerFlight(f));
                    }
                    out.push(Classification::Finished);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_tls::certificate::{Certificate, CertificateChain};
    use ritm_tls::extensions::Extension;
    use ritm_tls::handshake::{ClientHello, ServerHello};

    fn client_hello(ritm: bool, session: &[u8]) -> Vec<u8> {
        let mut extensions = vec![Extension::sni("example.com")];
        if ritm {
            extensions.push(Extension::ritm_request());
        }
        let msg = HandshakeMessage::ClientHello(ClientHello {
            version: 0x0303,
            random: [1u8; 32],
            session_id: session.to_vec(),
            cipher_suites: vec![0xc02f],
            extensions,
        });
        TlsRecord::new(ContentType::Handshake, HandshakeMessage::encode_all(&[msg])).to_bytes()
    }

    fn server_flight() -> Vec<u8> {
        let ca_key = SigningKey::from_seed([1u8; 32]);
        let cert = Certificate::issue(
            &ca_key,
            CaId::from_name("CA1"),
            SerialNumber::from_u24(0x073e10),
            "example.com",
            0,
            10,
            SigningKey::from_seed([2u8; 32]).verifying_key(),
            false,
        );
        let msgs = [
            HandshakeMessage::ServerHello(ServerHello {
                version: 0x0303,
                random: [2u8; 32],
                session_id: vec![9; 32],
                cipher_suite: 0xc02f,
                extensions: vec![],
            }),
            HandshakeMessage::Certificate(CertificateChain(vec![cert])),
            HandshakeMessage::ServerHelloDone,
        ];
        TlsRecord::new(ContentType::Handshake, HandshakeMessage::encode_all(&msgs)).to_bytes()
    }

    #[test]
    fn non_tls_fast_path() {
        assert_eq!(
            classify(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"),
            Classification::NotTls
        );
        assert_eq!(classify(&[]), Classification::NotTls);
        assert_eq!(classify(&[0x16, 0x01]), Classification::NotTls);
    }

    #[test]
    fn client_hello_with_and_without_ritm() {
        assert_eq!(
            classify(&client_hello(true, &[])),
            Classification::ClientHello {
                ritm: true,
                resumption: false
            }
        );
        assert_eq!(
            classify(&client_hello(false, &[])),
            Classification::ClientHello {
                ritm: false,
                resumption: false
            }
        );
        assert_eq!(
            classify(&client_hello(true, &[1, 2, 3])),
            Classification::ClientHello {
                ritm: true,
                resumption: true
            }
        );
    }

    #[test]
    fn server_flight_extracts_issuer_and_serial() {
        match classify(&server_flight()) {
            Classification::ServerFlight(f) => {
                let (ca, sn) = f.leaf.expect("leaf cert parsed");
                assert_eq!(ca, CaId::from_name("CA1"));
                assert_eq!(sn, SerialNumber::from_u24(0x073e10));
                assert_eq!(f.session_id, vec![9; 32]);
                assert_eq!(f.chain.len(), 1);
            }
            other => panic!("expected server flight, got {other:?}"),
        }
    }

    #[test]
    fn application_data_is_tls_other() {
        let rec = TlsRecord::new(ContentType::ApplicationData, vec![0; 64]).to_bytes();
        assert_eq!(classify(&rec), Classification::TlsOther);
    }

    #[test]
    fn finished_detected() {
        let rec = TlsRecord::new(
            ContentType::Handshake,
            HandshakeMessage::encode_all(&[HandshakeMessage::Finished([0u8; 12])]),
        )
        .to_bytes();
        assert_eq!(classify(&rec), Classification::Finished);
    }

    #[test]
    fn garbage_that_resembles_tls_is_nonintrusive() {
        // Valid record header, garbage handshake body.
        let rec = TlsRecord::new(ContentType::Handshake, vec![0xFF; 10]).to_bytes();
        assert_eq!(classify(&rec), Classification::TlsOther);
    }

    #[test]
    fn fragmented_client_hello_classified_by_stream() {
        // Regression: per-packet classify() is blind to a ClientHello split
        // across two TCP payloads…
        let ch = client_hello(true, &[]);
        let (a, b) = ch.split_at(ch.len() / 2);
        assert_ne!(
            classify(a),
            Classification::ClientHello {
                ritm: true,
                resumption: false
            }
        );
        // …but the stream classifier reassembles it.
        let mut sc = StreamClassifier::new();
        assert_eq!(sc.push(a), vec![]);
        assert_eq!(
            sc.push(b),
            vec![Classification::ClientHello {
                ritm: true,
                resumption: false
            }]
        );
    }

    #[test]
    fn fragmented_server_flight_classified_by_stream() {
        let flight = server_flight();
        let mut sc = StreamClassifier::new();
        // Byte-by-byte: the worst possible fragmentation.
        let mut results = Vec::new();
        for &byte in &flight {
            results.extend(sc.push(&[byte]));
        }
        match results.as_slice() {
            [Classification::ServerFlight(f)] => {
                let (ca, sn) = f.leaf.expect("leaf cert parsed");
                assert_eq!(ca, CaId::from_name("CA1"));
                assert_eq!(sn, SerialNumber::from_u24(0x073e10));
                assert_eq!(f.session_id, vec![9; 32]);
            }
            other => panic!("expected one server flight, got {other:?}"),
        }
    }

    #[test]
    fn stream_classifier_flags_non_tls_once() {
        let mut sc = StreamClassifier::new();
        assert_eq!(sc.push(b"GET / HTTP/1.1"), vec![Classification::NotTls]);
        assert_eq!(sc.push(b"more"), vec![Classification::NotTls]);
    }

    #[test]
    fn stream_classifier_splits_flight_across_records() {
        // ServerHello and Certificate in *separate records*, delivered in
        // separate pushes: still one coherent flight.
        let ca_key = SigningKey::from_seed([1u8; 32]);
        let cert = Certificate::issue(
            &ca_key,
            CaId::from_name("CA1"),
            SerialNumber::from_u24(0x073e10),
            "example.com",
            0,
            10,
            SigningKey::from_seed([2u8; 32]).verifying_key(),
            false,
        );
        let sh = TlsRecord::new(
            ContentType::Handshake,
            HandshakeMessage::encode_all(&[HandshakeMessage::ServerHello(ServerHello {
                version: 0x0303,
                random: [2u8; 32],
                session_id: vec![9; 32],
                cipher_suite: 0xc02f,
                extensions: vec![],
            })]),
        )
        .to_bytes();
        let cert_done = TlsRecord::new(
            ContentType::Handshake,
            HandshakeMessage::encode_all(&[
                HandshakeMessage::Certificate(CertificateChain(vec![cert])),
                HandshakeMessage::ServerHelloDone,
            ]),
        )
        .to_bytes();
        let mut sc = StreamClassifier::new();
        assert_eq!(sc.push(&sh), vec![]);
        match sc.push(&cert_done).as_slice() {
            [Classification::ServerFlight(f)] => {
                assert_eq!(f.session_id, vec![9; 32]);
                assert_eq!(f.chain.len(), 1);
            }
            other => panic!("expected one server flight, got {other:?}"),
        }
    }
}
